//! Occurrence-count forward index: the other reading of Eq. 1's `freq`.
//!
//! The paper's interestingness (Eq. 1) divides `freq(p, D')` by
//! `freq(p, D)` without fixing whether `freq` counts *documents containing
//! p* or *total occurrences of p*. This repository's primary semantics is
//! document frequency (`DESIGN.md` §2) — it is what the paper's own
//! `P(q|p)` construction (Eq. 13) is defined on. This module implements
//! the occurrence-count alternative so the choice can be ablated rather
//! than merely asserted: per-document `(phrase, count)` lists where
//! `count` is the number of (possibly overlapping) windows of the
//! document matching the phrase, plus corpus-wide totals.

use crate::phrase::PhraseDictionary;
use ipm_corpus::hash::FxHashMap;
use ipm_corpus::{Corpus, DocId, PhraseId};

/// CSR-packed per-document `(phrase, occurrence-count)` lists with global
/// totals.
#[derive(Debug, Default, Clone)]
pub struct OccurrenceIndex {
    offsets: Vec<u64>,
    entries: Vec<(PhraseId, u32)>,
    /// `phrase id -> total occurrences across the corpus` (dense).
    totals: Vec<u64>,
}

impl OccurrenceIndex {
    /// Counts every dictionary-phrase occurrence in every document.
    pub fn build(corpus: &Corpus, dict: &PhraseDictionary) -> Self {
        let mut offsets = Vec::with_capacity(corpus.num_docs() + 1);
        let mut entries: Vec<(PhraseId, u32)> = Vec::new();
        let mut totals = vec![0u64; dict.len()];
        let mut scratch: FxHashMap<PhraseId, u32> = FxHashMap::default();
        offsets.push(0u64);
        for doc in corpus.docs() {
            scratch.clear();
            count_doc_occurrences(&doc.tokens, dict, &mut scratch);
            let mut list: Vec<(PhraseId, u32)> = scratch.iter().map(|(&p, &c)| (p, c)).collect();
            list.sort_unstable_by_key(|&(p, _)| p);
            for &(p, c) in &list {
                totals[p.index()] += u64::from(c);
            }
            entries.extend_from_slice(&list);
            offsets.push(entries.len() as u64);
        }
        Self {
            offsets,
            entries,
            totals,
        }
    }

    /// The sorted `(phrase, count)` list of a document; empty out of range.
    #[inline]
    pub fn doc(&self, id: DocId) -> &[(PhraseId, u32)] {
        let i = id.index();
        if i + 1 >= self.offsets.len() {
            return &[];
        }
        &self.entries[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Total occurrences of a phrase across the corpus; 0 if out of range.
    pub fn total(&self, p: PhraseId) -> u64 {
        self.totals.get(p.index()).copied().unwrap_or(0)
    }

    /// Number of documents covered.
    pub fn num_docs(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Total `(doc, phrase)` entries stored.
    pub fn total_entries(&self) -> usize {
        self.entries.len()
    }
}

/// Counts occurrences of every dictionary phrase in one token stream.
/// Windows may overlap (`a a a` contains the phrase `a a` twice), matching
/// the naive sliding-window reading of "frequency of the phrase".
pub fn count_doc_occurrences(
    tokens: &[ipm_corpus::WordId],
    dict: &PhraseDictionary,
    out: &mut FxHashMap<PhraseId, u32>,
) {
    let max_len = dict.max_phrase_words().min(tokens.len());
    for start in 0..tokens.len() {
        for len in 1..=max_len.min(tokens.len() - start) {
            if let Some(p) = dict.get(&tokens[start..start + len]) {
                *out.entry(p).or_insert(0) += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus_index::{CorpusIndex, IndexConfig};
    use crate::mining::MiningConfig;
    use ipm_corpus::{CorpusBuilder, TokenizerConfig};

    fn setup(texts: &[&str], min_df: u32) -> (Corpus, CorpusIndex) {
        let mut b = CorpusBuilder::new(TokenizerConfig::default());
        for t in texts {
            b.add_text(t);
        }
        let c = b.build();
        let index = CorpusIndex::build(
            &c,
            &IndexConfig {
                mining: MiningConfig {
                    min_df,
                    max_len: 3,
                    min_len: 1,
                },
            },
        );
        (c, index)
    }

    #[test]
    fn repeated_phrase_counted_per_occurrence() {
        let (c, index) = setup(&["a b a b a", "a b"], 2);
        let occ = OccurrenceIndex::build(&c, &index.dict);
        let ab = index
            .dict
            .get(&[c.word_id("a").unwrap(), c.word_id("b").unwrap()])
            .unwrap();
        // doc 0: "a b" at positions 0 and 2 → 2 occurrences; doc 1: 1.
        let d0 = occ.doc(DocId(0)).to_vec();
        assert!(d0.contains(&(ab, 2)), "{d0:?}");
        assert_eq!(occ.total(ab), 3);
    }

    #[test]
    fn overlapping_windows_count() {
        let (c, index) = setup(&["a a a", "a a"], 2);
        let occ = OccurrenceIndex::build(&c, &index.dict);
        let aa = index
            .dict
            .get(&[c.word_id("a").unwrap(), c.word_id("a").unwrap()])
            .unwrap();
        // "a a a" holds "a a" at offsets 0 and 1.
        assert_eq!(
            occ.doc(DocId(0)).iter().find(|&&(p, _)| p == aa),
            Some(&(aa, 2))
        );
        assert_eq!(occ.total(aa), 3);
    }

    #[test]
    fn occurrence_count_at_least_document_frequency() {
        // Per phrase: total occurrences ≥ number of documents containing it.
        let (c, index) = setup(&["x y z x y", "y z", "x y x y x y", "z z z", "x y z"], 2);
        let occ = OccurrenceIndex::build(&c, &index.dict);
        for (p, _, df) in index.dict.iter() {
            assert!(
                occ.total(p) >= u64::from(df),
                "phrase {p:?}: total {} < df {df}",
                occ.total(p)
            );
        }
    }

    #[test]
    fn doc_lists_are_sorted_and_match_naive_recount() {
        let (c, index) = setup(&["m n o m n", "n o n o", "m m m"], 1);
        let occ = OccurrenceIndex::build(&c, &index.dict);
        for doc in c.docs() {
            let list = occ.doc(doc.id);
            assert!(list.windows(2).all(|w| w[0].0 < w[1].0), "unsorted");
            let mut naive = FxHashMap::default();
            count_doc_occurrences(&doc.tokens, &index.dict, &mut naive);
            assert_eq!(list.len(), naive.len());
            for &(p, n) in list {
                assert_eq!(naive.get(&p), Some(&n));
            }
        }
    }

    #[test]
    fn out_of_range_doc_and_phrase() {
        let (c, index) = setup(&["a b"], 1);
        let occ = OccurrenceIndex::build(&c, &index.dict);
        assert!(occ.doc(DocId(99)).is_empty());
        assert_eq!(occ.total(PhraseId(9_999)), 0);
        assert_eq!(occ.num_docs(), 1);
    }
}
