//! Criterion benchmark of the `ipm_server` serving subsystem: closed-loop
//! throughput over loopback TCP at 1, 4 and 16 concurrent clients, on the
//! memory and the simulated-disk backend.
//!
//! Closed loop: every client thread keeps exactly one request in flight,
//! so an iteration's wall-clock time measures the full serve path —
//! socket, protocol parse, single-flight, queue, worker execution (or
//! result-cache hit), response encode — under real concurrency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ipm_core::{BackendChoice, MinerConfig, PhraseMiner, QueryEngine};
use ipm_server::{Client, SearchRequest, Server, ServerConfig};

const REQUESTS_PER_CLIENT_PER_ITER: usize = 10;

fn server_and_queries() -> (ipm_server::ServerHandle, Vec<String>) {
    let (corpus, _) = ipm_corpus::synth::generate(&ipm_corpus::synth::tiny());
    let engine = QueryEngine::new(PhraseMiner::build(&corpus, MinerConfig::default()));
    let top = ipm_corpus::stats::top_words_by_df(engine.miner().corpus(), 6);
    let terms: Vec<String> = top
        .iter()
        .map(|&(w, _)| corpus.words().term(w).unwrap().to_owned())
        .collect();
    let queries = (0..terms.len() - 1)
        .flat_map(|i| {
            [
                format!("{} AND {}", terms[i], terms[i + 1]),
                format!("{} OR {}", terms[i], terms[i + 1]),
            ]
        })
        .collect();
    let handle = Server::spawn(
        engine,
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 8,
            queue_depth: 256,
        },
    )
    .expect("bind loopback");
    (handle, queries)
}

fn bench_closed_loop_throughput(c: &mut Criterion) {
    let (handle, queries) = server_and_queries();
    let addr = handle.addr().to_string();
    let mut group = c.benchmark_group("serving/closed_loop");
    group.sample_size(20);
    for backend in [BackendChoice::Memory, BackendChoice::Disk] {
        for clients in [1usize, 4, 16] {
            // Persistent connections, reused across iterations.
            let mut connections: Vec<Client> = (0..clients)
                .map(|_| Client::connect(&addr).expect("connect"))
                .collect();
            group.bench_with_input(
                BenchmarkId::new(format!("{backend:?}"), clients),
                &clients,
                |b, _| {
                    b.iter(|| {
                        std::thread::scope(|s| {
                            for (cid, client) in connections.iter_mut().enumerate() {
                                let queries = &queries;
                                s.spawn(move || {
                                    for r in 0..REQUESTS_PER_CLIENT_PER_ITER {
                                        let q = &queries[(cid + r) % queries.len()];
                                        let mut req = SearchRequest::new(q.clone());
                                        req.k = 5;
                                        req.backend = backend;
                                        let resp = client.search(&req).expect("roundtrip");
                                        assert_eq!(resp["ok"].as_bool(), Some(true));
                                    }
                                });
                            }
                        });
                    })
                },
            );
        }
    }
    group.finish();
    let stats = handle.stats();
    println!(
        "serving totals: served={} coalesced={} shed={} cache_hit_rate={:.0}% disk_fetches={}",
        stats.served,
        stats.coalesced,
        stats.shed,
        stats.cache.hit_rate() * 100.0,
        stats.disk_io.total_fetches(),
    );
}

criterion_group!(benches, bench_closed_loop_throughput);
criterion_main!(benches);
