//! Apriori level-wise n-gram phrase mining.
//!
//! `P` is "the set of word n-grams of up to 6 words which occur in more than
//! a pre-specified number (usually, 5 or 10) of documents in D" (paper §1).
//! Document frequency is *anti-monotone* in the n-gram containment order: a
//! document containing `a b c` contains `a b` and `b c`, so
//! `df(abc) ≤ min(df(ab), df(bc))`. The miner exploits this Apriori-style:
//! level `n` candidates are only those windows whose length-(n-1) prefix
//! *and* suffix were frequent at the previous level, which keeps the
//! candidate space (and the per-level hash map) small.

use crate::phrase::PhraseDictionary;
use ipm_corpus::hash::{fx_map_with_capacity, FxHashMap, FxHashSet};
use ipm_corpus::{Corpus, WordId};

/// Configuration of the phrase miner.
#[derive(Debug, Clone)]
pub struct MiningConfig {
    /// Minimum document frequency for a phrase to enter `P`
    /// (the paper uses 5 or 10).
    pub min_df: u32,
    /// Maximum phrase length in words (the paper uses 6).
    pub max_len: usize,
    /// Minimum phrase length in words. The paper's result lists contain
    /// single-word phrases (its Table 4 includes "reserves"), so this
    /// defaults to 1; set 2 to restrict `P` to multi-word phrases.
    pub min_len: usize,
}

impl Default for MiningConfig {
    fn default() -> Self {
        Self {
            min_df: 5,
            max_len: 6,
            min_len: 1,
        }
    }
}

/// Mines the frequent-phrase dictionary from `corpus`.
///
/// Returns the dictionary with document frequencies populated. Phrase ids
/// are assigned level by level (all frequent 1-grams first, then 2-grams,
/// ...), each level in deterministic first-occurrence order.
pub fn mine_phrases(corpus: &Corpus, config: &MiningConfig) -> PhraseDictionary {
    assert!(config.max_len >= 1, "max_len must be at least 1");
    assert!(
        (1..=config.max_len).contains(&config.min_len),
        "min_len must be in 1..=max_len"
    );
    assert!(config.min_df >= 1, "min_df must be at least 1");

    let mut dict = PhraseDictionary::new();

    // Level 1: dense word document frequencies.
    let word_df = ipm_corpus::stats::word_document_frequencies(corpus);
    let frequent_word = |w: WordId| word_df[w.index()] >= config.min_df;

    if config.min_len == 1 {
        // Admit unigrams in (deterministic) word-id order.
        for (i, &df) in word_df.iter().enumerate() {
            if df >= config.min_df {
                dict.insert(&[WordId(i as u32)], df);
            }
        }
    }
    if config.max_len == 1 {
        return dict;
    }

    // Level 2 upwards. `prev` holds the frequent (n-1)-grams.
    // For level 2 the prefix/suffix check is against word dfs directly.
    let mut prev: FxHashSet<Box<[WordId]>> = FxHashSet::default();
    // Reused per-document window buffer; the borrowed windows point into
    // `corpus`, which outlives the loop.
    let mut doc_wins: Vec<&[WordId]> = Vec::new();

    for level in 2..=config.max_len {
        let mut counts: FxHashMap<Box<[WordId]>, u32> = fx_map_with_capacity(prev.len().max(1024));
        for doc in corpus.docs() {
            if doc.tokens.len() < level {
                continue;
            }
            doc_wins.clear();
            for win in doc.tokens.windows(level) {
                let candidate_ok = if level == 2 {
                    frequent_word(win[0]) && frequent_word(win[1])
                } else {
                    prev.contains(&win[..level - 1]) && prev.contains(&win[1..])
                };
                if candidate_ok {
                    doc_wins.push(win);
                }
            }
            // Per-document dedup: each distinct window counts once.
            doc_wins.sort_unstable();
            doc_wins.dedup();
            for win in &doc_wins {
                match counts.get_mut(*win) {
                    Some(c) => *c += 1,
                    None => {
                        counts.insert((*win).into(), 1);
                    }
                }
            }
        }

        // Collect survivors in deterministic (lexicographic) order.
        let mut survivors: Vec<(Box<[WordId]>, u32)> = counts
            .into_iter()
            .filter(|&(_, c)| c >= config.min_df)
            .collect();
        survivors.sort_unstable_by(|a, b| a.0.cmp(&b.0));

        if survivors.is_empty() {
            break; // no level-n phrases => no level-(n+1) candidates either
        }

        prev = survivors.iter().map(|(g, _)| g.clone()).collect();
        if level >= config.min_len {
            for (gram, df) in &survivors {
                dict.insert(gram, *df);
            }
        }
    }

    dict
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipm_corpus::{CorpusBuilder, TokenizerConfig};

    fn corpus_from(texts: &[&str]) -> Corpus {
        let mut b = CorpusBuilder::new(TokenizerConfig::default());
        for t in texts {
            b.add_text(t);
        }
        b.build()
    }

    /// Reference miner: enumerate every window of every length and count
    /// document frequency exactly with no pruning.
    fn naive_mine(
        corpus: &Corpus,
        cfg: &MiningConfig,
    ) -> std::collections::BTreeMap<Vec<WordId>, u32> {
        let mut counts = std::collections::BTreeMap::new();
        for doc in corpus.docs() {
            let mut seen = std::collections::BTreeSet::new();
            for len in cfg.min_len..=cfg.max_len {
                if doc.tokens.len() < len {
                    continue;
                }
                for win in doc.tokens.windows(len) {
                    seen.insert(win.to_vec());
                }
            }
            for g in seen {
                *counts.entry(g).or_insert(0) += 1;
            }
        }
        counts.retain(|_, c| *c >= cfg.min_df);
        counts
    }

    #[test]
    fn mines_repeated_bigram() {
        let texts: Vec<String> = (0..5)
            .map(|i| format!("economic minister spoke {i}"))
            .collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let c = corpus_from(&refs);
        let cfg = MiningConfig {
            min_df: 5,
            max_len: 3,
            min_len: 2,
        };
        let dict = mine_phrases(&c, &cfg);
        let econ = c.word_id("economic").unwrap();
        let min = c.word_id("minister").unwrap();
        let spoke = c.word_id("spoke").unwrap();
        assert!(dict.get(&[econ, min]).is_some());
        assert!(dict.get(&[min, spoke]).is_some());
        assert!(dict.get(&[econ, min, spoke]).is_some());
        // The numbered tail words have df 1 each.
        assert_eq!(dict.len(), 3);
        for (_, _, df) in dict.iter() {
            assert_eq!(df, 5);
        }
    }

    #[test]
    fn unigrams_included_when_min_len_1() {
        let c = corpus_from(&["a b", "a c", "a d"]);
        let dict = mine_phrases(
            &c,
            &MiningConfig {
                min_df: 3,
                max_len: 2,
                min_len: 1,
            },
        );
        let a = c.word_id("a").unwrap();
        assert_eq!(dict.len(), 1);
        let id = dict.get(&[a]).unwrap();
        assert_eq!(dict.df(id), 3);
    }

    #[test]
    fn df_counts_documents_not_occurrences() {
        let c = corpus_from(&["x y x y x y", "x y"]);
        let dict = mine_phrases(
            &c,
            &MiningConfig {
                min_df: 2,
                max_len: 2,
                min_len: 2,
            },
        );
        let x = c.word_id("x").unwrap();
        let y = c.word_id("y").unwrap();
        let id = dict.get(&[x, y]).unwrap();
        assert_eq!(dict.df(id), 2);
    }

    #[test]
    fn apriori_matches_naive_on_random_corpus() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let mut b = CorpusBuilder::new(TokenizerConfig::default());
        for _ in 0..60 {
            let len = rng.gen_range(3..40);
            let text: Vec<String> = (0..len)
                .map(|_| format!("t{}", rng.gen_range(0..12)))
                .collect();
            b.add_text(&text.join(" "));
        }
        let c = b.build();
        for (min_df, max_len, min_len) in [(2, 4, 1), (3, 3, 2), (5, 6, 1)] {
            let cfg = MiningConfig {
                min_df,
                max_len,
                min_len,
            };
            let dict = mine_phrases(&c, &cfg);
            let naive = naive_mine(&c, &cfg);
            assert_eq!(dict.len(), naive.len(), "cfg {cfg:?}");
            for (gram, df) in &naive {
                let id = dict
                    .get(gram)
                    .unwrap_or_else(|| panic!("missing gram {gram:?} under {cfg:?}"));
                assert_eq!(dict.df(id), *df);
            }
        }
    }

    #[test]
    fn prefix_closure_holds() {
        // Every prefix (indeed every contiguous sub-gram) of an admitted
        // phrase must itself be in the dictionary when min_len == 1.
        let (c, _) = ipm_corpus::synth::generate(&ipm_corpus::synth::tiny());
        let dict = mine_phrases(&c, &MiningConfig::default());
        for (_, words, _) in dict.iter() {
            for start in 0..words.len() {
                for end in (start + 1)..=words.len() {
                    assert!(
                        dict.get(&words[start..end]).is_some(),
                        "sub-gram of {words:?} missing"
                    );
                }
            }
        }
    }

    #[test]
    fn df_antimonotone_in_length() {
        let (c, _) = ipm_corpus::synth::generate(&ipm_corpus::synth::tiny());
        let dict = mine_phrases(&c, &MiningConfig::default());
        for (id, words, df) in dict.iter() {
            if words.len() >= 2 {
                let prefix = dict.get(&words[..words.len() - 1]).unwrap();
                assert!(
                    dict.df(prefix) >= df,
                    "df({prefix:?}) < df({id:?}) violates anti-monotonicity"
                );
            }
        }
    }

    #[test]
    fn empty_corpus_yields_empty_dictionary() {
        let c = CorpusBuilder::default().build();
        let dict = mine_phrases(&c, &MiningConfig::default());
        assert!(dict.is_empty());
    }

    #[test]
    fn max_len_respected() {
        let texts: Vec<String> = (0..6).map(|_| "a b c d e f g h".to_owned()).collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let c = corpus_from(&refs);
        let dict = mine_phrases(
            &c,
            &MiningConfig {
                min_df: 6,
                max_len: 4,
                min_len: 1,
            },
        );
        assert_eq!(dict.max_phrase_words(), 4);
    }

    #[test]
    #[should_panic(expected = "min_len")]
    fn invalid_config_panics() {
        let c = corpus_from(&["a"]);
        let _ = mine_phrases(
            &c,
            &MiningConfig {
                min_df: 1,
                max_len: 2,
                min_len: 3,
            },
        );
    }
}
