//! Disk-resident word lists: cursors and probes that charge simulated IO.
//!
//! [`DiskLists`] bundles *three* serialized images — the score-ordered
//! [`WordListFile`] (NRA/TA sorted access), the phrase-ID-ordered
//! [`WordListFile`] (SMJ sorted access and TA random probes), and the
//! [`PhraseListFile`] (result-text lookup) — behind one shared
//! [`BufferPool`] (queries interleave reads from several lists and files,
//! and they compete for the same 16 pages — exactly the effect the paper's
//! simulation measures).
//!
//! [`DiskLists`] implements [`ipm_index::backend::ListBackend`], so all
//! four retrieval algorithms of `ipm-core` (NRA, SMJ, TA, exact) serve
//! queries over it unchanged, with every access accounted by the
//! [`CostModel`].

use ipm_corpus::{Corpus, Feature, PhraseId};
use ipm_index::backend::ListBackend;
use ipm_index::cursor::{prefix_len, IdListCursor, ScoredListCursor};
use ipm_index::phrase::PhraseDictionary;
use ipm_index::wordlists::{IdOrderedLists, ListEntry, WordPhraseLists};
use parking_lot::Mutex;

use crate::cost::{CostModel, IoStats};
use crate::files::{PhraseListFile, WordListFile};
use crate::pool::{BufferPool, PoolConfig};

/// Disk-resident index: serialized lists (both orders) + phrase file +
/// shared buffer pool.
pub struct DiskLists {
    words: WordListFile,
    id_words: WordListFile,
    phrases: PhraseListFile,
    pool: Mutex<BufferPool>,
    cost: CostModel,
    /// Phrase-id partition this image serves (`None` = full space; see
    /// [`DiskLists::shard_image`]).
    range: Option<(PhraseId, PhraseId)>,
}

impl DiskLists {
    /// Serializes `lists` (and the id-ordered view derived from them) and
    /// `dict`, wrapping them with a buffer pool in the paper's default
    /// configuration. The id-ordered image freezes whatever fraction
    /// `lists` carries (build-time partial lists, paper §4.4.2).
    pub fn build(corpus: &Corpus, dict: &PhraseDictionary, lists: &WordPhraseLists) -> Self {
        Self::with_config(
            corpus,
            dict,
            lists,
            PoolConfig::default(),
            CostModel::default(),
        )
    }

    /// Full-control constructor (id-ordered image derived from `lists`).
    pub fn with_config(
        corpus: &Corpus,
        dict: &PhraseDictionary,
        lists: &WordPhraseLists,
        pool: PoolConfig,
        cost: CostModel,
    ) -> Self {
        let id_lists = IdOrderedLists::from_score_ordered(lists);
        Self::with_lists(corpus, dict, lists, &id_lists, pool, cost)
    }

    /// Full-control constructor with an explicit id-ordered source — used
    /// when the SMJ lists were frozen at a *different* (build-time)
    /// fraction than the score-ordered lists, so the disk image mirrors
    /// the in-memory backend exactly (paper §4.4.2).
    pub fn with_lists(
        corpus: &Corpus,
        dict: &PhraseDictionary,
        lists: &WordPhraseLists,
        id_lists: &IdOrderedLists,
        pool: PoolConfig,
        cost: CostModel,
    ) -> Self {
        Self {
            words: WordListFile::build(lists),
            id_words: WordListFile::build_id_ordered(id_lists),
            phrases: PhraseListFile::build(corpus, dict),
            pool: Mutex::new(BufferPool::new(pool)),
            cost,
            range: None,
        }
    }

    /// Builds the disk image of **one phrase-id shard**: `lists` and
    /// `id_lists` must already be restricted to `range` (see
    /// `ipm_index::sharding`). Each shard serializes its own list regions
    /// and owns its own [`BufferPool`] (one simulated device per
    /// partition, so per-shard IO accounting stays deterministic under
    /// parallel execution); the phrase file is shared across shards — its
    /// `Bytes` image is reference-counted, so cloning costs a pointer, and
    /// any shard can resolve any result phrase's text.
    pub fn shard_image(
        lists: &WordPhraseLists,
        id_lists: &IdOrderedLists,
        phrases: &PhraseListFile,
        pool: PoolConfig,
        cost: CostModel,
        range: (PhraseId, PhraseId),
    ) -> Self {
        Self {
            words: WordListFile::build(lists),
            id_words: WordListFile::build_id_ordered(id_lists),
            phrases: phrases.clone(),
            pool: Mutex::new(BufferPool::new(pool)),
            cost,
            range: Some(range),
        }
    }

    /// The cost model in force.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Snapshot of accumulated IO statistics.
    pub fn io_stats(&self) -> IoStats {
        self.pool.lock().stats()
    }

    /// Simulated IO milliseconds accumulated so far.
    pub fn io_ms(&self) -> f64 {
        self.io_stats().io_ms(&self.cost)
    }

    /// Cold-cache reset (between queries in the experiment harness).
    pub fn reset_io(&self) {
        self.pool.lock().reset();
    }

    /// Length of a feature's serialized (score-ordered) list.
    pub fn list_len(&self, feature: Feature) -> usize {
        self.words.list_len(feature)
    }

    /// Total serialized size (both word-list orders + phrase file), in
    /// bytes.
    pub fn size_bytes(&self) -> usize {
        self.words.len_bytes() + self.id_words.len_bytes() + self.phrases.len_bytes()
    }

    /// Bytes of the phrase file alone (shard images share one phrase file;
    /// aggregate size accounting must count it once).
    pub fn phrase_bytes(&self) -> usize {
        self.phrases.len_bytes()
    }

    /// Opens a cursor over the top-`fraction` prefix of `feature`'s
    /// score-ordered list (run-time partial lists, paper §4.3).
    pub fn cursor(&self, feature: Feature, fraction: f64) -> DiskCursor<'_> {
        let limit = prefix_len(self.words.list_len(feature), fraction);
        DiskCursor {
            file: &self.words,
            pool: &self.pool,
            feature,
            pos: 0,
            limit,
        }
    }

    /// Opens a cursor over `feature`'s phrase-ID-ordered list (the SMJ
    /// access path; the full list — the id image's fraction was frozen at
    /// build time).
    pub fn id_cursor(&self, feature: Feature) -> DiskCursor<'_> {
        let limit = self.id_words.list_len(feature);
        DiskCursor {
            file: &self.id_words,
            pool: &self.pool,
            feature,
            pos: 0,
            limit,
        }
    }

    /// Random probe of `P(feature|phrase)` by binary search in the
    /// id-ordered file, charged to the pool.
    pub fn probe(&self, feature: Feature, phrase: PhraseId) -> f64 {
        self.id_words
            .probe_id_ordered(feature, phrase, &mut self.pool.lock())
    }

    /// Reads a result phrase's text through the pool (the paper's final
    /// step: "the phrases corresponding to top-k candidates ... are looked
    /// up from the Phrase List").
    pub fn phrase_text(&self, id: PhraseId) -> Option<String> {
        self.phrases.read(id, &mut self.pool.lock())
    }
}

impl std::fmt::Debug for DiskLists {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskLists")
            .field("word_bytes", &self.words.len_bytes())
            .field("id_word_bytes", &self.id_words.len_bytes())
            .field("phrase_bytes", &self.phrases.len_bytes())
            .field("io", &self.io_stats())
            .finish()
    }
}

impl ListBackend for DiskLists {
    type ScoreCursor<'a> = DiskCursor<'a>;
    type IdCursor<'a> = DiskCursor<'a>;

    fn score_cursor(&self, feature: Feature, fraction: f64) -> DiskCursor<'_> {
        self.cursor(feature, fraction)
    }

    fn id_cursor(&self, feature: Feature) -> DiskCursor<'_> {
        DiskLists::id_cursor(self, feature)
    }

    fn probe(&self, feature: Feature, phrase: PhraseId) -> f64 {
        DiskLists::probe(self, feature, phrase)
    }

    fn list_len(&self, feature: Feature) -> usize {
        DiskLists::list_len(self, feature)
    }

    fn phrase_range(&self) -> Option<(PhraseId, PhraseId)> {
        self.range
    }

    fn io_fetches(&self) -> u64 {
        self.pool.lock().stats().total_fetches()
    }
}

/// A forward cursor over one disk-resident list run (score-ordered or
/// id-ordered, depending on the file it was opened on).
pub struct DiskCursor<'a> {
    file: &'a WordListFile,
    pool: &'a Mutex<BufferPool>,
    feature: Feature,
    pos: usize,
    limit: usize,
}

impl DiskCursor<'_> {
    fn advance(&mut self) -> Option<ListEntry> {
        if self.pos >= self.limit {
            return None;
        }
        let mut pool = self.pool.lock();
        let e = self.file.read_entry(self.feature, self.pos, &mut pool);
        if e.is_some() {
            self.pos += 1;
        }
        e
    }
}

impl ScoredListCursor for DiskCursor<'_> {
    fn next_entry(&mut self) -> Option<ListEntry> {
        self.advance()
    }

    fn len(&self) -> usize {
        self.limit
    }

    fn position(&self) -> usize {
        self.pos
    }
}

impl IdListCursor for DiskCursor<'_> {
    fn next_entry(&mut self) -> Option<ListEntry> {
        self.advance()
    }

    fn len(&self) -> usize {
        self.limit
    }
}

/// Convenience: builds disk lists directly from a corpus index bundle.
pub fn disk_lists_from(
    corpus: &Corpus,
    index: &ipm_index::corpus_index::CorpusIndex,
    lists: &WordPhraseLists,
) -> DiskLists {
    DiskLists::build(corpus, &index.dict, lists)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipm_index::corpus_index::{CorpusIndex, IndexConfig};
    use ipm_index::mining::MiningConfig;
    use ipm_index::wordlists::WordListConfig;

    fn setup() -> (ipm_corpus::Corpus, CorpusIndex, WordPhraseLists) {
        let (c, _) = ipm_corpus::synth::generate(&ipm_corpus::synth::tiny());
        let index = CorpusIndex::build(
            &c,
            &IndexConfig {
                mining: MiningConfig {
                    min_df: 3,
                    max_len: 4,
                    min_len: 1,
                },
            },
        );
        let lists = WordPhraseLists::build(&c, &index, &WordListConfig::default());
        (c, index, lists)
    }

    #[test]
    fn cursor_yields_same_entries_as_memory_list() {
        let (c, index, lists) = setup();
        let disk = DiskLists::build(&c, &index.dict, &lists);
        let feat = *lists
            .features()
            .iter()
            .find(|f| !lists.list(**f).is_empty())
            .unwrap();
        let mut cur = disk.cursor(feat, 1.0);
        let want = lists.list(feat);
        assert_eq!(ScoredListCursor::len(&cur), want.len());
        for e in want {
            let got = ScoredListCursor::next_entry(&mut cur).unwrap();
            assert_eq!(got.phrase, e.phrase);
            assert_eq!(got.prob.to_bits(), e.prob.to_bits());
        }
        assert!(ScoredListCursor::next_entry(&mut cur).is_none());
        assert!(disk.io_stats().total_accesses() > 0);
    }

    #[test]
    fn id_cursor_matches_memory_id_lists() {
        let (c, index, lists) = setup();
        let disk = DiskLists::build(&c, &index.dict, &lists);
        let id_lists = IdOrderedLists::from_score_ordered(&lists);
        for feat in lists.features() {
            let want = id_lists.list(*feat);
            let mut cur = DiskLists::id_cursor(&disk, *feat);
            assert_eq!(IdListCursor::len(&cur), want.len());
            for e in want {
                let got = IdListCursor::next_entry(&mut cur).unwrap();
                assert_eq!(got.phrase, e.phrase);
                assert_eq!(got.prob.to_bits(), e.prob.to_bits());
            }
            assert!(IdListCursor::next_entry(&mut cur).is_none());
        }
    }

    #[test]
    fn probe_matches_memory_probe_and_charges_io() {
        let (c, index, lists) = setup();
        let disk = DiskLists::build(&c, &index.dict, &lists);
        let id_lists = IdOrderedLists::from_score_ordered(&lists);
        disk.reset_io();
        let mut probes = 0;
        for feat in lists.features().iter().take(20) {
            for e in lists.list(*feat).iter().take(10) {
                assert_eq!(DiskLists::probe(&disk, *feat, e.phrase), e.prob);
                probes += 1;
            }
            assert_eq!(
                DiskLists::probe(&disk, *feat, PhraseId(u32::MAX)),
                ipm_index::backend::probe_id_ordered(id_lists.list(*feat), PhraseId(u32::MAX))
            );
        }
        assert!(probes > 0);
        assert!(
            disk.io_stats().total_accesses() >= probes,
            "each probe touches at least one entry"
        );
    }

    #[test]
    fn partial_cursor_stops_at_fraction() {
        let (c, index, lists) = setup();
        let disk = DiskLists::build(&c, &index.dict, &lists);
        let feat = *lists
            .features()
            .iter()
            .max_by_key(|f| lists.list(**f).len())
            .unwrap();
        let full_len = lists.list(feat).len();
        let mut cur = disk.cursor(feat, 0.25);
        let expect = ipm_index::cursor::prefix_len(full_len, 0.25);
        assert_eq!(ScoredListCursor::len(&cur), expect);
        let mut n = 0;
        while ScoredListCursor::next_entry(&mut cur).is_some() {
            n += 1;
        }
        assert_eq!(n, expect);
    }

    #[test]
    fn io_accounting_and_reset() {
        let (c, index, lists) = setup();
        let disk = DiskLists::build(&c, &index.dict, &lists);
        let feat = *lists
            .features()
            .iter()
            .max_by_key(|f| lists.list(**f).len())
            .unwrap();
        let mut cur = disk.cursor(feat, 1.0);
        while ScoredListCursor::next_entry(&mut cur).is_some() {}
        assert!(disk.io_ms() > 0.0);
        disk.reset_io();
        assert_eq!(disk.io_stats(), IoStats::default());
    }

    #[test]
    fn phrase_text_lookup_via_pool() {
        let (c, index, lists) = setup();
        let disk = DiskLists::build(&c, &index.dict, &lists);
        let (id, words, _) = index.dict.iter().next().unwrap();
        let want = c.render_words(words);
        assert_eq!(disk.phrase_text(id), Some(want));
        assert_eq!(disk.phrase_text(PhraseId(u32::MAX)), None);
    }

    #[test]
    fn size_bytes_counts_all_files() {
        let (c, index, lists) = setup();
        let disk = DiskLists::build(&c, &index.dict, &lists);
        assert_eq!(
            disk.size_bytes(),
            2 * lists.total_entries() * ipm_index::wordlists::ENTRY_BYTES
                + index.dict.len() * crate::files::PHRASE_ENTRY_BYTES
        );
    }

    #[test]
    fn round_robin_cursors_produce_random_io() {
        // Two cursors over far-apart lists read alternately: the head seeks
        // between the runs, which the simulator must classify as random.
        let (c, index, lists) = setup();
        let disk = DiskLists::with_config(
            &c,
            &index.dict,
            &lists,
            PoolConfig {
                page_size: 256, // small pages to force many fetches
                capacity_pages: 4,
                lookahead_pages: 1,
            },
            CostModel::default(),
        );
        let mut big: Vec<Feature> = lists
            .features()
            .iter()
            .copied()
            .filter(|f| lists.list(*f).len() > 64)
            .collect();
        big.sort_by_key(|f| lists.list(*f).len());
        let (fa, fb) = (big[0], big[big.len() - 1]);
        let mut ca = disk.cursor(fa, 1.0);
        let mut cb = disk.cursor(fb, 1.0);
        for _ in 0..50 {
            ScoredListCursor::next_entry(&mut ca);
            ScoredListCursor::next_entry(&mut cb);
        }
        let s = disk.io_stats();
        assert!(s.random_fetches > 2, "interleaved reads should seek: {s:?}");
    }
}
