//! The shard-aware disk image: one serialized list region per phrase-id
//! partition, one simulated device (buffer pool) per shard.
//!
//! [`ShardedDiskImage`] serializes every shard of an
//! `ipm_index::sharding::ShardedWordLists` into its own [`DiskLists`] —
//! separate score-ordered and id-ordered list regions per shard — while
//! the fixed-width phrase file (paper §4.2.1) is built **once** and shared
//! across shards through its reference-counted `Bytes` image.
//!
//! Pools are per shard rather than global: shards execute on separate
//! threads, and a single shared pool would make the sequential-vs-random
//! classification of the paper's §5.5 simulation depend on thread
//! interleaving. With one pool per shard, each shard's accounting is the
//! deterministic cost of its own traversal (each shard models its own
//! partition device), and a query's total IO is the deterministic sum of
//! the per-shard stats ([`ShardedDiskImage::io_stats`]). All shards share
//! one [`CostModel`] and one [`PoolConfig`], so per-access pricing matches
//! the unsharded §5.5 methodology.

use ipm_corpus::{Corpus, PhraseId};
use ipm_index::phrase::PhraseDictionary;
use ipm_index::sharding::ShardedWordLists;

use crate::cost::{CostModel, IoStats};
use crate::disklists::DiskLists;
use crate::files::PhraseListFile;
use crate::pool::PoolConfig;

/// A disk-resident index partitioned by phrase-id range: one
/// [`DiskLists`] per shard, a shared phrase file, shared pool/cost
/// configuration.
pub struct ShardedDiskImage {
    shards: Vec<DiskLists>,
    ranges: Vec<(PhraseId, PhraseId)>,
}

impl ShardedDiskImage {
    /// Serializes every shard of `sharded`. `score_fraction < 1.0`
    /// truncates each shard's score-ordered lists to the top fraction
    /// before serializing (per-shard truncation — the shard-aware
    /// counterpart of `PhraseMiner::to_disk`'s build-time cut; NRA over
    /// such an image must run with partial-list bounds). The id-ordered
    /// regions freeze whatever fraction the shards already carry.
    pub fn build(
        corpus: &Corpus,
        dict: &PhraseDictionary,
        sharded: &ShardedWordLists,
        score_fraction: f64,
        pool: PoolConfig,
        cost: CostModel,
    ) -> Self {
        let phrases = PhraseListFile::build(corpus, dict);
        let mut shards = Vec::with_capacity(sharded.num_shards());
        let mut ranges = Vec::with_capacity(sharded.num_shards());
        for s in sharded.shards() {
            let lists = if score_fraction < 1.0 {
                s.lists().partial(score_fraction)
            } else {
                s.lists().clone()
            };
            shards.push(DiskLists::shard_image(
                &lists,
                s.id_lists(),
                &phrases,
                pool,
                cost,
                s.range(),
            ));
            ranges.push(s.range());
        }
        Self { shards, ranges }
    }

    /// The per-shard images, in ascending range order. Each is a complete
    /// `ListBackend` over its partition.
    pub fn shards(&self) -> &[DiskLists] {
        &self.shards
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The image owning `phrase` (ranges cover the full id space).
    pub fn owner(&self, phrase: PhraseId) -> &DiskLists {
        let i = self
            .ranges
            .iter()
            .position(|&(lo, hi)| lo <= phrase && phrase < hi)
            .expect("ranges cover the full phrase-id space");
        &self.shards[i]
    }

    /// Resolves a result phrase's text through the owning shard's pool
    /// (the paper's final phrase-list lookup, charged where the hit
    /// lives).
    pub fn phrase_text(&self, phrase: PhraseId) -> Option<String> {
        self.owner(phrase).phrase_text(phrase)
    }

    /// Cold-cache reset of every shard's pool (between queries, per the
    /// §5.5 methodology).
    pub fn reset_io(&self) {
        for s in &self.shards {
            s.reset_io();
        }
    }

    /// Aggregate IO across shards since the last reset — the query's total
    /// simulated bill (deterministic: each shard's pool is touched only by
    /// its own traversal).
    pub fn io_stats(&self) -> IoStats {
        let mut total = IoStats::default();
        for s in &self.shards {
            total.accumulate(&s.io_stats());
        }
        total
    }

    /// Total serialized bytes across shard list regions plus one shared
    /// phrase file (counted once — the `Bytes` image is shared).
    pub fn size_bytes(&self) -> usize {
        let lists: usize = self
            .shards
            .iter()
            .map(|s| s.size_bytes() - s.phrase_bytes())
            .sum();
        lists + self.shards.first().map_or(0, DiskLists::phrase_bytes)
    }
}

impl std::fmt::Debug for ShardedDiskImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedDiskImage")
            .field("shards", &self.shards.len())
            .field("bytes", &self.size_bytes())
            .field("io", &self.io_stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipm_corpus::Feature;
    use ipm_index::backend::ListBackend;
    use ipm_index::corpus_index::{CorpusIndex, IndexConfig};
    use ipm_index::cursor::ScoredListCursor;
    use ipm_index::mining::MiningConfig;
    use ipm_index::wordlists::{IdOrderedLists, WordListConfig, WordPhraseLists};

    fn setup() -> (Corpus, CorpusIndex, WordPhraseLists, IdOrderedLists) {
        let (c, _) = ipm_corpus::synth::generate(&ipm_corpus::synth::tiny());
        let index = CorpusIndex::build(
            &c,
            &IndexConfig {
                mining: MiningConfig {
                    min_df: 3,
                    max_len: 4,
                    min_len: 1,
                },
            },
        );
        let lists = WordPhraseLists::build(&c, &index, &WordListConfig::default());
        let idl = IdOrderedLists::from_score_ordered(&lists);
        (c, index, lists, idl)
    }

    fn image(n: usize) -> (ShardedDiskImage, WordPhraseLists, CorpusIndex) {
        let (c, index, lists, idl) = setup();
        let sharded = ShardedWordLists::build(&lists, &idl, index.dict.len(), n);
        let img = ShardedDiskImage::build(
            &c,
            &index.dict,
            &sharded,
            1.0,
            PoolConfig::default(),
            CostModel::default(),
        );
        (img, lists, index)
    }

    #[test]
    fn shard_cursors_reproduce_range_filtered_lists() {
        let (img, lists, _) = image(3);
        let feat: Feature = *lists
            .features()
            .iter()
            .max_by_key(|f| lists.list(**f).len())
            .unwrap();
        let mut seen = 0usize;
        for shard in img.shards() {
            let mut cur = shard.score_cursor(feat, 1.0);
            while let Some(e) = cur.next_entry() {
                let (lo, hi) = shard.phrase_range().unwrap();
                assert!(lo <= e.phrase && e.phrase < hi);
                assert!(lists
                    .list(feat)
                    .iter()
                    .any(|x| { x.phrase == e.phrase && x.prob.to_bits() == e.prob.to_bits() }));
                seen += 1;
            }
        }
        assert_eq!(seen, lists.list(feat).len(), "no entry lost or invented");
        assert!(img.io_stats().total_accesses() > 0);
    }

    #[test]
    fn io_aggregates_and_resets_across_shards() {
        let (img, lists, _) = image(2);
        let feat = *lists
            .features()
            .iter()
            .max_by_key(|f| lists.list(**f).len())
            .unwrap();
        for shard in img.shards() {
            let mut cur = shard.score_cursor(feat, 1.0);
            while ScoredListCursor::next_entry(&mut cur).is_some() {}
        }
        let total = img.io_stats();
        assert!(total.total_accesses() > 0);
        let per_shard_sum: u64 = img
            .shards()
            .iter()
            .map(|s| s.io_stats().total_accesses())
            .sum();
        assert_eq!(total.total_accesses(), per_shard_sum);
        img.reset_io();
        assert_eq!(img.io_stats(), IoStats::default());
    }

    #[test]
    fn phrase_text_resolves_through_the_owner() {
        let (img, _, index) = image(4);
        for (id, _, _) in index.dict.iter().take(20) {
            let direct = img.shards()[0].phrase_text(id);
            assert_eq!(img.phrase_text(id), direct, "shared phrase file");
            assert!(img.owner(id).phrase_range().unwrap().0 <= id);
        }
        assert_eq!(img.phrase_text(PhraseId(u32::MAX - 1)), None);
    }

    #[test]
    fn phrase_file_counted_once_in_size() {
        let (c, index, lists, idl) = setup();
        let one = ShardedDiskImage::build(
            &c,
            &index.dict,
            &ShardedWordLists::build(&lists, &idl, index.dict.len(), 1),
            1.0,
            PoolConfig::default(),
            CostModel::default(),
        );
        let four = ShardedDiskImage::build(
            &c,
            &index.dict,
            &ShardedWordLists::build(&lists, &idl, index.dict.len(), 4),
            1.0,
            PoolConfig::default(),
            CostModel::default(),
        );
        // Sharding redistributes the same entries; total bytes must match.
        assert_eq!(one.size_bytes(), four.size_bytes());
    }
}
