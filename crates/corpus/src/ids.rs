//! Compact integer identifiers used across the whole workspace.
//!
//! All identifiers are `u32` newtypes: corpora in scope for this system stay
//! well below 2^32 documents/words/phrases, and 4-byte IDs halve the memory
//! traffic of postings and candidate structures compared to `usize` (see the
//! "Type Sizes" guidance in the Rust perf book).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Constructs an identifier from a raw index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw `u32` value.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// Returns the identifier as a `usize` index.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u32 {
            #[inline]
            fn from(id: $name) -> u32 {
                id.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a document within a [`crate::Corpus`].
    ///
    /// Document IDs are dense: the `i`-th document added to a corpus has id
    /// `DocId(i)`, so postings lists can be intersected by merge and mapped
    /// to array offsets without indirection.
    DocId,
    "d"
);

id_type!(
    /// Identifier of a word in a [`crate::Vocabulary`].
    WordId,
    "w"
);

id_type!(
    /// Identifier of a phrase in the global phrase dictionary `P`.
    ///
    /// Phrase IDs are assigned by the phrase miner (crate `ipm-index`) in the
    /// order phrases are admitted to the dictionary; the paper's disk layout
    /// (its Figure 1) derives a phrase's byte offset from this ID.
    PhraseId,
    "p"
);

id_type!(
    /// Identifier of a metadata facet value, e.g. the interned form of
    /// `venue:sigmod` or `year:1997` (paper §1, Table 1).
    FacetId,
    "f"
);

/// A query feature: either a keyword or a metadata facet (paper Table 1).
///
/// The paper treats both uniformly — "we use *word* to generically refer to
/// any word or metadata facet that could appear in the query" (§4.2.2) — but
/// they live in different namespaces, so the distinction is kept explicit in
/// the type system and erased only inside the feature-keyed indexes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Feature {
    /// A keyword feature selecting `docs(D, w)`.
    Word(WordId),
    /// A metadata facet feature selecting the documents carrying the facet.
    Facet(FacetId),
}

impl Feature {
    /// Returns the word id if this feature is a keyword.
    #[inline]
    pub fn as_word(self) -> Option<WordId> {
        match self {
            Feature::Word(w) => Some(w),
            Feature::Facet(_) => None,
        }
    }

    /// Returns the facet id if this feature is a metadata facet.
    #[inline]
    pub fn as_facet(self) -> Option<FacetId> {
        match self {
            Feature::Word(_) => None,
            Feature::Facet(f) => Some(f),
        }
    }

    /// A dense encoding used as a map key: words map to even numbers and
    /// facets to odd ones, so both namespaces fit one `u64` key space.
    #[inline]
    pub fn encode(self) -> u64 {
        match self {
            Feature::Word(w) => (w.raw() as u64) << 1,
            Feature::Facet(f) => ((f.raw() as u64) << 1) | 1,
        }
    }

    /// Inverse of [`Feature::encode`].
    #[inline]
    pub fn decode(code: u64) -> Self {
        let raw = (code >> 1) as u32;
        if code & 1 == 0 {
            Feature::Word(WordId(raw))
        } else {
            Feature::Facet(FacetId(raw))
        }
    }
}

impl From<WordId> for Feature {
    #[inline]
    fn from(w: WordId) -> Self {
        Feature::Word(w)
    }
}

impl From<FacetId> for Feature {
    #[inline]
    fn from(f: FacetId) -> Self {
        Feature::Facet(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip() {
        let d = DocId::new(42);
        assert_eq!(d.raw(), 42);
        assert_eq!(d.index(), 42);
        assert_eq!(u32::from(d), 42);
        assert_eq!(DocId::from(42u32), d);
    }

    #[test]
    fn id_ordering_follows_raw_value() {
        assert!(PhraseId::new(1) < PhraseId::new(2));
        assert!(WordId::new(0) < WordId::new(u32::MAX));
    }

    #[test]
    fn debug_format_is_prefixed() {
        assert_eq!(format!("{:?}", DocId::new(7)), "d7");
        assert_eq!(format!("{:?}", WordId::new(7)), "w7");
        assert_eq!(format!("{:?}", PhraseId::new(7)), "p7");
        assert_eq!(format!("{:?}", FacetId::new(7)), "f7");
    }

    #[test]
    fn display_format_is_bare() {
        assert_eq!(format!("{}", DocId::new(9)), "9");
    }

    #[test]
    fn feature_encode_decode_roundtrip() {
        for f in [
            Feature::Word(WordId(0)),
            Feature::Word(WordId(123)),
            Feature::Facet(FacetId(0)),
            Feature::Facet(FacetId(u32::MAX)),
        ] {
            assert_eq!(Feature::decode(f.encode()), f);
        }
    }

    #[test]
    fn feature_encoding_namespaces_are_disjoint() {
        let w = Feature::Word(WordId(5)).encode();
        let f = Feature::Facet(FacetId(5)).encode();
        assert_ne!(w, f);
    }

    #[test]
    fn feature_accessors() {
        let w = Feature::Word(WordId(3));
        assert_eq!(w.as_word(), Some(WordId(3)));
        assert_eq!(w.as_facet(), None);
        let f = Feature::Facet(FacetId(4));
        assert_eq!(f.as_facet(), Some(FacetId(4)));
        assert_eq!(f.as_word(), None);
    }

    #[test]
    fn feature_from_impls() {
        assert_eq!(Feature::from(WordId(1)), Feature::Word(WordId(1)));
        assert_eq!(Feature::from(FacetId(1)), Feature::Facet(FacetId(1)));
    }

    #[test]
    fn default_ids_are_zero() {
        assert_eq!(DocId::default(), DocId::new(0));
    }
}
