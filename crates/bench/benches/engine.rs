//! Criterion benchmarks of the serving layer: per-query latency through the
//! [`ipm_core::QueryEngine`] for each algorithm, and multi-threaded
//! throughput over one shared immutable index.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ipm_core::{Algorithm, MinerConfig, PhraseMiner, QueryEngine, SearchOptions};

fn engine_and_queries() -> (QueryEngine, Vec<String>) {
    let (corpus, _) = ipm_corpus::synth::generate(&ipm_corpus::synth::tiny());
    let engine = QueryEngine::new(PhraseMiner::build(&corpus, MinerConfig::default()));
    let top = ipm_corpus::stats::top_words_by_df(engine.miner().corpus(), 8);
    let terms: Vec<String> = top
        .iter()
        .map(|&(w, _)| corpus.words().term(w).unwrap().to_owned())
        .collect();
    let queries = (0..terms.len() - 1)
        .flat_map(|i| {
            [
                format!("{} AND {}", terms[i], terms[i + 1]),
                format!("{} OR {}", terms[i], terms[i + 1]),
            ]
        })
        .collect();
    (engine, queries)
}

fn bench_engine_latency(c: &mut Criterion) {
    let (engine, queries) = engine_and_queries();
    let mut group = c.benchmark_group("engine/latency");
    for alg in [
        Algorithm::Nra,
        Algorithm::Smj,
        Algorithm::Ta,
        Algorithm::Exact,
    ] {
        let options = SearchOptions {
            algorithm: alg,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{alg:?}")),
            &options,
            |b, opts| {
                let mut i = 0usize;
                b.iter(|| {
                    let q = &queries[i % queries.len()];
                    i += 1;
                    engine.search_with(q, 5, opts).unwrap().hits.len()
                })
            },
        );
    }
    group.finish();
}

fn bench_engine_throughput(c: &mut Criterion) {
    let (engine, queries) = engine_and_queries();
    let mut group = c.benchmark_group("engine/throughput");
    let batch = 64u64;
    group.throughput(Throughput::Elements(batch));
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &n| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for t in 0..n {
                        let engine = engine.clone();
                        let queries = &queries;
                        s.spawn(move || {
                            for i in 0..(batch as usize / n) {
                                let q = &queries[(t + i) % queries.len()];
                                engine.search(q, 5).unwrap();
                            }
                        });
                    }
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine_latency, bench_engine_throughput);
criterion_main!(benches);
