//! Criterion benchmarks of the storage substrate: buffer-pool overhead,
//! the pool-size / lookahead ablation of the disk cost model, and the
//! bit-packed (§4.2.2) vs 12-byte list layout.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ipm_index::cursor::ScoredListCursor;
use ipm_storage::{BufferPool, CostModel, PoolConfig};

fn bench_pool_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool/scan_10k_pages");
    group.sample_size(50);
    for lookahead in [0usize, 1, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(lookahead),
            &lookahead,
            |b, &la| {
                b.iter(|| {
                    let mut pool = BufferPool::new(PoolConfig {
                        page_size: 32 * 1024,
                        capacity_pages: 16,
                        lookahead_pages: la,
                    });
                    for p in 0..10_000u64 {
                        pool.access(p, 10_000);
                    }
                    pool.stats().io_ms(&CostModel::default())
                })
            },
        );
    }
    group.finish();
}

fn bench_pool_capacity_ablation(c: &mut Criterion) {
    // Round-robin over 4 interleaved streams (the NRA access pattern):
    // a larger pool absorbs the interleaving, a small one thrashes.
    let mut group = c.benchmark_group("pool/interleaved_streams");
    group.sample_size(50);
    for capacity in [4usize, 16, 64] {
        group.bench_with_input(
            BenchmarkId::from_parameter(capacity),
            &capacity,
            |b, &cap| {
                b.iter(|| {
                    let mut pool = BufferPool::new(PoolConfig {
                        page_size: 32 * 1024,
                        capacity_pages: cap,
                        lookahead_pages: 1,
                    });
                    let bases = [0u64, 25_000, 50_000, 75_000];
                    for i in 0..2_000u64 {
                        for &base in &bases {
                            pool.access(base + i / 8, 100_000);
                        }
                    }
                    pool.stats().io_ms(&CostModel::default())
                })
            },
        );
    }
    group.finish();
}

fn bench_packed_vs_plain_scan(c: &mut Criterion) {
    // Decode + simulated-IO cost of scanning the longest word list end to
    // end in both serialized layouts. Packing touches ~3/4 of the pages at
    // a small per-entry bit-twiddling cost.
    let (corpus, _) = ipm_corpus::synth::generate(&ipm_corpus::synth::tiny());
    let miner = ipm_core::PhraseMiner::build(&corpus, ipm_core::MinerConfig::default());
    let packed = miner.to_packed(1.0);
    let disk = miner.to_disk(1.0);
    let feat = *miner
        .lists()
        .features()
        .iter()
        .max_by_key(|f| miner.lists().list(**f).len())
        .unwrap();

    let mut group = c.benchmark_group("storage/list_scan");
    group.sample_size(30);
    group.bench_function("plain_12B", |b| {
        b.iter(|| {
            disk.reset_io();
            let mut cur = disk.cursor(feat, 1.0);
            let mut acc = 0.0;
            while let Some(e) = cur.next_entry() {
                acc += e.prob;
            }
            acc
        })
    });
    group.bench_function("packed_log2P_plus_64b", |b| {
        b.iter(|| {
            packed.reset_io();
            let mut cur = packed.cursor(feat, 1.0);
            let mut acc = 0.0;
            while let Some(e) = cur.next_entry() {
                acc += e.prob;
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pool_scan,
    bench_pool_capacity_ablation,
    bench_packed_vs_plain_scan
);
criterion_main!(benches);
