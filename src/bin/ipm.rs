//! `ipm` — command-line interesting-phrase mining.
//!
//! ```text
//! ipm index --input docs.jsonl --out index_dir [--min-df 5] [--max-len 6]
//! ipm query --input docs.jsonl "trade AND reserves" [--k 5] [--method nra|smj|ta|exact] [--backend memory|disk]
//! ipm stats --input docs.jsonl
//! ipm demo  "w1 OR w2"            # synthetic corpus, no input file needed
//! ```
//!
//! Input formats: `.jsonl` (objects with `text` and optional `facets`) or
//! plain text (one document per line). `index` persists the serialized word
//! lists + phrase file (with checksums) into a directory; `query` builds
//! in-memory and answers one query.

use interesting_phrases::prelude::*;
use ipm_storage::persist;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  ipm index --input <file> --out <dir> [--min-df N] [--max-len N] [--fraction F]
  ipm query --input <file> <query string> [--k N] [--method nra|smj|ta|exact]
            [--backend memory|disk] [--fraction F]
  ipm repl  [--input <file>] [--k N] [--filter-redundant true]
  ipm stats --input <file>
  ipm demo  <query string> [--k N]

query strings: terms joined by AND or OR (one operator per query);
key:value terms are metadata facets. Bare terms default to AND.
repl reads one query per stdin line (synthetic demo corpus without --input).";

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err("missing subcommand".into());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "index" => cmd_index(rest),
        "query" => cmd_query(rest),
        "repl" => cmd_repl(rest),
        "stats" => cmd_stats(rest),
        "demo" => cmd_demo(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand: {other}")),
    }
}

/// Minimal flag parser: `--key value` pairs plus positional arguments.
struct Flags {
    named: Vec<(String, String)>,
    positional: Vec<String>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut named = Vec::new();
        let mut positional = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let val = it
                    .next()
                    .ok_or_else(|| format!("flag --{key} needs a value"))?;
                named.push((key.to_owned(), val.clone()));
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Self { named, positional })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.named
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{key}: {v}")),
        }
    }
}

fn load_corpus(path: &str) -> Result<Corpus, String> {
    let tokenizer = TokenizerConfig::default();
    let corpus = if path.ends_with(".jsonl") || path.ends_with(".ndjson") {
        ipm_corpus::loader::load_jsonl(path, tokenizer)
    } else {
        ipm_corpus::loader::load_lines(path, tokenizer)
    }
    .map_err(|e| format!("cannot load {path}: {e}"))?;
    if corpus.is_empty() {
        return Err(format!("{path} contains no documents"));
    }
    Ok(corpus)
}

fn build_miner(corpus: &Corpus, flags: &Flags) -> Result<PhraseMiner, String> {
    let min_df: u32 = flags.get_parsed("min-df", 5)?;
    let max_len: usize = flags.get_parsed("max-len", 6)?;
    let config = MinerConfig {
        index: ipm_index::corpus_index::IndexConfig {
            mining: ipm_index::mining::MiningConfig {
                min_df,
                max_len,
                min_len: 1,
            },
        },
        ..Default::default()
    };
    eprintln!(
        "indexing {} documents (min-df {min_df}, n-grams ≤ {max_len})...",
        corpus.num_docs()
    );
    Ok(PhraseMiner::build(corpus, config))
}

fn cmd_index(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let input = flags.get("input").ok_or("index needs --input")?;
    let out = flags.get("out").ok_or("index needs --out")?;
    let fraction: f64 = flags.get_parsed("fraction", 1.0)?;

    let corpus = load_corpus(input)?;
    let miner = build_miner(&corpus, &flags)?;

    std::fs::create_dir_all(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    let lists = if fraction < 1.0 {
        miner.lists().partial(fraction)
    } else {
        miner.lists().clone()
    };
    let word_file = ipm_storage::WordListFile::build(&lists);
    let phrase_file = ipm_storage::PhraseListFile::build(miner.corpus(), &miner.index().dict);
    let wl_path = format!("{out}/wordlists.ipw");
    let pl_path = format!("{out}/phrases.ipp");
    persist::save_word_lists(&word_file, &wl_path).map_err(|e| e.to_string())?;
    persist::save_phrase_list(&phrase_file, &pl_path).map_err(|e| e.to_string())?;
    println!(
        "wrote {wl_path} ({} entries, {} bytes) and {pl_path} ({} phrases, {} bytes)",
        word_file.total_entries(),
        word_file.len_bytes(),
        phrase_file.num_phrases(),
        phrase_file.len_bytes()
    );
    // Verify the files read back cleanly (checksums) before declaring success.
    persist::load_word_lists(&wl_path).map_err(|e| format!("verification failed: {e}"))?;
    persist::load_phrase_list(&pl_path).map_err(|e| format!("verification failed: {e}"))?;
    println!("verified: both files load with valid checksums");
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let input = flags.get("input").ok_or("query needs --input")?;
    let query_str = flags
        .positional
        .first()
        .ok_or("query needs a query string")?;
    let k: usize = flags.get_parsed("k", 5)?;
    let method = flags.get("method").unwrap_or("nra");
    let fraction: f64 = flags.get_parsed("fraction", 1.0)?;

    let backend = flags.get("backend").unwrap_or("memory");

    let corpus = load_corpus(input)?;
    let miner = build_miner(&corpus, &flags)?;
    let query = miner
        .parse_query_str(query_str)
        .map_err(|e| e.to_string())?;
    run_engine_and_print(
        &QueryEngine::new(miner),
        query,
        k,
        method,
        backend,
        fraction,
    )
}

fn cmd_demo(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let query_str = flags
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or("w1 OR w2");
    let k: usize = flags.get_parsed("k", 5)?;

    let (corpus, _) = ipm_corpus::synth::generate(&ipm_corpus::synth::tiny());
    let miner = PhraseMiner::build(&corpus, MinerConfig::default());
    let query = miner
        .parse_query_str(query_str)
        .map_err(|e| e.to_string())?;
    println!(
        "demo corpus: {} docs; query: {}",
        corpus.num_docs(),
        query.render(miner.corpus())
    );
    let engine = QueryEngine::new(miner);
    for backend in ["memory", "disk"] {
        for method in ["exact", "smj", "nra", "ta"] {
            println!("\n[{method} @ {backend}]");
            run_engine_and_print(&engine, query.clone(), k, method, backend, 1.0)?;
        }
    }
    // A repeated request is answered from the result cache.
    let start = std::time::Instant::now();
    let resp = engine.execute(query, k, &SearchOptions::default());
    let stats = engine.cache_stats();
    println!(
        "\nrepeat of [nra @ memory]: served_from_cache = {} in {:.3} ms \
         (cache: {} hits / {} misses)",
        resp.served_from_cache,
        start.elapsed().as_secs_f64() * 1e3,
        stats.hits,
        stats.misses,
    );
    Ok(())
}

/// Parses a `--method` name into an [`Algorithm`].
fn parse_method(method: &str) -> Result<Algorithm, String> {
    match method {
        "nra" => Ok(Algorithm::Nra),
        "smj" => Ok(Algorithm::Smj),
        "ta" => Ok(Algorithm::Ta),
        "exact" => Ok(Algorithm::Exact),
        other => Err(format!("unknown method: {other} (nra|smj|ta|exact)")),
    }
}

/// Serves one query through the unified engine and prints the hits, the
/// latency, and (for the disk backend) the simulated IO bill.
fn run_engine_and_print(
    engine: &QueryEngine,
    query: Query,
    k: usize,
    method: &str,
    backend: &str,
    fraction: f64,
) -> Result<(), String> {
    let options = SearchOptions {
        algorithm: parse_method(method)?,
        backend: match backend {
            "memory" => BackendChoice::Memory,
            "disk" => BackendChoice::Disk,
            other => return Err(format!("unknown backend: {other} (memory|disk)")),
        },
        nra_fraction: (fraction < 1.0).then_some(fraction),
        redundancy: None,
    };
    let resp = engine.execute(query, k, &options);
    if resp.hits.is_empty() {
        println!("(no phrases match)");
    }
    for (i, h) in resp.hits.iter().enumerate() {
        println!(
            "{:>2}. {:<40} score {:>9.4}  I≈{:.3}",
            i + 1,
            h.text,
            h.hit.score,
            h.interestingness
        );
    }
    let ms = resp.elapsed.as_secs_f64() * 1000.0;
    match resp.io {
        Some(io) => println!(
            "({method} @ {backend}, {ms:.2} ms compute + {:.1} ms simulated IO: {} seq / {} rand fetches)",
            io.io_ms(engine.disk().cost_model()),
            io.sequential_fetches,
            io.random_fetches,
        ),
        None => println!("({method} @ {backend}, {ms:.2} ms)"),
    }
    Ok(())
}

fn cmd_repl(args: &[String]) -> Result<(), String> {
    use std::io::{BufRead, Write};

    let flags = Flags::parse(args)?;
    let k: usize = flags.get_parsed("k", 5)?;
    let filter: bool = flags.get_parsed("filter-redundant", false)?;

    let corpus = match flags.get("input") {
        Some(path) => load_corpus(path)?,
        None => {
            eprintln!("no --input: serving the synthetic demo corpus");
            ipm_corpus::synth::generate(&ipm_corpus::synth::tiny()).0
        }
    };
    let miner = match flags.get("input") {
        Some(_) => build_miner(&corpus, &flags)?,
        None => PhraseMiner::build(&corpus, MinerConfig::default()),
    };
    let engine = QueryEngine::new(miner);
    let options = SearchOptions {
        redundancy: filter.then(RedundancyConfig::default),
        ..Default::default()
    };
    eprintln!(
        "ready: {} docs, {} phrases. One query per line (ctrl-d to exit).",
        corpus.num_docs(),
        engine.miner().index().dict.len()
    );

    let stdin = std::io::stdin();
    let mut out = std::io::stdout().lock();
    let prompt = || {
        eprint!("ipm> ");
        let _ = std::io::stderr().flush();
    };
    prompt();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("stdin read failed: {e}"))?;
        let input = line.trim();
        if input.is_empty() {
            prompt();
            continue;
        }
        if input == "quit" || input == "exit" {
            break;
        }
        match engine.search_with(input, k, &options) {
            Ok(resp) => {
                for (i, h) in resp.hits.iter().enumerate() {
                    writeln!(
                        out,
                        "{:>2}. {:<40} I≈{:.3}",
                        i + 1,
                        h.text,
                        h.interestingness
                    )
                    .map_err(|e| e.to_string())?;
                }
                writeln!(
                    out,
                    "({} hits, {:.2} ms)",
                    resp.hits.len(),
                    resp.elapsed.as_secs_f64() * 1e3
                )
                .map_err(|e| e.to_string())?;
            }
            Err(e) => eprintln!("error: {e}"),
        }
        prompt();
    }
    eprintln!("served {} queries", engine.queries_served());
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let input = flags.get("input").ok_or("stats needs --input")?;
    let corpus = load_corpus(input)?;
    let stats = ipm_corpus::stats::CorpusStats::compute(&corpus);
    println!("documents:            {}", stats.num_docs);
    println!("vocabulary:           {}", stats.vocab_size);
    println!("facet values:         {}", stats.num_facets);
    println!("total tokens:         {}", stats.total_tokens);
    println!("mean doc length:      {:.1}", stats.mean_doc_len);
    println!("max doc length:       {}", stats.max_doc_len);
    println!("mean distinct words:  {:.1}", stats.mean_distinct_words);
    println!(
        "zipf slope:           {:.2}",
        ipm_corpus::stats::zipf_slope(&corpus)
    );
    Ok(())
}
