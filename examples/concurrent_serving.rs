//! Concurrent serving: a real `ipm_server` on loopback, driven by real
//! TCP clients.
//!
//! The paper's conclusion — millisecond responses make phrase mining
//! feasible "for search-like interactive systems" — implies a server
//! answering many queries at once. This example builds the index once,
//! puts the [`QueryEngine`] behind the serving subsystem (bounded-queue
//! admission control, single-flight coalescing, worker pool), then drives
//! it over the line-delimited JSON protocol from several client threads.
//!
//! ```text
//! cargo run --release --example concurrent_serving
//! ```

use interesting_phrases::prelude::*;
use std::time::Instant;

fn main() {
    // Build once (the expensive offline step).
    let (corpus, _) = ipm_corpus::synth::generate(&ipm_corpus::synth::tiny());
    let engine = QueryEngine::new(PhraseMiner::build(&corpus, MinerConfig::default()));
    println!(
        "index ready: {} phrases over {} documents",
        engine.miner().index().dict.len(),
        corpus.num_docs()
    );

    // Put the engine behind the TCP protocol on an ephemeral port.
    let handle = Server::spawn(
        engine,
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            queue_depth: 64,
            fault_delay_ms: 0,
        },
    )
    .expect("bind loopback");
    let addr = handle.addr().to_string();
    println!("serving on {addr} (4 workers, queue depth 64)");

    // A small workload of string queries over frequent corpus words.
    let top = ipm_corpus::stats::top_words_by_df(handle.engine().miner().corpus(), 8);
    let terms: Vec<String> = top
        .iter()
        .map(|&(w, _)| corpus.words().term(w).unwrap().to_owned())
        .collect();
    let queries: Vec<String> = (0..terms.len() - 1)
        .flat_map(|i| {
            [
                format!("{} AND {}", terms[i], terms[i + 1]),
                format!("{} OR {}", terms[i], terms[i + 1]),
            ]
        })
        .collect();

    // Drive it from 4 closed-loop client threads over real sockets.
    let workers = 4;
    let rounds = 50;
    let start = Instant::now();
    std::thread::scope(|s| {
        for w in 0..workers {
            let addr = addr.clone();
            let queries = queries.clone();
            s.spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                for r in 0..rounds {
                    let q = &queries[(w + r) % queries.len()];
                    let mut req = WireSearchRequest::new(q.clone());
                    req.k = 5;
                    let resp = client.search(&req).expect("roundtrip");
                    assert_eq!(resp["ok"].as_bool(), Some(true));
                    if w == 0 && r == 0 {
                        println!("\nsample response for `{q}`:");
                        for hit in resp["result"]["hits"].as_array().unwrap() {
                            println!(
                                "  {:<30} I ≈ {:.3}",
                                hit["text"].as_str().unwrap(),
                                hit["interestingness"].as_f64().unwrap()
                            );
                        }
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed();

    let stats = handle.stats();
    println!(
        "\nserved {} responses to {workers} TCP clients in {:.1} ms ({:.2} ms/query wall)",
        stats.served,
        elapsed.as_secs_f64() * 1e3,
        elapsed.as_secs_f64() * 1e3 / stats.served.max(1) as f64,
    );
    println!(
        "result cache: {} hits / {} misses ({:.0}% hit rate); coalesced {} / shed {}",
        stats.cache.hits,
        stats.cache.misses,
        stats.cache.hit_rate() * 100.0,
        stats.coalesced,
        stats.shed,
    );

    // A coalescing burst: 8 clients fire the *same* query at once while
    // the engine cache is bypassed by an artificial 50 ms service time —
    // single-flight folds them onto (at most a couple of) executions.
    let mut burst = WireSearchRequest::new(queries[0].clone());
    burst.k = 5;
    burst.delay_ms = 50;
    let before = handle.engine().queries_served();
    let report = run_load(&addr, 8, 1, &burst).expect("burst");
    println!(
        "\ncoalescing burst: {report}; engine executed {} of 8 requests",
        handle.engine().queries_served() - before,
    );

    // The same server serves the simulated-disk backend; the per-backend
    // IO bill shows up in the aggregate stats.
    let mut disk_req = WireSearchRequest::new(queries[1].clone());
    disk_req.k = 5;
    disk_req.backend = BackendChoice::Disk;
    let mut client = Client::connect(&addr).expect("connect");
    let cold = client.search(&disk_req).expect("roundtrip");
    let warm = client.search(&disk_req).expect("roundtrip");
    println!(
        "\ndisk backend, `{}`: cold fetched {} pages; repeat served from cache = {}",
        disk_req.query,
        cold["result"]["io"]["sequential_fetches"]
            .as_u64()
            .unwrap_or(0)
            + cold["result"]["io"]["random_fetches"].as_u64().unwrap_or(0),
        warm["result"]["served_from_cache"] == true,
    );
    println!(
        "aggregate disk IO across all served queries: {} fetches",
        handle.stats().disk_io.total_fetches(),
    );

    // Budgets over the wire: a 1 ms deadline under a 100 ms simulated
    // service time is shed with a structured `deadline_exceeded` error —
    // queue wait counts against the budget, so dead-on-arrival requests
    // never hold a worker.
    let mut doomed = WireSearchRequest::new(queries[0].clone());
    doomed.delay_ms = 100;
    doomed.deadline_ms = Some(1);
    let shed = client.search(&doomed).expect("roundtrip");
    println!(
        "\ndeadline_ms=1 under delay_ms=100: ok={} error.kind={}",
        shed["ok"] == true,
        shed["error"]["kind"].as_str().unwrap_or("?"),
    );

    // A batch shares one admission slot and returns per-item results;
    // every result carries its completeness label.
    let batch = client
        .search_batch(&[
            WireSearchRequest::new(queries[0].clone()),
            WireSearchRequest::new(queries[1].clone()),
        ])
        .expect("batch roundtrip");
    for (i, item) in batch["batch"].as_array().unwrap().iter().enumerate() {
        println!(
            "batch[{i}]: ok={} completeness={}",
            item["ok"] == true,
            item["result"]["completeness"]["kind"]
                .as_str()
                .unwrap_or("?"),
        );
    }

    // Graceful shutdown over the wire: acknowledged, drained, joined.
    client.shutdown_server().expect("shutdown verb");
    handle.join();
    println!("\nserver drained and stopped");
}
