//! Query expansion: interesting phrases as expansion candidates.
//!
//! The paper's future-work section points out that the independence
//! assumption "could have many wide-ranging applications in techniques
//! that deal with phrases as a first class entity (e.g., query
//! expansion)". This example sketches that application: for a user query,
//! mine the top correlated phrases, drop the ones that merely repeat the
//! query words (§5.6's redundancy filter), and offer the survivors as
//! expansion terms.
//!
//! ```text
//! cargo run --release --example query_expansion
//! ```

use interesting_phrases::prelude::*;

fn main() {
    let (corpus, _) = ipm_corpus::synth::generate(&ipm_corpus::synth::tiny());
    let engine = QueryEngine::new(PhraseMiner::build(&corpus, MinerConfig::default()));

    // The "user query": the two most frequent corpus words, OR semantics
    // (expansion wants the widest relevant sub-collection).
    let top = ipm_corpus::stats::top_words_by_df(engine.miner().corpus(), 2);
    let terms: Vec<&str> = top
        .iter()
        .map(|&(w, _)| corpus.words().term(w).unwrap())
        .collect();
    let input = format!("{} OR {}", terms[0], terms[1]);
    println!("user query: {input}\n");

    // Plain top-k: strongest correlates, but several restate the query.
    let plain = engine.search(&input, 8).expect("terms are in-vocabulary");
    println!("raw interesting phrases:");
    for hit in &plain.hits {
        println!("  {:<32} I ≈ {:.3}", hit.text, hit.interestingness);
    }

    // Expansion candidates: suppress any phrase where half or more of the
    // words come from the query itself — what survives is *new* vocabulary
    // that co-occurs with the query's sub-collection.
    let options = SearchOptions {
        redundancy: Some(RedundancyConfig::default()),
        ..Default::default()
    };
    let expanded = engine
        .search_with(&input, 8, &options)
        .expect("same query parses");
    println!("\nexpansion candidates (redundancy-filtered):");
    for hit in &expanded.hits {
        println!("  {:<32} I ≈ {:.3}", hit.text, hit.interestingness);
    }

    // An expanded query: the original terms OR the top candidate's words.
    if let Some(best) = expanded.hits.first() {
        let mut expansion_terms: Vec<String> = terms.iter().map(|t| (*t).to_owned()).collect();
        expansion_terms.extend(best.text.split_whitespace().map(str::to_owned));
        expansion_terms.dedup();
        let expanded_query = expansion_terms.join(" OR ");
        println!("\nexpanded query: {expanded_query}");
        if let Ok(resp) = engine.search(&expanded_query, 5) {
            println!("results under the expanded query:");
            for hit in &resp.hits {
                println!("  {:<32} I ≈ {:.3}", hit.text, hit.interestingness);
            }
        }
    }
}
