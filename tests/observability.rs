//! Query-path observability acceptance tests: per-stage traces that
//! reconcile with wall time and with the response's own IO accounting,
//! per-query traces that sum to the engine's global metric counters under
//! concurrency and epoch bumps, a Prometheus exposition that stays valid
//! as the engine works, and the slow-query ring.

use interesting_phrases::prelude::*;
use std::time::{Duration, Instant};

fn build_engine(shards: usize, cache: bool) -> QueryEngine {
    let (corpus, _) = ipm_corpus::synth::generate(&ipm_corpus::synth::tiny());
    QueryEngine::with_config(
        PhraseMiner::build(&corpus, MinerConfig::default()),
        EngineConfig {
            cache: cache.then(Default::default),
            shards,
            ..Default::default()
        },
    )
}

fn top_query(engine: &QueryEngine, n: usize, op: &str) -> String {
    let miner = engine.miner();
    let corpus = miner.corpus();
    let top = ipm_corpus::stats::top_words_by_df(corpus, n);
    let words: Vec<&str> = top
        .iter()
        .map(|&(w, _)| corpus.words().term(w).unwrap())
        .collect();
    words.join(&format!(" {op} "))
}

/// The tentpole acceptance path: a budgeted, sharded, block-backend query
/// with `trace(true)` returns a trace whose top-level stages tile the
/// recorded wall time and whose per-shard counters reconcile exactly with
/// the response's `IoStats` and the engine's global access counters.
#[test]
fn traced_budgeted_sharded_block_query_reconciles() {
    let engine = build_engine(4, true);
    let q = top_query(&engine, 2, "OR");
    let before = engine.access_totals(BackendChoice::Block);
    assert_eq!(before.sorted_accesses, 0);

    let wall_started = Instant::now();
    let resp = engine
        .request(q.clone())
        .k(10)
        .backend(BackendChoice::Block)
        .shards(4)
        .io_budget(1_000_000)
        .trace(true)
        .run()
        .expect("traced block query");
    let wall = wall_started.elapsed();
    assert!(resp.completeness.is_exact(), "{:?}", resp.completeness);

    let trace = resp.trace.as_ref().expect("trace was requested");
    assert_eq!(trace.algorithm, "nra");
    assert_eq!(trace.backend, "block");
    assert_eq!(trace.shards, resp.shards);
    assert!(!trace.served_from_cache);
    assert_eq!(trace.budget_trip, None, "generous budget must not trip");

    // Wall-time tiling: the trace's total is bounded by the measured wall
    // time, and the top-level stages (parse, plan, cache probe, execute)
    // account for most of it — they are sequential and non-overlapping.
    assert!(
        trace.total <= wall,
        "trace total {:?} exceeds measured wall {wall:?}",
        trace.total
    );
    let top = trace.top_level_total();
    assert!(
        top <= trace.total,
        "top-level stages {top:?} overshoot the total {:?}",
        trace.total
    );
    assert!(
        top >= trace.total.mul_f64(0.3),
        "top-level stages {top:?} cover too little of {:?} — untraced gaps dominate",
        trace.total
    );
    for kind in [
        StageKind::Parse,
        StageKind::Plan,
        StageKind::CacheProbe,
        StageKind::Execute,
    ] {
        assert!(
            trace.stages.iter().any(|s| s.kind == kind),
            "missing top-level stage {kind:?}"
        );
    }
    let shard_spans = trace
        .stages
        .iter()
        .filter(|s| s.kind == StageKind::ShardExec)
        .count();
    assert_eq!(shard_spans, resp.shards, "one shard_exec span per shard");

    // IO reconciliation: the per-shard fetch deltas in the trace must sum
    // to exactly the response's own IoStats bill.
    let io = resp.io.expect("block backend reports IoStats");
    let shard_totals = trace.shard_totals();
    assert_eq!(shard_totals.len(), resp.shards);
    let trace_io: u64 = shard_totals.iter().map(|s| s.io_fetches).sum();
    assert_eq!(
        trace_io,
        io.total_fetches(),
        "trace shard IO must reconcile with the response IoStats"
    );

    // Counter reconciliation: the same shard rows sum to the engine's
    // global per-backend access counters (this was the only execution).
    let after = engine.access_totals(BackendChoice::Block);
    let sorted: u64 = shard_totals.iter().map(|s| s.sorted_accesses).sum();
    let skipped: u64 = shard_totals.iter().map(|s| s.entries_skipped).sum();
    let probes: u64 = shard_totals.iter().map(|s| s.random_probes).sum();
    assert!(sorted > 0, "an NRA run performs sorted accesses");
    assert_eq!(sorted, after.sorted_accesses);
    assert_eq!(skipped, after.entries_skipped);
    assert_eq!(probes, after.random_probes);
}

/// N concurrent traced clients: the per-query traces, summed across every
/// thread, equal the engine's global registry counters — and stay equal
/// across an epoch bump (ingest) in the middle of the run.
#[test]
fn concurrent_traces_sum_to_registry_counters() {
    let engine = build_engine(2, false); // no cache: every query executes
    let queries: Vec<String> = vec![
        top_query(&engine, 2, "OR"),
        top_query(&engine, 2, "AND"),
        top_query(&engine, 3, "OR"),
    ];
    let threads = 4usize;
    let per_thread = 6usize;

    let (sorted, probes, skipped, rounds) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let engine = engine.clone();
                let queries = queries.clone();
                s.spawn(move || {
                    let mut acc = (0u64, 0u64, 0u64, 0u64);
                    for i in 0..per_thread {
                        // Bump the epoch mid-run from one thread: counters
                        // must stay monotone and consistent across it.
                        if t == 0 && i == per_thread / 2 {
                            let w = engine.miner().corpus().word_id("w1").unwrap();
                            engine.ingest_document(&[w], &[]);
                        }
                        let q = &queries[(t + i) % queries.len()];
                        let resp = engine
                            .request(q.clone())
                            .k(5)
                            .trace(true)
                            .run()
                            .expect("traced query");
                        let trace = resp.trace.expect("trace requested");
                        for st in trace.shard_totals() {
                            acc.0 += st.sorted_accesses;
                            acc.1 += st.random_probes;
                            acc.2 += st.entries_skipped;
                            acc.3 += st.rounds;
                        }
                    }
                    acc
                })
            })
            .collect();
        handles.into_iter().fold((0, 0, 0, 0), |t, h| {
            let a = h.join().expect("trace thread");
            (t.0 + a.0, t.1 + a.1, t.2 + a.2, t.3 + a.3)
        })
    });

    let totals = engine.access_totals(BackendChoice::Memory);
    assert!(sorted > 0);
    assert_eq!(sorted, totals.sorted_accesses);
    assert_eq!(probes, totals.random_probes);
    assert_eq!(skipped, totals.entries_skipped);
    assert_eq!(rounds, totals.rounds);

    // Every query (all uncached here) is one latency histogram sample.
    let expected = (threads * per_thread) as u64;
    assert_eq!(engine.queries_served(), expected);
    assert_eq!(engine.latency_snapshot().count(), expected);
}

/// The engine's self-rendered exposition stays grammatically valid as the
/// engine works, and the lifecycle gauges/counters track ingest and
/// compaction.
#[test]
fn rendered_metrics_stay_valid_and_track_lifecycle() {
    let engine = build_engine(1, true);
    let q = top_query(&engine, 2, "AND");

    let text = engine.render_metrics();
    validate_exposition(&text).unwrap_or_else(|e| panic!("fresh engine exposition: {e}"));
    assert_eq!(sample_sum(&text, "ipm_queries_served_total"), Some(0.0));

    engine.request(q.clone()).run().unwrap();
    engine.request(q.clone()).run().unwrap(); // cache hit
    let w = engine.miner().corpus().word_id("w1").unwrap();
    engine.ingest_document(&[w], &[]);

    // A delta-corrected query bumps the live delta's correction gauge...
    engine.request(q.clone()).use_delta(true).run().unwrap();
    let text = engine.render_metrics();
    let corrected = sample_sum(&text, "ipm_delta_corrections").unwrap();
    assert!(
        corrected > 0.0,
        "a use_delta query over a non-empty delta must apply corrections"
    );

    let report = engine.compact();
    assert!(report.compacted);

    let text = engine.render_metrics();
    validate_exposition(&text).unwrap_or_else(|e| panic!("worked engine exposition: {e}"));
    assert_eq!(sample_sum(&text, "ipm_queries_served_total"), Some(3.0));
    assert_eq!(sample_sum(&text, "ipm_cache_hits_total"), Some(1.0));
    assert_eq!(sample_sum(&text, "ipm_cache_misses_total"), Some(2.0));
    assert_eq!(
        sample_sum(&text, "ipm_query_latency_seconds_count"),
        Some(3.0)
    );
    assert_eq!(sample_sum(&text, "ipm_docs_ingested_total"), Some(1.0));
    assert_eq!(sample_sum(&text, "ipm_compactions_total"), Some(1.0));
    assert_eq!(
        sample_sum(&text, "ipm_index_epoch"),
        Some(engine.epoch() as f64),
        "the epoch gauge is refreshed at render time"
    );
    assert_eq!(sample_sum(&text, "ipm_delta_docs"), Some(0.0));
    assert_eq!(
        sample_sum(&text, "ipm_delta_corrections"),
        Some(0.0),
        "the correction count dies with the delta at compaction"
    );
}

/// The slow-query ring: with a zero threshold every query is kept (even
/// untraced ones — the engine traces internally when a log is attached),
/// the ring respects its capacity, and responses still carry no trace
/// unless one was requested.
#[test]
fn slow_query_log_captures_untraced_queries() {
    let (corpus, _) = ipm_corpus::synth::generate(&ipm_corpus::synth::tiny());
    let engine = QueryEngine::with_config(
        PhraseMiner::build(&corpus, MinerConfig::default()),
        EngineConfig {
            cache: None,
            slow_query: Some(SlowQueryConfig {
                threshold: Duration::ZERO,
                capacity: 4,
            }),
            ..Default::default()
        },
    );
    let q = top_query(&engine, 2, "OR");
    for _ in 0..6 {
        let resp = engine.request(q.clone()).k(5).run().unwrap();
        assert!(
            resp.trace.is_none(),
            "slow-query logging must not leak traces into responses"
        );
    }
    let log = engine.slow_queries().expect("log configured");
    assert_eq!(log.recorded(), 6);
    let kept = log.snapshot();
    assert_eq!(kept.len(), 4, "ring keeps only the most recent capacity");
    for t in &kept {
        assert_eq!(t.algorithm, "nra");
        assert!(t.stages.iter().any(|s| s.kind == StageKind::Execute));
    }
    let text = engine.render_metrics();
    assert_eq!(sample_sum(&text, "ipm_slow_queries_total"), Some(6.0));

    // A high threshold keeps nothing for these sub-second queries.
    let quiet = QueryEngine::with_config(
        PhraseMiner::build(&corpus, MinerConfig::default()),
        EngineConfig {
            cache: None,
            slow_query: Some(SlowQueryConfig {
                threshold: Duration::from_secs(3600),
                capacity: 4,
            }),
            ..Default::default()
        },
    );
    quiet.request(q).k(5).run().unwrap();
    assert_eq!(quiet.slow_queries().unwrap().recorded(), 0);
}
