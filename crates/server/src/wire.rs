//! The line-delimited JSON wire format — one schema for the server, the
//! client, and `ipm query --json`.
//!
//! Every request and every response is a single JSON object on a single
//! line (`\n`-terminated). Requests are either a search (the default; the
//! only required field is `"query"`) or a control verb (`"cmd"`:
//! `"stats"`, `"ping"`, `"shutdown"`). Responses always carry an `"ok"`
//! boolean; failures carry a structured `"error"` object whose `"kind"`
//! is machine-readable — `overloaded` is the admission-control shed
//! signal, not a transport error. See `docs/protocol.md`.

use std::collections::BTreeMap;

use ipm_core::{
    Algorithm, ApproxReason, BackendChoice, BudgetKind, Completeness, ExecStats, PhraseHit,
    QueryTrace, RedundancyConfig, SearchOptions, SearchResponse, ShardExecParams, ShardOutcome,
};
use ipm_corpus::Corpus;
use ipm_storage::IoStats;
use serde_json::Value;

/// Most search items a single `{"batch": [...]}` request may carry (the
/// whole batch shares one admission slot, so an unbounded batch would let
/// one client park a worker arbitrarily long).
pub const MAX_BATCH: usize = 64;

/// Machine-readable error kinds carried in `error.kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line was not valid JSON or not a valid request shape.
    Parse,
    /// The query string failed to parse against the corpus (unknown word,
    /// mixed operators, ...).
    Query,
    /// Admission control shed the request: the worker queue was full.
    Overloaded,
    /// The server is draining and no longer accepts work.
    ShuttingDown,
    /// The request's deadline expired before execution could start —
    /// queue wait counts against the budget, so dead-on-arrival work is
    /// shed instead of executed for nobody.
    DeadlineExceeded,
    /// The request was cancelled before it produced a result. Reserved:
    /// cancellation is a first-class engine outcome
    /// (`ipm_core::SearchError::Cancelled`), but the wire has no cancel
    /// verb yet, so the server does not emit this kind today.
    Cancelled,
    /// Execution failed server-side (a worker panic was contained).
    Internal,
}

impl ErrorKind {
    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::Query => "query",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::Cancelled => "cancelled",
            ErrorKind::Internal => "internal",
        }
    }

    /// Parses a wire name back (for clients).
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "parse" => ErrorKind::Parse,
            "query" => ErrorKind::Query,
            "overloaded" => ErrorKind::Overloaded,
            "shutting_down" => ErrorKind::ShuttingDown,
            "deadline_exceeded" => ErrorKind::DeadlineExceeded,
            "cancelled" => ErrorKind::Cancelled,
            "internal" => ErrorKind::Internal,
            _ => return None,
        })
    }
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum WireRequest {
    /// Execute a search.
    Search(SearchRequest),
    /// Execute several searches as one unit: the batch shares a single
    /// admission slot and the response carries per-item results/errors.
    Batch(Vec<SearchRequest>),
    /// Ingest one document into the engine's §4.5.1 side index (protocol
    /// v3). Tokens are plain term strings resolved against the serving
    /// vocabulary; facets are `key:value` strings. Out-of-vocabulary
    /// terms are counted back in the response (`unknown_tokens`) — they
    /// can only enter the index at the next compaction's rebuild.
    Ingest {
        /// The document's tokens, in text order.
        tokens: Vec<String>,
        /// `key:value` facet strings.
        facets: Vec<String>,
    },
    /// Mark one document of the serving corpus deleted (protocol v3).
    Delete {
        /// The document id.
        doc: u64,
    },
    /// Flush the delta into a full offline rebuild and swap it in
    /// (protocol v3). Runs under the admission queue: queries keep being
    /// served from the old generation until the swap.
    Compact,
    /// Execute exactly one shard of a distributed scatter (protocol v5).
    /// Sent by the router to a shard server; never part of the public
    /// client surface.
    ShardExec(ShardExecRequest),
    /// Report server counters.
    Stats,
    /// Render the full metrics registry in Prometheus text exposition
    /// format (protocol v4).
    Metrics,
    /// Liveness check.
    Ping,
    /// Begin graceful shutdown (in-flight and queued work completes).
    Shutdown,
}

/// A search request: the query string plus per-request engine options.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchRequest {
    /// The query string (`"trade AND reserves"`, `"topic:t04 OR rates"`).
    pub query: String,
    /// Result count.
    pub k: usize,
    /// Retrieval algorithm.
    pub algorithm: Algorithm,
    /// List backend.
    pub backend: BackendChoice,
    /// NRA list fraction (omitted = full lists).
    pub nra_fraction: Option<f64>,
    /// §5.6 redundancy threshold (omitted = no filter).
    pub max_overlap: Option<f64>,
    /// Apply the engine's attached delta index on the NRA path.
    pub use_delta: bool,
    /// Intra-query shard fanout (omitted = the server engine's default).
    pub shards: Option<usize>,
    /// Artificial per-execution service time in milliseconds, applied by
    /// the worker before running the query. A load-testing knob: it makes
    /// coalescing and queue-shed behaviour deterministic to observe. The
    /// server clamps it (5 s) so a client cannot park the worker pool.
    pub delay_ms: u64,
    /// Wall-clock deadline in milliseconds, measured from the moment the
    /// server *receives* the request — queue wait counts against it.
    /// Expired-in-queue requests are shed with `deadline_exceeded`; a
    /// deadline tripping mid-execution returns the anytime result marked
    /// `completeness: truncated`.
    pub deadline_ms: Option<u64>,
    /// Cap on simulated disk page fetches for this request (the §5.5
    /// unit of IO cost; meaningful on the disk backend).
    pub io_budget: Option<u64>,
    /// Return a structured per-stage trace with the result (protocol v4).
    /// Traced requests bypass single-flight coalescing — a shared flight
    /// would hand one request's trace to every coalesced peer.
    pub trace: bool,
}

impl SearchRequest {
    /// A request with default options (`k = 10`, NRA over memory).
    pub fn new(query: impl Into<String>) -> Self {
        Self {
            query: query.into(),
            k: 10,
            algorithm: Algorithm::default(),
            backend: BackendChoice::default(),
            nra_fraction: None,
            max_overlap: None,
            use_delta: false,
            shards: None,
            delay_ms: 0,
            deadline_ms: None,
            io_budget: None,
            trace: false,
        }
    }

    /// Whether this request carries any budget field (budgeted requests
    /// bypass single-flight coalescing: a truncated result reflects one
    /// request's budget and must not be shared with other flights).
    pub fn is_budgeted(&self) -> bool {
        self.deadline_ms.is_some() || self.io_budget.is_some()
    }

    /// The engine options this request maps to.
    pub fn options(&self) -> SearchOptions {
        SearchOptions {
            algorithm: self.algorithm,
            backend: self.backend,
            nra_fraction: self.nra_fraction,
            redundancy: self
                .max_overlap
                .map(|max_overlap| RedundancyConfig { max_overlap }),
            use_delta: self.use_delta,
            shards: self.shards,
            trace: self.trace,
        }
    }

    /// Serializes to the wire object (inverse of [`parse_request`]).
    pub fn to_value(&self) -> Value {
        let mut map = BTreeMap::new();
        map.insert("query".to_owned(), Value::from(self.query.clone()));
        map.insert("k".to_owned(), Value::from(self.k));
        map.insert(
            "method".to_owned(),
            Value::from(algorithm_name(self.algorithm)),
        );
        map.insert(
            "backend".to_owned(),
            Value::from(backend_name(self.backend)),
        );
        if let Some(f) = self.nra_fraction {
            map.insert("nra_fraction".to_owned(), Value::from(f));
        }
        if let Some(o) = self.max_overlap {
            map.insert("max_overlap".to_owned(), Value::from(o));
        }
        if self.use_delta {
            map.insert("use_delta".to_owned(), Value::from(true));
        }
        if let Some(n) = self.shards {
            map.insert("shards".to_owned(), Value::from(n as u64));
        }
        if self.delay_ms > 0 {
            map.insert("delay_ms".to_owned(), Value::from(self.delay_ms));
        }
        if let Some(ms) = self.deadline_ms {
            map.insert("deadline_ms".to_owned(), Value::from(ms));
        }
        if let Some(cap) = self.io_budget {
            map.insert("io_budget".to_owned(), Value::from(cap));
        }
        if self.trace {
            map.insert("trace".to_owned(), Value::from(true));
        }
        Value::Object(map)
    }

    /// One request line (newline-terminated).
    pub fn to_line(&self) -> String {
        // lint-allow: server-unwrap — serializing an owned Value tree is infallible; no connection involved
        let mut line = serde_json::to_string(&self.to_value()).expect("infallible");
        line.push('\n');
        line
    }
}

/// One `{"batch": [...]}` request line for `requests` (newline-
/// terminated). The server runs the items as one unit behind a single
/// admission slot and answers with per-item results/errors.
pub fn batch_line(requests: &[SearchRequest]) -> String {
    let mut map = BTreeMap::new();
    map.insert(
        "batch".to_owned(),
        Value::Array(requests.iter().map(SearchRequest::to_value).collect()),
    );
    // lint-allow: server-unwrap — serializing an owned Value tree is infallible; no connection involved
    let mut line = serde_json::to_string(&Value::Object(map)).expect("infallible");
    line.push('\n');
    line
}

/// Algorithm wire names (shared with the CLI's `--method`).
pub fn algorithm_from_str(s: &str) -> Result<Algorithm, String> {
    match s {
        "nra" => Ok(Algorithm::Nra),
        "smj" => Ok(Algorithm::Smj),
        "ta" => Ok(Algorithm::Ta),
        "exact" => Ok(Algorithm::Exact),
        other => Err(format!("unknown method: {other} (nra|smj|ta|exact)")),
    }
}

/// The wire name of an algorithm.
pub fn algorithm_name(a: Algorithm) -> &'static str {
    match a {
        Algorithm::Nra => "nra",
        Algorithm::Smj => "smj",
        Algorithm::Ta => "ta",
        Algorithm::Exact => "exact",
    }
}

/// Backend wire names (shared with the CLI's `--backend`).
pub fn backend_from_str(s: &str) -> Result<BackendChoice, String> {
    match s {
        "memory" => Ok(BackendChoice::Memory),
        "disk" => Ok(BackendChoice::Disk),
        "block" => Ok(BackendChoice::Block),
        other => Err(format!("unknown backend: {other} (memory|disk|block)")),
    }
}

/// The wire name of a backend.
pub fn backend_name(b: BackendChoice) -> &'static str {
    match b {
        BackendChoice::Memory => "memory",
        BackendChoice::Disk => "disk",
        BackendChoice::Block => "block",
    }
}

fn field_f64(v: &Value, key: &str) -> Result<Option<f64>, String> {
    match v.get(key) {
        None => Ok(None),
        Some(Value::Null) => Ok(None),
        Some(x) => x
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("field '{key}' must be a number")),
    }
}

fn field_u64(v: &Value, key: &str, default: u64) -> Result<u64, String> {
    match v.get(key) {
        None => Ok(default),
        Some(Value::Null) => Ok(default),
        Some(x) => x
            .as_u64()
            .ok_or_else(|| format!("field '{key}' must be a non-negative integer")),
    }
}

fn field_bool(v: &Value, key: &str, default: bool) -> Result<bool, String> {
    match v.get(key) {
        None => Ok(default),
        Some(Value::Null) => Ok(default),
        Some(x) => x
            .as_bool()
            .ok_or_else(|| format!("field '{key}' must be a boolean")),
    }
}

fn field_str<'v>(v: &'v Value, key: &str) -> Result<Option<&'v str>, String> {
    match v.get(key) {
        None => Ok(None),
        Some(Value::Null) => Ok(None),
        Some(x) => x
            .as_str()
            .map(Some)
            .ok_or_else(|| format!("field '{key}' must be a string")),
    }
}

fn field_opt_u64(v: &Value, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None => Ok(None),
        Some(Value::Null) => Ok(None),
        Some(x) => x
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("field '{key}' must be a non-negative integer")),
    }
}

/// Parses one request line.
///
/// # Errors
/// A human-readable message for malformed JSON or invalid field values
/// (the server maps it to `error.kind = "parse"`).
pub fn parse_request(line: &str) -> Result<WireRequest, String> {
    let v: Value = serde_json::from_str(line.trim()).map_err(|e| e.to_string())?;
    if v.as_object().is_none() {
        return Err("request must be a JSON object".into());
    }
    if let Some(cmd) = field_str(&v, "cmd")? {
        return match cmd {
            "query" => Ok(WireRequest::Search(build_search(&v)?)),
            "ingest" => build_ingest(&v),
            "delete" => match v.get("doc").and_then(Value::as_u64) {
                Some(doc) => Ok(WireRequest::Delete { doc }),
                None => Err("delete needs a non-negative integer 'doc' field".into()),
            },
            "compact" => Ok(WireRequest::Compact),
            "shard_exec" => Ok(WireRequest::ShardExec(build_shard_exec(&v)?)),
            "stats" => Ok(WireRequest::Stats),
            "metrics" => Ok(WireRequest::Metrics),
            "ping" => Ok(WireRequest::Ping),
            "shutdown" => Ok(WireRequest::Shutdown),
            other => Err(format!(
                "unknown cmd: {other} \
                 (query|ingest|delete|compact|shard_exec|stats|metrics|ping|shutdown)"
            )),
        };
    }
    if let Some(batch) = v.get("batch") {
        let items = batch
            .as_array()
            .ok_or("field 'batch' must be an array of search objects")?;
        if items.is_empty() {
            return Err("batch must contain at least one search".into());
        }
        if items.len() > MAX_BATCH {
            return Err(format!(
                "batch holds {} items, limit is {MAX_BATCH}",
                items.len()
            ));
        }
        // Top-level deadline_ms / io_budget act as per-item defaults.
        let deadline_default = field_opt_u64(&v, "deadline_ms")?;
        let io_default = field_opt_u64(&v, "io_budget")?;
        let mut parsed = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            if item.as_object().is_none() {
                return Err(format!("batch item {i} must be a JSON object"));
            }
            let mut req = build_search(item).map_err(|e| format!("batch item {i}: {e}"))?;
            req.deadline_ms = req.deadline_ms.or(deadline_default);
            req.io_budget = req.io_budget.or(io_default);
            parsed.push(req);
        }
        return Ok(WireRequest::Batch(parsed));
    }
    Ok(WireRequest::Search(build_search(&v)?))
}

/// Parses an ingest verb: tokens come either as a `"tokens"` string array
/// or as a whitespace-split `"text"` string; `"facets"` is an optional
/// array of `key:value` strings.
fn build_ingest(v: &Value) -> Result<WireRequest, String> {
    let mut tokens: Vec<String> = Vec::new();
    if let Some(arr) = v.get("tokens") {
        let arr = arr
            .as_array()
            .ok_or("field 'tokens' must be an array of strings")?;
        for t in arr {
            tokens.push(
                t.as_str()
                    .ok_or("field 'tokens' must be an array of strings")?
                    .to_owned(),
            );
        }
    }
    if let Some(text) = field_str(v, "text")? {
        tokens.extend(text.split_whitespace().map(str::to_owned));
    }
    if tokens.is_empty() {
        return Err("ingest needs a non-empty 'tokens' array or a 'text' string".into());
    }
    let mut facets: Vec<String> = Vec::new();
    if let Some(arr) = v.get("facets") {
        let arr = arr
            .as_array()
            .ok_or("field 'facets' must be an array of key:value strings")?;
        for f in arr {
            facets.push(
                f.as_str()
                    .ok_or("field 'facets' must be an array of key:value strings")?
                    .to_owned(),
            );
        }
    }
    Ok(WireRequest::Ingest { tokens, facets })
}

/// One ingest request line (newline-terminated) — the client-side inverse
/// of the `ingest` arm of [`parse_request`].
pub fn ingest_line(tokens: &[String], facets: &[String]) -> String {
    let mut m = BTreeMap::new();
    m.insert("cmd".to_owned(), Value::from("ingest"));
    m.insert(
        "tokens".to_owned(),
        Value::Array(tokens.iter().map(|t| Value::from(t.clone())).collect()),
    );
    if !facets.is_empty() {
        m.insert(
            "facets".to_owned(),
            Value::Array(facets.iter().map(|f| Value::from(f.clone())).collect()),
        );
    }
    // lint-allow: server-unwrap — serializing an owned Value tree is infallible; no connection involved
    let mut line = serde_json::to_string(&Value::Object(m)).expect("infallible");
    line.push('\n');
    line
}

/// One delete request line (newline-terminated).
pub fn delete_line(doc: u64) -> String {
    let mut m = BTreeMap::new();
    m.insert("cmd".to_owned(), Value::from("delete"));
    m.insert("doc".to_owned(), Value::from(doc));
    // lint-allow: server-unwrap — serializing an owned Value tree is infallible; no connection involved
    let mut line = serde_json::to_string(&Value::Object(m)).expect("infallible");
    line.push('\n');
    line
}

fn build_search(v: &Value) -> Result<SearchRequest, String> {
    let query = field_str(v, "query")?
        .ok_or("search request needs a 'query' string")?
        .to_owned();
    let mut req = SearchRequest::new(query);
    req.k = field_u64(v, "k", req.k as u64)? as usize;
    if let Some(m) = field_str(v, "method")? {
        req.algorithm = algorithm_from_str(m)?;
    }
    if let Some(b) = field_str(v, "backend")? {
        req.backend = backend_from_str(b)?;
    }
    req.nra_fraction = field_f64(v, "nra_fraction")?;
    req.max_overlap = field_f64(v, "max_overlap")?;
    req.use_delta = field_bool(v, "use_delta", false)?;
    // `0` means "use the server engine's default fanout", matching the
    // CLI's `--shards 0` convention.
    req.shards = match v.get("shards") {
        None | Some(Value::Null) => None,
        Some(x) => {
            let n = x
                .as_u64()
                .ok_or("field 'shards' must be a non-negative integer")?
                as usize;
            (n > 0).then_some(n)
        }
    };
    req.delay_ms = field_u64(v, "delay_ms", 0)?;
    req.deadline_ms = field_opt_u64(v, "deadline_ms")?;
    req.io_budget = field_opt_u64(v, "io_budget")?;
    req.trace = field_bool(v, "trace", false)?;
    Ok(req)
}

/// Encodes an `f64` as its exact IEEE-754 bit pattern, 16 lowercase hex
/// digits. The wire transports scores, bounds and the seeded NRA floor
/// this way because the distributed merge must be *bit-identical* to the
/// local one: a decimal round-trip can perturb the last ulp and flip a
/// tie, and the floor is routinely `-∞`, which JSON numbers cannot carry
/// at all.
pub fn f64_to_bits_str(f: f64) -> String {
    format!("{:016x}", f.to_bits())
}

/// Decodes [`f64_to_bits_str`].
///
/// # Errors
/// A message when the string is not exactly 16 hex digits.
pub fn f64_from_bits_str(s: &str) -> Result<f64, String> {
    // `from_str_radix` alone would wave through a leading `+` (15 digits
    // plus sign), so require every byte to be a hex digit explicitly.
    if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(format!("bit string must be 16 hex digits, got '{s}'"));
    }
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| format!("bit string must be 16 hex digits, got '{s}'"))
}

fn field_bits_f64(v: &Value, key: &str, default: f64) -> Result<f64, String> {
    match field_str(v, key)? {
        None => Ok(default),
        Some(s) => f64_from_bits_str(s).map_err(|e| format!("field '{key}': {e}")),
    }
}

/// One wire-v5 `shard_exec` request: the router's scatter unit. Carries
/// everything [`ipm_core::QueryEngine::execute_shard`] needs — the query,
/// the coordinator's fetch depth / seeded floor / batch scaling, the
/// `(fanout, shard)` coordinates the node uses to carve its partition,
/// and the *remaining* deadline re-anchored at each hop (the router
/// computes it from its own arrival instant just before writing).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardExecRequest {
    /// The query string, parsed against the shard node's own vocabulary
    /// (identical corpus builds yield identical parses).
    pub query: String,
    /// Fetch depth for this over-fetch round.
    pub fetch: usize,
    /// Total shard fanout of the scatter.
    pub fanout: usize,
    /// This node's shard index in `[0, fanout)`.
    pub shard: usize,
    /// Seeded NRA defence line (`-∞` when inactive), bit-exact.
    pub floor: f64,
    /// Fanout-scaled NRA prune batch (`None` keeps the node's default).
    pub batch: Option<usize>,
    /// Retrieval algorithm.
    pub algorithm: Algorithm,
    /// List backend.
    pub backend: BackendChoice,
    /// NRA list fraction (omitted = full lists).
    pub nra_fraction: Option<f64>,
    /// Apply the shard node's attached delta index.
    pub use_delta: bool,
    /// Remaining milliseconds of the query's deadline at send time.
    pub deadline_ms: Option<u64>,
    /// The phrase-id range the router believes this shard owns; the node
    /// rejects the call if its own derived range disagrees (a mis-wired
    /// shard set would otherwise silently drop or duplicate phrases).
    pub range: Option<(u32, u32)>,
}

impl ShardExecRequest {
    /// A request with default options for shard `shard` of `fanout`.
    pub fn new(query: impl Into<String>, fanout: usize, shard: usize, fetch: usize) -> Self {
        Self {
            query: query.into(),
            fetch,
            fanout,
            shard,
            floor: f64::NEG_INFINITY,
            batch: None,
            algorithm: Algorithm::default(),
            backend: BackendChoice::default(),
            nra_fraction: None,
            use_delta: false,
            deadline_ms: None,
            range: None,
        }
    }

    /// The engine options this request maps to. Redundancy filtering and
    /// tracing are coordinator-side concerns and never ride the scatter.
    pub fn options(&self) -> SearchOptions {
        SearchOptions {
            algorithm: self.algorithm,
            backend: self.backend,
            nra_fraction: self.nra_fraction,
            redundancy: None,
            use_delta: self.use_delta,
            shards: None,
            trace: false,
        }
    }

    /// The per-shard execution parameters this request maps to.
    pub fn params(&self) -> ShardExecParams {
        ShardExecParams {
            fetch: self.fetch,
            fanout: self.fanout,
            shard: self.shard,
            floor: self.floor,
            batch_size: self.batch,
        }
    }

    /// One request line (newline-terminated).
    pub fn to_line(&self) -> String {
        let mut m = BTreeMap::new();
        m.insert("cmd".to_owned(), Value::from("shard_exec"));
        m.insert("query".to_owned(), Value::from(self.query.clone()));
        m.insert("fetch".to_owned(), Value::from(self.fetch as u64));
        m.insert("fanout".to_owned(), Value::from(self.fanout as u64));
        m.insert("shard".to_owned(), Value::from(self.shard as u64));
        if self.floor != f64::NEG_INFINITY {
            m.insert(
                "floor_bits".to_owned(),
                Value::from(f64_to_bits_str(self.floor)),
            );
        }
        if let Some(b) = self.batch {
            m.insert("batch".to_owned(), Value::from(b as u64));
        }
        m.insert(
            "method".to_owned(),
            Value::from(algorithm_name(self.algorithm)),
        );
        m.insert(
            "backend".to_owned(),
            Value::from(backend_name(self.backend)),
        );
        if let Some(f) = self.nra_fraction {
            m.insert("nra_fraction".to_owned(), Value::from(f));
        }
        if self.use_delta {
            m.insert("use_delta".to_owned(), Value::from(true));
        }
        if let Some(ms) = self.deadline_ms {
            m.insert("deadline_ms".to_owned(), Value::from(ms));
        }
        if let Some((lo, hi)) = self.range {
            m.insert(
                "range".to_owned(),
                Value::Array(vec![Value::from(lo as u64), Value::from(hi as u64)]),
            );
        }
        // lint-allow: server-unwrap — serializing an owned Value tree is infallible; no connection involved
        let mut line = serde_json::to_string(&Value::Object(m)).expect("infallible");
        line.push('\n');
        line
    }
}

fn build_shard_exec(v: &Value) -> Result<ShardExecRequest, String> {
    let query = field_str(v, "query")?
        .ok_or("shard_exec needs a 'query' string")?
        .to_owned();
    let fanout = field_u64(v, "fanout", 1)?.max(1) as usize;
    let shard = field_u64(v, "shard", 0)? as usize;
    if shard >= fanout {
        return Err(format!("shard {shard} out of range for fanout {fanout}"));
    }
    let mut req = ShardExecRequest::new(query, fanout, shard, 10);
    req.fetch = field_u64(v, "fetch", 10)?.max(1) as usize;
    req.floor = field_bits_f64(v, "floor_bits", f64::NEG_INFINITY)?;
    req.batch = field_opt_u64(v, "batch")?.map(|b| b as usize);
    if let Some(m) = field_str(v, "method")? {
        req.algorithm = algorithm_from_str(m)?;
    }
    if let Some(b) = field_str(v, "backend")? {
        req.backend = backend_from_str(b)?;
    }
    req.nra_fraction = field_f64(v, "nra_fraction")?;
    req.use_delta = field_bool(v, "use_delta", false)?;
    req.deadline_ms = field_opt_u64(v, "deadline_ms")?;
    req.range = match v.get("range") {
        None | Some(Value::Null) => None,
        Some(Value::Array(a)) if a.len() == 2 => {
            let lo = a[0]
                .as_u64()
                .ok_or("field 'range' must be [lo, hi] phrase ids")?;
            let hi = a[1]
                .as_u64()
                .ok_or("field 'range' must be [lo, hi] phrase ids")?;
            if lo > u32::MAX as u64 || hi > u32::MAX as u64 || lo >= hi {
                return Err("field 'range' must be [lo, hi] with lo < hi <= u32::MAX".into());
            }
            Some((lo as u32, hi as u32))
        }
        Some(_) => return Err("field 'range' must be [lo, hi] phrase ids".into()),
    };
    Ok(req)
}

/// Encodes a [`ShardOutcome`] — the `"shard"` field of a `shard_exec`
/// response. Scores and bounds travel as bit patterns (see
/// [`f64_to_bits_str`]): the router re-materializes `f64`s that compare
/// exactly like the shard's own, so the gathered merge is bit-identical
/// to the local one.
pub fn shard_outcome_value(out: &ShardOutcome) -> Value {
    let mut m = BTreeMap::new();
    m.insert(
        "hits".to_owned(),
        Value::Array(
            out.hits
                .iter()
                .map(|h| {
                    let mut hm = BTreeMap::new();
                    hm.insert("phrase".to_owned(), Value::from(h.phrase.raw() as u64));
                    hm.insert(
                        "score_bits".to_owned(),
                        Value::from(f64_to_bits_str(h.score)),
                    );
                    hm.insert(
                        "lower_bits".to_owned(),
                        Value::from(f64_to_bits_str(h.lower)),
                    );
                    hm.insert(
                        "upper_bits".to_owned(),
                        Value::from(f64_to_bits_str(h.upper)),
                    );
                    Value::Object(hm)
                })
                .collect(),
        ),
    );
    m.insert("raw".to_owned(), Value::from(out.raw_candidates as u64));
    m.insert("tripped".to_owned(), Value::from(out.tripped));
    m.insert("io_fetches".to_owned(), Value::from(out.io_fetches));
    let mut sm = BTreeMap::new();
    sm.insert(
        "sorted_accesses".to_owned(),
        Value::from(out.stats.sorted_accesses),
    );
    sm.insert(
        "random_probes".to_owned(),
        Value::from(out.stats.random_probes),
    );
    sm.insert(
        "entries_skipped".to_owned(),
        Value::from(out.stats.entries_skipped),
    );
    sm.insert("rounds".to_owned(), Value::from(out.stats.rounds));
    m.insert("stats".to_owned(), Value::Object(sm));
    Value::Object(m)
}

/// Decodes [`shard_outcome_value`] (router side).
///
/// # Errors
/// A message when the object is structurally invalid.
pub fn shard_outcome_from_value(v: &Value) -> Result<ShardOutcome, String> {
    let hits_v = v
        .get("hits")
        .and_then(Value::as_array)
        .ok_or("shard outcome needs a 'hits' array")?;
    let mut hits = Vec::with_capacity(hits_v.len());
    for h in hits_v {
        let raw = h
            .get("phrase")
            .and_then(Value::as_u64)
            .filter(|&p| p <= u32::MAX as u64)
            .ok_or("hit needs a 'phrase' id")?;
        let bits = |key: &str| -> Result<f64, String> {
            f64_from_bits_str(
                h.get(key)
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("hit needs a '{key}' bit string"))?,
            )
        };
        hits.push(PhraseHit {
            phrase: ipm_corpus::PhraseId::new(raw as u32),
            score: bits("score_bits")?,
            lower: bits("lower_bits")?,
            upper: bits("upper_bits")?,
        });
    }
    let stats_v = v.get("stats").cloned().unwrap_or(Value::Null);
    let stat = |key: &str| stats_v.get(key).and_then(Value::as_u64).unwrap_or(0);
    Ok(ShardOutcome {
        hits,
        raw_candidates: v.get("raw").and_then(Value::as_u64).unwrap_or(0) as usize,
        stats: ExecStats {
            sorted_accesses: stat("sorted_accesses"),
            random_probes: stat("random_probes"),
            entries_skipped: stat("entries_skipped"),
            rounds: stat("rounds"),
        },
        io_fetches: v.get("io_fetches").and_then(Value::as_u64).unwrap_or(0),
        tripped: v.get("tripped").and_then(Value::as_bool).unwrap_or(false),
    })
}

/// Encodes the hits of a response — the part that must be byte-identical
/// between a served response and a direct [`ipm_core::QueryEngine`] call.
pub fn hits_value(resp: &SearchResponse) -> Value {
    Value::Array(
        resp.hits
            .iter()
            .map(|h| {
                let mut m = BTreeMap::new();
                m.insert("phrase".to_owned(), Value::from(h.hit.phrase.raw() as u64));
                m.insert("text".to_owned(), Value::from(h.text.clone()));
                m.insert("score".to_owned(), Value::from(h.hit.score));
                m.insert("lower".to_owned(), Value::from(h.hit.lower));
                m.insert("upper".to_owned(), Value::from(h.hit.upper));
                m.insert("interestingness".to_owned(), Value::from(h.interestingness));
                Value::Object(m)
            })
            .collect(),
    )
}

/// Encodes a [`Completeness`] label: `{"kind": "exact"}`,
/// `{"kind": "approximate", "reason": ...}` or
/// `{"kind": "truncated", "budget": ...}`.
pub fn completeness_value(c: &Completeness) -> Value {
    let mut m = BTreeMap::new();
    match c {
        Completeness::Exact => {
            m.insert("kind".to_owned(), Value::from("exact"));
        }
        Completeness::Approximate { reason } => {
            m.insert("kind".to_owned(), Value::from("approximate"));
            m.insert("reason".to_owned(), Value::from(reason.name()));
            if let ApproxReason::ShardsMissing { missing } = reason {
                m.insert("missing".to_owned(), Value::from(*missing as u64));
            }
        }
        Completeness::Truncated { budget_hit } => {
            m.insert("kind".to_owned(), Value::from("truncated"));
            m.insert("budget".to_owned(), Value::from(budget_hit.name()));
        }
    }
    Value::Object(m)
}

/// Parses a wire completeness object back (for clients).
pub fn completeness_from_value(v: &Value) -> Option<Completeness> {
    match v.get("kind")?.as_str()? {
        "exact" => Some(Completeness::Exact),
        "approximate" => {
            let reason = match v.get("reason")?.as_str()? {
                "partial_lists" => ApproxReason::PartialLists,
                "truncated_image" => ApproxReason::TruncatedImage,
                "delta_corrections" => ApproxReason::DeltaCorrections,
                "shards_missing" => ApproxReason::ShardsMissing {
                    missing: v.get("missing")?.as_u64()? as u32,
                },
                _ => return None,
            };
            Some(Completeness::Approximate { reason })
        }
        "truncated" => {
            let budget_hit = match v.get("budget")?.as_str()? {
                "deadline" => BudgetKind::Deadline,
                "io" => BudgetKind::Io,
                "steps" => BudgetKind::Steps,
                _ => return None,
            };
            Some(Completeness::Truncated { budget_hit })
        }
        _ => None,
    }
}

/// Encodes [`IoStats`] counters.
pub fn io_value(io: &IoStats) -> Value {
    let mut m = BTreeMap::new();
    m.insert("cache_hits".to_owned(), Value::from(io.cache_hits));
    m.insert(
        "sequential_fetches".to_owned(),
        Value::from(io.sequential_fetches),
    );
    m.insert("random_fetches".to_owned(), Value::from(io.random_fetches));
    Value::Object(m)
}

/// Encodes a [`QueryTrace`] — the `"trace"` response field of a
/// `trace: true` request (protocol v4).
pub fn trace_value(t: &QueryTrace) -> Value {
    let mut m = BTreeMap::new();
    m.insert("query".to_owned(), Value::from(t.query.clone()));
    m.insert("algorithm".to_owned(), Value::from(t.algorithm));
    m.insert("backend".to_owned(), Value::from(t.backend));
    m.insert("k".to_owned(), Value::from(t.k as u64));
    m.insert("shards".to_owned(), Value::from(t.shards as u64));
    m.insert("epoch".to_owned(), Value::from(t.epoch));
    m.insert(
        "served_from_cache".to_owned(),
        Value::from(t.served_from_cache),
    );
    m.insert(
        "completeness".to_owned(),
        Value::from(t.completeness.clone()),
    );
    m.insert(
        "budget_trip".to_owned(),
        t.budget_trip.map(Value::from).unwrap_or(Value::Null),
    );
    m.insert(
        "total_us".to_owned(),
        Value::from(t.total.as_micros() as u64),
    );
    m.insert(
        "stages".to_owned(),
        Value::Array(
            t.stages
                .iter()
                .map(|s| {
                    let mut sm = BTreeMap::new();
                    sm.insert("stage".to_owned(), Value::from(s.kind.name()));
                    sm.insert(
                        "shard".to_owned(),
                        s.shard
                            .map(|i| Value::from(i as u64))
                            .unwrap_or(Value::Null),
                    );
                    sm.insert("started_us".to_owned(), Value::from(s.started_us));
                    sm.insert(
                        "duration_us".to_owned(),
                        Value::from(s.duration.as_micros() as u64),
                    );
                    Value::Object(sm)
                })
                .collect(),
        ),
    );
    m.insert(
        "shard_stats".to_owned(),
        Value::Array(
            t.shard_totals()
                .iter()
                .map(|s| {
                    let mut sm = BTreeMap::new();
                    sm.insert("shard".to_owned(), Value::from(s.shard as u64));
                    sm.insert("sorted_accesses".to_owned(), Value::from(s.sorted_accesses));
                    sm.insert("random_probes".to_owned(), Value::from(s.random_probes));
                    sm.insert("entries_skipped".to_owned(), Value::from(s.entries_skipped));
                    sm.insert("rounds".to_owned(), Value::from(s.rounds));
                    sm.insert("io_fetches".to_owned(), Value::from(s.io_fetches));
                    Value::Object(sm)
                })
                .collect(),
        ),
    );
    Value::Object(m)
}

/// Encodes a full [`SearchResponse`] in the shared wire shape (used by
/// the server's `result` field and by `ipm query --json`).
pub fn response_value(resp: &SearchResponse, corpus: &Corpus) -> Value {
    let mut m = BTreeMap::new();
    m.insert("query".to_owned(), Value::from(resp.query.render(corpus)));
    m.insert("op".to_owned(), Value::from(resp.query.op.to_string()));
    m.insert("hits".to_owned(), hits_value(resp));
    m.insert(
        "elapsed_us".to_owned(),
        Value::from(resp.elapsed.as_micros() as u64),
    );
    m.insert(
        "served_from_cache".to_owned(),
        Value::from(resp.served_from_cache),
    );
    m.insert("shards".to_owned(), Value::from(resp.shards as u64));
    m.insert(
        "completeness".to_owned(),
        completeness_value(&resp.completeness),
    );
    m.insert(
        "io".to_owned(),
        resp.io.as_ref().map(io_value).unwrap_or(Value::Null),
    );
    if let Some(t) = &resp.trace {
        m.insert("trace".to_owned(), trace_value(t));
    }
    Value::Object(m)
}

/// Builds an error response line.
pub fn error_line(kind: ErrorKind, message: &str) -> String {
    let mut err = BTreeMap::new();
    err.insert("kind".to_owned(), Value::from(kind.name()));
    err.insert("message".to_owned(), Value::from(message));
    let mut m = BTreeMap::new();
    m.insert("ok".to_owned(), Value::from(false));
    m.insert("error".to_owned(), Value::Object(err));
    // lint-allow: server-unwrap — serializing an owned Value tree is infallible; no connection involved
    let mut line = serde_json::to_string(&Value::Object(m)).expect("infallible");
    line.push('\n');
    line
}

/// Builds a success response line from named top-level fields (always
/// includes `"ok": true`).
pub fn ok_line(fields: Vec<(&str, Value)>) -> String {
    let mut m = BTreeMap::new();
    m.insert("ok".to_owned(), Value::from(true));
    for (k, v) in fields {
        m.insert(k.to_owned(), v);
    }
    // lint-allow: server-unwrap — serializing an owned Value tree is infallible; no connection involved
    let mut line = serde_json::to_string(&Value::Object(m)).expect("infallible");
    line.push('\n');
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let mut req = SearchRequest::new("trade AND reserves");
        req.k = 7;
        req.algorithm = Algorithm::Ta;
        req.backend = BackendChoice::Disk;
        req.nra_fraction = Some(0.5);
        req.max_overlap = Some(0.25);
        req.use_delta = true;
        req.shards = Some(4);
        req.delay_ms = 3;
        req.deadline_ms = Some(250);
        req.io_budget = Some(1_000);
        req.trace = true;
        assert!(req.is_budgeted());
        let line = req.to_line();
        assert!(line.ends_with('\n'));
        match parse_request(&line).unwrap() {
            WireRequest::Search(got) => assert_eq!(got, req),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn batch_roundtrip_and_defaults() {
        let mut a = SearchRequest::new("a");
        a.deadline_ms = Some(9); // explicit: must win over the default
        let b = SearchRequest::new("b");
        let line = batch_line(&[a.clone(), b.clone()]);
        match parse_request(&line).unwrap() {
            WireRequest::Batch(items) => assert_eq!(items, vec![a.clone(), b.clone()]),
            other => panic!("wrong variant: {other:?}"),
        }
        // Top-level budget fields act as per-item defaults.
        let with_defaults = r#"{"batch":[{"query":"a","deadline_ms":9},{"query":"b"}],"deadline_ms":50,"io_budget":7}"#;
        match parse_request(with_defaults).unwrap() {
            WireRequest::Batch(items) => {
                assert_eq!(items[0].deadline_ms, Some(9));
                assert_eq!(items[0].io_budget, Some(7));
                assert_eq!(items[1].deadline_ms, Some(50));
                assert_eq!(items[1].io_budget, Some(7));
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn oversized_and_malformed_batches_are_rejected() {
        assert!(parse_request(r#"{"batch":[]}"#).is_err());
        assert!(parse_request(r#"{"batch":"x"}"#).is_err());
        assert!(
            parse_request(r#"{"batch":[{"k":5}]}"#).is_err(),
            "item without query"
        );
        let big = batch_line(&vec![SearchRequest::new("q"); MAX_BATCH + 1]);
        assert!(parse_request(&big).is_err());
        let ok = batch_line(&vec![SearchRequest::new("q"); MAX_BATCH]);
        assert!(parse_request(&ok).is_ok());
    }

    #[test]
    fn completeness_roundtrips_through_the_wire_shape() {
        for c in [
            Completeness::Exact,
            Completeness::Approximate {
                reason: ApproxReason::PartialLists,
            },
            Completeness::Approximate {
                reason: ApproxReason::TruncatedImage,
            },
            Completeness::Approximate {
                reason: ApproxReason::DeltaCorrections,
            },
            Completeness::Truncated {
                budget_hit: BudgetKind::Deadline,
            },
            Completeness::Truncated {
                budget_hit: BudgetKind::Io,
            },
            Completeness::Truncated {
                budget_hit: BudgetKind::Steps,
            },
        ] {
            let v = completeness_value(&c);
            assert_eq!(completeness_from_value(&v), Some(c), "{c}");
        }
        assert_eq!(completeness_from_value(&Value::from(3u64)), None);
    }

    #[test]
    fn defaults_apply_to_minimal_request() {
        let req = parse_request(r#"{"query": "a b"}"#).unwrap();
        match req {
            WireRequest::Search(s) => {
                assert_eq!(s.query, "a b");
                assert_eq!(s.k, 10);
                assert_eq!(s.algorithm, Algorithm::Nra);
                assert_eq!(s.backend, BackendChoice::Memory);
                assert_eq!(s.nra_fraction, None);
                assert_eq!(s.max_overlap, None);
                assert!(!s.use_delta);
                assert_eq!(s.shards, None);
                assert_eq!(s.delay_ms, 0);
                assert_eq!(s.deadline_ms, None);
                assert_eq!(s.io_budget, None);
                assert!(!s.trace);
                assert!(!s.is_budgeted());
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn zero_shards_means_server_default() {
        match parse_request(r#"{"query":"a","shards":0}"#).unwrap() {
            WireRequest::Search(s) => assert_eq!(s.shards, None),
            other => panic!("wrong variant: {other:?}"),
        }
        match parse_request(r#"{"query":"a","shards":4}"#).unwrap() {
            WireRequest::Search(s) => assert_eq!(s.shards, Some(4)),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn control_verbs_parse() {
        assert_eq!(
            parse_request(r#"{"cmd":"stats"}"#).unwrap(),
            WireRequest::Stats
        );
        assert_eq!(
            parse_request(r#"{"cmd":"metrics"}"#).unwrap(),
            WireRequest::Metrics
        );
        assert_eq!(
            parse_request(r#"{"cmd":"ping"}"#).unwrap(),
            WireRequest::Ping
        );
        assert_eq!(
            parse_request(r#"{"cmd":"shutdown"}"#).unwrap(),
            WireRequest::Shutdown
        );
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for bad in [
            "",
            "not json",
            "[1,2]",
            r#"{"cmd":"reboot"}"#,
            r#"{"k": 5}"#,
            r#"{"query":"a","k":"five"}"#,
            r#"{"query":"a","method":"bogus"}"#,
            r#"{"query":"a","backend":"tape"}"#,
            r#"{"query":"a","delay_ms":-1}"#,
            r#"{"query":"a","shards":"many"}"#,
            r#"{"query":"a","deadline_ms":"soon"}"#,
            r#"{"query":"a","io_budget":-5}"#,
        ] {
            assert!(parse_request(bad).is_err(), "accepted bad request: {bad}");
        }
    }

    #[test]
    fn error_line_shape() {
        let line = error_line(ErrorKind::Overloaded, "queue full");
        let v: Value = serde_json::from_str(&line).unwrap();
        assert_eq!(v["ok"].as_bool(), Some(false));
        assert_eq!(v["error"]["kind"], "overloaded");
        assert_eq!(v["error"]["message"], "queue full");
        assert_eq!(
            ErrorKind::from_name(v["error"]["kind"].as_str().unwrap()),
            Some(ErrorKind::Overloaded)
        );
    }

    #[test]
    fn f64_bits_roundtrip_exactly() {
        for f in [
            0.0,
            -0.0,
            1.5,
            f64::NEG_INFINITY,
            f64::INFINITY,
            f64::MIN_POSITIVE,
            -123.456789e-30,
        ] {
            let s = f64_to_bits_str(f);
            assert_eq!(s.len(), 16);
            assert_eq!(f64_from_bits_str(&s).unwrap().to_bits(), f.to_bits());
        }
        assert!(f64_from_bits_str("xyz").is_err());
        assert!(f64_from_bits_str("0").is_err());
    }

    #[test]
    fn shard_exec_request_roundtrip() {
        let mut req = ShardExecRequest::new("a AND b", 4, 2, 28);
        req.floor = 0.123456789;
        req.batch = Some(64);
        req.algorithm = Algorithm::Nra;
        req.backend = BackendChoice::Block;
        req.nra_fraction = Some(0.5);
        req.use_delta = true;
        req.deadline_ms = Some(75);
        req.range = Some((100, 200));
        let line = req.to_line();
        match parse_request(&line).unwrap() {
            WireRequest::ShardExec(got) => {
                assert_eq!(got.floor.to_bits(), req.floor.to_bits());
                assert_eq!(got, req);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        // An inactive floor is omitted from the line and decodes to -inf.
        let plain = ShardExecRequest::new("q", 2, 0, 10);
        assert!(!plain.to_line().contains("floor_bits"));
        match parse_request(&plain.to_line()).unwrap() {
            WireRequest::ShardExec(got) => {
                assert_eq!(got.floor, f64::NEG_INFINITY);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn malformed_shard_exec_is_rejected() {
        for bad in [
            r#"{"cmd":"shard_exec"}"#,
            r#"{"cmd":"shard_exec","query":"a","fanout":2,"shard":2}"#,
            r#"{"cmd":"shard_exec","query":"a","floor_bits":"zz"}"#,
            r#"{"cmd":"shard_exec","query":"a","range":[5,5]}"#,
            r#"{"cmd":"shard_exec","query":"a","range":"all"}"#,
        ] {
            assert!(parse_request(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn shard_outcome_roundtrip_is_bit_exact() {
        let out = ShardOutcome {
            hits: vec![
                PhraseHit {
                    phrase: ipm_corpus::PhraseId::new(7),
                    score: -2.5000000000000004,
                    lower: -3.0,
                    upper: -2.0,
                },
                PhraseHit::exact(ipm_corpus::PhraseId::new(9), 0.1 + 0.2),
            ],
            raw_candidates: 5,
            stats: ExecStats {
                sorted_accesses: 11,
                random_probes: 3,
                entries_skipped: 2,
                rounds: 4,
            },
            io_fetches: 17,
            tripped: true,
        };
        let v = shard_outcome_value(&out);
        let line = serde_json::to_string(&v).unwrap();
        let back = shard_outcome_from_value(&serde_json::from_str(&line).unwrap()).unwrap();
        assert_eq!(back.hits.len(), 2);
        for (a, b) in back.hits.iter().zip(&out.hits) {
            assert_eq!(a.phrase, b.phrase);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
            assert_eq!(a.lower.to_bits(), b.lower.to_bits());
            assert_eq!(a.upper.to_bits(), b.upper.to_bits());
        }
        assert_eq!(back.raw_candidates, 5);
        assert_eq!(back.stats, out.stats);
        assert_eq!(back.io_fetches, 17);
        assert!(back.tripped);
    }

    #[test]
    fn shards_missing_completeness_roundtrips() {
        let c = Completeness::Approximate {
            reason: ApproxReason::ShardsMissing { missing: 2 },
        };
        let v = completeness_value(&c);
        assert_eq!(v["reason"], "shards_missing");
        assert_eq!(v["missing"].as_u64(), Some(2));
        assert_eq!(completeness_from_value(&v), Some(c));
    }

    #[test]
    fn options_map_to_engine_options() {
        let mut req = SearchRequest::new("x");
        req.max_overlap = Some(0.4);
        req.nra_fraction = Some(0.2);
        let opts = req.options();
        assert_eq!(opts.nra_fraction, Some(0.2));
        assert_eq!(opts.redundancy.unwrap().max_overlap, 0.4);
    }
}
