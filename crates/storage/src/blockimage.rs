//! Disk-resident **block-compressed** lists: the third serving backend.
//!
//! [`BlockImage`] wraps an `ipm_index::block::BlockLists` encoding with a
//! simulated [`BufferPool`]: the two encoded regions (score-ordered blocks
//! first, id-ordered blocks behind them) form one contiguous "file", and
//! every *block decode* charges its byte range to the pool via the block
//! cursors' fetch hooks. Blocks the traversal skips — block-max pruning on
//! the score side, `seek` galloping on the id side — are never decoded and
//! therefore never fetched, which is exactly the IO reduction the skip
//! metadata exists to buy (compare `IoStats` against [`crate::DiskLists`],
//! whose flat cursors must stream every 12-byte entry they pass over).
//!
//! Like the flat disk image, the pool simulates residency and cost only;
//! the encoded bytes stay in `BlockLists`' own memory and decoding slices
//! into them directly (the paper's §5.5 log-based methodology).
//!
//! The image carries no phrase file: result texts resolve through the
//! miner's in-memory dictionary, same as the memory backend.

use std::sync::Arc;

use ipm_corpus::{Feature, PhraseId};
use ipm_index::backend::ListBackend;
use ipm_index::block::{df_table, BlockIdCursor, BlockLists, BlockScoreCursor, FetchHook};
use ipm_index::corpus_index::CorpusIndex;
use ipm_index::sharding::ShardedWordLists;
use ipm_index::wordlists::{IdOrderedLists, WordPhraseLists};
use parking_lot::Mutex;

use crate::cost::{CostModel, IoStats};
use crate::pool::{BufferPool, PoolConfig};

/// Block-compressed lists behind a simulated buffer pool.
pub struct BlockImage {
    lists: BlockLists,
    pool: Mutex<BufferPool>,
    cost: CostModel,
    /// Process-unique id distinguishing this image's decoded blocks from
    /// any other image's (shard slices, rebuilt generations) in the
    /// shared [`crate::DecodedBlockCache`].
    image_id: u64,
}

/// Source of [`BlockImage::image_id`] values: never reused, so a decoded
/// block admitted by one image can never be served for another.
static NEXT_IMAGE_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl BlockImage {
    /// Wraps an encoded `BlockLists` with a pool in the paper's default
    /// configuration.
    pub fn new(lists: BlockLists) -> Self {
        Self::with_config(lists, PoolConfig::default(), CostModel::default())
    }

    /// Full-control constructor.
    pub fn with_config(lists: BlockLists, pool: PoolConfig, cost: CostModel) -> Self {
        Self {
            lists,
            pool: Mutex::new(BufferPool::new(pool)),
            cost,
            image_id: NEXT_IMAGE_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        }
    }

    /// Encodes `lists`/`id_lists` against `index`'s df table and wraps the
    /// result (the common unsharded case; `score_fraction < 1.0` freezes a
    /// build-time cut of the score-ordered lists, paper §4.3).
    pub fn build(
        index: &CorpusIndex,
        lists: &WordPhraseLists,
        id_lists: &IdOrderedLists,
        score_fraction: f64,
        pool: PoolConfig,
        cost: CostModel,
    ) -> Self {
        let df = Arc::new(df_table(index));
        let encoded = if score_fraction < 1.0 {
            BlockLists::build(&lists.partial(score_fraction), id_lists, df, None)
        } else {
            BlockLists::build(lists, id_lists, df, None)
        };
        Self::with_config(encoded, pool, cost)
    }

    /// The wrapped encoding (sizes, compression ratio, df table).
    pub fn lists(&self) -> &BlockLists {
        &self.lists
    }

    /// The cost model in force.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Snapshot of accumulated IO statistics.
    pub fn io_stats(&self) -> IoStats {
        self.pool.lock().stats()
    }

    /// Simulated IO milliseconds accumulated so far.
    pub fn io_ms(&self) -> f64 {
        self.io_stats().io_ms(&self.cost)
    }

    /// Cold-cache reset (between queries in the experiment harness).
    pub fn reset_io(&self) {
        self.pool.lock().reset();
    }

    /// Process-unique image id (decoded-block cache key component).
    pub fn image_id(&self) -> u64 {
        self.image_id
    }

    /// The pool behind this image (for cache wrappers that need a charge
    /// closure rather than a boxed hook).
    pub(crate) fn pool_handle(&self) -> &Mutex<BufferPool> {
        &self.pool
    }

    /// Length of the simulated file: both encoded regions, contiguous.
    pub(crate) fn file_len(&self) -> u64 {
        self.lists.image_bytes() as u64
    }

    /// A fetch hook charging one block's byte range to the pool.
    pub(crate) fn charge_hook(&self) -> FetchHook<'_> {
        let file_len = self.file_len();
        Box::new(move |offset, len| self.pool.lock().access_range(offset, len, file_len))
    }
}

impl std::fmt::Debug for BlockImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockImage")
            .field("encoded_bytes", &self.lists.encoded_bytes())
            .field("flat_bytes", &self.lists.flat_bytes())
            .field("io", &self.io_stats())
            .finish()
    }
}

impl ListBackend for BlockImage {
    type ScoreCursor<'a> = BlockScoreCursor<'a>;
    type IdCursor<'a> = BlockIdCursor<'a>;

    fn score_cursor(&self, feature: Feature, fraction: f64) -> BlockScoreCursor<'_> {
        self.lists
            .score_cursor_with_hook(feature, fraction, Some(self.charge_hook()))
    }

    fn id_cursor(&self, feature: Feature) -> BlockIdCursor<'_> {
        self.lists
            .id_cursor_with_hook(feature, Some(self.charge_hook()))
    }

    fn probe(&self, feature: Feature, phrase: PhraseId) -> f64 {
        let file_len = self.file_len();
        let charge = |offset: u64, len: u64| self.pool.lock().access_range(offset, len, file_len);
        self.lists.probe_with_hook(feature, phrase, Some(&charge))
    }

    fn list_len(&self, feature: Feature) -> usize {
        self.lists.list_len(feature)
    }

    fn phrase_range(&self) -> Option<(PhraseId, PhraseId)> {
        self.lists.phrase_range()
    }

    fn io_fetches(&self) -> u64 {
        self.pool.lock().stats().total_fetches()
    }

    fn size_bytes(&self) -> usize {
        self.lists.size_bytes()
    }
}

/// A block-compressed image partitioned by phrase-id range: one
/// [`BlockImage`] (own pool — deterministic per-shard accounting under
/// parallel execution, as for [`crate::ShardedDiskImage`]) per shard, one
/// shared df table.
pub struct ShardedBlockImage {
    shards: Vec<BlockImage>,
    ranges: Vec<(PhraseId, PhraseId)>,
}

impl ShardedBlockImage {
    /// Encodes every shard of `sharded` against one shared df table.
    /// `score_fraction < 1.0` truncates each shard's score-ordered lists
    /// before encoding (per-shard build-time cut, mirroring
    /// [`crate::ShardedDiskImage::build`]).
    pub fn build(
        index: &CorpusIndex,
        sharded: &ShardedWordLists,
        score_fraction: f64,
        pool: PoolConfig,
        cost: CostModel,
    ) -> Self {
        let df = Arc::new(df_table(index));
        let mut shards = Vec::with_capacity(sharded.num_shards());
        let mut ranges = Vec::with_capacity(sharded.num_shards());
        for s in sharded.shards() {
            let lists = if score_fraction < 1.0 {
                s.lists().partial(score_fraction)
            } else {
                s.lists().clone()
            };
            let encoded = BlockLists::build(&lists, s.id_lists(), df.clone(), Some(s.range()));
            shards.push(BlockImage::with_config(encoded, pool, cost));
            ranges.push(s.range());
        }
        Self { shards, ranges }
    }

    /// The per-shard images, in ascending range order. Each is a complete
    /// `ListBackend` over its partition.
    pub fn shards(&self) -> &[BlockImage] {
        &self.shards
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The image owning `phrase` (ranges cover the full id space).
    pub fn owner(&self, phrase: PhraseId) -> &BlockImage {
        let i = self
            .ranges
            .iter()
            .position(|&(lo, hi)| lo <= phrase && phrase < hi)
            .expect("ranges cover the full phrase-id space");
        &self.shards[i]
    }

    /// Cold-cache reset of every shard's pool.
    pub fn reset_io(&self) {
        for s in &self.shards {
            s.reset_io();
        }
    }

    /// Aggregate IO across shards since the last reset.
    pub fn io_stats(&self) -> IoStats {
        let mut total = IoStats::default();
        for s in &self.shards {
            total.accumulate(&s.io_stats());
        }
        total
    }

    /// Total encoded bytes across shards plus the shared df table, counted
    /// once (every shard holds the same `Arc`).
    pub fn size_bytes(&self) -> usize {
        let encoded: usize = self.shards.iter().map(|s| s.lists().encoded_bytes()).sum();
        encoded + self.shards.first().map_or(0, |s| s.lists().df_bytes())
    }
}

impl std::fmt::Debug for ShardedBlockImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedBlockImage")
            .field("shards", &self.shards.len())
            .field("bytes", &self.size_bytes())
            .field("io", &self.io_stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipm_corpus::Corpus;
    use ipm_index::corpus_index::IndexConfig;
    use ipm_index::cursor::{IdListCursor, ScoredListCursor};
    use ipm_index::mining::MiningConfig;
    use ipm_index::wordlists::WordListConfig;

    fn setup() -> (Corpus, CorpusIndex, WordPhraseLists, IdOrderedLists) {
        let (c, _) = ipm_corpus::synth::generate(&ipm_corpus::synth::tiny());
        let index = CorpusIndex::build(
            &c,
            &IndexConfig {
                mining: MiningConfig {
                    min_df: 3,
                    max_len: 4,
                    min_len: 1,
                },
            },
        );
        let lists = WordPhraseLists::build(&c, &index, &WordListConfig::default());
        let idl = IdOrderedLists::from_score_ordered(&lists);
        (c, index, lists, idl)
    }

    fn image() -> (BlockImage, WordPhraseLists, IdOrderedLists) {
        let (_, index, lists, idl) = setup();
        let img = BlockImage::build(
            &index,
            &lists,
            &idl,
            1.0,
            PoolConfig::default(),
            CostModel::default(),
        );
        (img, lists, idl)
    }

    #[test]
    fn cursors_match_memory_lists_and_charge_io() {
        let (img, lists, idl) = image();
        for &feat in lists.features() {
            let mut cur = img.score_cursor(feat, 1.0);
            for e in lists.list(feat) {
                let got = ScoredListCursor::next_entry(&mut cur).unwrap();
                assert_eq!(got.phrase, e.phrase);
                assert_eq!(got.prob.to_bits(), e.prob.to_bits());
            }
            assert!(ScoredListCursor::next_entry(&mut cur).is_none());
            let mut idc = img.id_cursor(feat);
            for e in idl.list(feat) {
                let got = IdListCursor::next_entry(&mut idc).unwrap();
                assert_eq!(got.phrase, e.phrase);
                assert_eq!(got.prob.to_bits(), e.prob.to_bits());
            }
        }
        assert!(
            img.io_stats().total_accesses() > 0,
            "block decodes must reach the pool"
        );
    }

    #[test]
    fn probe_matches_memory_and_charges() {
        let (img, lists, _) = image();
        img.reset_io();
        let feat = *lists
            .features()
            .iter()
            .max_by_key(|f| lists.list(**f).len())
            .unwrap();
        for e in lists.list(feat).iter().take(10) {
            assert_eq!(img.probe(feat, e.phrase), e.prob);
        }
        assert_eq!(img.probe(feat, PhraseId(u32::MAX)), 0.0);
        assert!(img.io_stats().total_accesses() > 0);
    }

    #[test]
    fn io_accounting_and_reset() {
        let (img, lists, _) = image();
        let feat = *lists
            .features()
            .iter()
            .max_by_key(|f| lists.list(**f).len())
            .unwrap();
        let mut cur = img.score_cursor(feat, 1.0);
        while ScoredListCursor::next_entry(&mut cur).is_some() {}
        assert!(img.io_ms() > 0.0);
        assert!(img.io_fetches() > 0);
        let paid = img.io_stats().total_accesses();
        // A second identical pass re-decodes, but pages may be resident.
        let mut cur = img.score_cursor(feat, 1.0);
        while ScoredListCursor::next_entry(&mut cur).is_some() {}
        assert!(img.io_stats().total_accesses() > paid);
        img.reset_io();
        assert_eq!(img.io_stats(), IoStats::default());
    }

    #[test]
    fn seek_skips_blocks_without_fetching_them() {
        // Galloping to the tail of a long id-ordered list must touch fewer
        // pages than streaming it: skipped blocks are never decoded, so
        // their byte ranges never reach the pool.
        let (_, index, lists, idl) = setup();
        let small_pages = PoolConfig {
            page_size: 64,
            capacity_pages: 16,
            lookahead_pages: 0,
        };
        let feat = *lists
            .features()
            .iter()
            .max_by_key(|f| lists.list(**f).len())
            .unwrap();
        let last = idl.list(feat).last().unwrap().phrase;

        let build =
            || BlockImage::build(&index, &lists, &idl, 1.0, small_pages, CostModel::default());
        let streamed = build();
        let mut cur = streamed.id_cursor(feat);
        while IdListCursor::next_entry(&mut cur).is_some() {}
        let full = streamed.io_stats().total_accesses();

        let sought = build();
        let mut cur = sought.id_cursor(feat);
        assert_eq!(cur.seek(last).unwrap().phrase, last);
        let skipped = sought.io_stats().total_accesses();
        assert!(
            skipped < full,
            "seek paid {skipped} accesses, full stream paid {full}"
        );
    }

    #[test]
    fn sharded_image_covers_every_entry_and_aggregates_io() {
        let (_, index, lists, idl) = setup();
        let sharded = ShardedWordLists::build(&lists, &idl, index.dict.len(), 3);
        let img = ShardedBlockImage::build(
            &index,
            &sharded,
            1.0,
            PoolConfig::default(),
            CostModel::default(),
        );
        assert_eq!(img.num_shards(), 3);
        let feat = *lists
            .features()
            .iter()
            .max_by_key(|f| lists.list(**f).len())
            .unwrap();
        let mut seen = 0usize;
        for shard in img.shards() {
            let (lo, hi) = shard.phrase_range().unwrap();
            let mut cur = shard.score_cursor(feat, 1.0);
            while let Some(e) = ScoredListCursor::next_entry(&mut cur) {
                assert!(lo <= e.phrase && e.phrase < hi);
                assert!(lists
                    .list(feat)
                    .iter()
                    .any(|x| x.phrase == e.phrase && x.prob.to_bits() == e.prob.to_bits()));
                seen += 1;
            }
        }
        assert_eq!(seen, lists.list(feat).len(), "no entry lost or invented");
        let total = img.io_stats();
        let per_shard: u64 = img
            .shards()
            .iter()
            .map(|s| s.io_stats().total_accesses())
            .sum();
        assert_eq!(total.total_accesses(), per_shard);
        assert!(img.owner(lists.list(feat)[0].phrase).io_fetches() > 0);
        img.reset_io();
        assert_eq!(img.io_stats(), IoStats::default());
    }

    #[test]
    fn df_table_counted_once_in_sharded_size() {
        let (_, index, lists, idl) = setup();
        let build = |n| {
            ShardedBlockImage::build(
                &index,
                &ShardedWordLists::build(&lists, &idl, index.dict.len(), n),
                1.0,
                PoolConfig::default(),
                CostModel::default(),
            )
        };
        let one = build(1);
        let four = build(4);
        // Sharding re-cuts the same entries into narrower blocks; sizes
        // may differ slightly (per-block widths), but the df table must
        // not be multiplied by the fanout.
        let df = one.shards()[0].lists().df_bytes();
        assert!(four.size_bytes() < four.shards().iter().map(|s| s.size_bytes()).sum::<usize>());
        assert!(one.size_bytes() >= df);
    }

    #[test]
    fn build_time_fraction_truncates_score_side_only() {
        let (_, index, lists, idl) = setup();
        let img = BlockImage::build(
            &index,
            &lists,
            &idl,
            0.25,
            PoolConfig::default(),
            CostModel::default(),
        );
        let feat = *lists
            .features()
            .iter()
            .max_by_key(|f| lists.list(**f).len())
            .unwrap();
        let full = lists.list(feat).len();
        assert_eq!(
            img.list_len(feat),
            ipm_index::cursor::prefix_len(full, 0.25)
        );
        let mut idc = img.id_cursor(feat);
        let mut n = 0;
        while IdListCursor::next_entry(&mut idc).is_some() {
            n += 1;
        }
        assert_eq!(n, full, "id side frozen at its own fraction");
    }
}
