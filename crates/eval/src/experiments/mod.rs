//! The experiment harness: one runner per paper table/figure.
//!
//! Each runner consumes a [`datasets::DatasetBundle`] (corpus + miner +
//! harvested query set) and produces a [`report::Report`] that prints the
//! same rows/series the paper's table or figure shows, plus JSON for
//! machine consumption. The `ipm-bench` binaries are thin wrappers around
//! these functions; `EXPERIMENTS.md` records paper-vs-measured values.
//!
//! | Paper artifact | Runner |
//! |---|---|
//! | Table 4 (sample results) | [`samples::run`] |
//! | Fig. 5/6 (result quality) | [`quality::run`] |
//! | Fig. 7/8 (SMJ vs GM runtimes) | [`runtime::run_smj_vs_gm`] |
//! | Fig. 9/10 (NRA cost break-up) | [`breakdown::run`] |
//! | Fig. 11 (lists traversed) | [`traversal::run`] |
//! | Fig. 12/13 (disk NRA vs GM) | [`runtime::run_nra_vs_gm`] |
//! | Table 5 (index sizes) | [`index_sizes::run`] |
//! | Table 6 (interestingness error) | [`accuracy::run`] |
//! | Table 7 (summary) | [`summary::run`] |
//! | §5.5 (SMJ/NRA crossover) | [`crossover::run`] |
//! | §5.7 (facet queries, deferred by the paper) | [`facets::run`] |
//! | §4.5 (cost vs query length `r`) | [`query_length::run`] |

pub mod accuracy;
pub mod breakdown;
pub mod crossover;
pub mod datasets;
pub mod facets;
pub mod index_sizes;
pub mod quality;
pub mod query_length;
pub mod report;
pub mod runtime;
pub mod samples;
pub mod summary;
pub mod traversal;

pub use datasets::DatasetBundle;
pub use report::Report;
