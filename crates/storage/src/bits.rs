//! Minimal bit-level serialization used by the packed word-list layout.
//!
//! The paper (§4.2.2) sizes each word-list pair at exactly
//! `⌈log₂(|P|)⌉ + 64` bits — phrase IDs are packed at the minimum width that
//! can address the dictionary, probabilities stay full-width doubles. This
//! module provides the little-endian-within-byte bit writer/reader those
//! entries are built from. Values are written LSB-first: the first bit
//! written lands in bit 0 of byte 0.

/// Append-only bit writer over a growable byte buffer.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    bit_len: u64,
}

impl BitWriter {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writer with room for `bits` bits preallocated.
    pub fn with_capacity_bits(bits: u64) -> Self {
        Self {
            bytes: Vec::with_capacity((bits as usize).div_ceil(8)),
            bit_len: 0,
        }
    }

    /// Appends the low `bits` bits of `value` (`1 ..= 64`).
    ///
    /// # Panics
    /// In debug builds, panics if `value` has bits set above `bits`.
    pub fn write(&mut self, value: u64, bits: u32) {
        debug_assert!((1..=64).contains(&bits));
        debug_assert!(
            bits == 64 || value < (1u64 << bits),
            "value overflows width"
        );
        let mut v = value;
        let mut remaining = bits;
        while remaining > 0 {
            let byte_idx = (self.bit_len / 8) as usize;
            let bit_in_byte = (self.bit_len % 8) as u32;
            if byte_idx == self.bytes.len() {
                self.bytes.push(0);
            }
            let take = (8 - bit_in_byte).min(remaining);
            let mask = (1u64 << take) - 1; // take <= 8, never overflows
            self.bytes[byte_idx] |= ((v & mask) as u8) << bit_in_byte;
            v >>= take;
            self.bit_len += u64::from(take);
            remaining -= take;
        }
    }

    /// Bits written so far.
    pub fn bit_len(&self) -> u64 {
        self.bit_len
    }

    /// Consumes the writer, returning the backing bytes (final partial byte
    /// zero-padded).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Reads `bits` bits (`1 ..= 64`) starting at absolute `bit_offset`,
/// mirroring [`BitWriter::write`]'s layout.
///
/// # Panics
/// Panics if the range extends past `data`.
pub fn read_bits(data: &[u8], bit_offset: u64, bits: u32) -> u64 {
    debug_assert!((1..=64).contains(&bits));
    assert!(
        bit_offset + u64::from(bits) <= data.len() as u64 * 8,
        "bit range out of bounds"
    );
    let mut v = 0u64;
    let mut got = 0u32;
    let mut off = bit_offset;
    while got < bits {
        let byte = u64::from(data[(off / 8) as usize]);
        let bit_in_byte = (off % 8) as u32;
        let take = (8 - bit_in_byte).min(bits - got);
        let chunk = (byte >> bit_in_byte) & ((1u64 << take) - 1);
        v |= chunk << got;
        got += take;
        off += u64::from(take);
    }
    v
}

/// Minimum ID width for a dictionary of `n` phrases: `⌈log₂ n⌉`, at least 1
/// (IDs live in `[0, n)`; `n ≤ 1` still needs one bit to be addressable).
pub fn bits_for_ids(n: usize) -> u32 {
    if n <= 1 {
        return 1;
    }
    usize::BITS - (n - 1).leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_byte_roundtrip() {
        let mut w = BitWriter::new();
        w.write(0b101, 3);
        w.write(0b11, 2);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 1);
        assert_eq!(read_bits(&bytes, 0, 3), 0b101);
        assert_eq!(read_bits(&bytes, 3, 2), 0b11);
    }

    #[test]
    fn cross_byte_roundtrip() {
        let mut w = BitWriter::new();
        w.write(0x3FF, 10); // spans bytes 0-1
        w.write(0x1, 1);
        w.write(0xABCD, 16); // spans bytes 1-3
        let bytes = w.into_bytes();
        assert_eq!(read_bits(&bytes, 0, 10), 0x3FF);
        assert_eq!(read_bits(&bytes, 10, 1), 0x1);
        assert_eq!(read_bits(&bytes, 11, 16), 0xABCD);
    }

    #[test]
    fn full_width_64_roundtrip() {
        let mut w = BitWriter::new();
        w.write(0x5, 3); // misalign first
        w.write(u64::MAX, 64);
        w.write(0x0123_4567_89AB_CDEF, 64);
        let bytes = w.into_bytes();
        assert_eq!(read_bits(&bytes, 3, 64), u64::MAX);
        assert_eq!(read_bits(&bytes, 67, 64), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn bit_len_tracks_exactly() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write(1, 1);
        w.write(0, 7);
        w.write(0x1234, 17);
        assert_eq!(w.bit_len(), 25);
        assert_eq!(w.into_bytes().len(), 4); // ceil(25 / 8)
    }

    #[test]
    fn final_partial_byte_zero_padded() {
        let mut w = BitWriter::new();
        w.write(0b1, 1);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1]);
    }

    #[test]
    fn bits_for_ids_boundaries() {
        assert_eq!(bits_for_ids(0), 1);
        assert_eq!(bits_for_ids(1), 1);
        assert_eq!(bits_for_ids(2), 1);
        assert_eq!(bits_for_ids(3), 2);
        assert_eq!(bits_for_ids(4), 2);
        assert_eq!(bits_for_ids(5), 3);
        assert_eq!(bits_for_ids(256), 8);
        assert_eq!(bits_for_ids(257), 9);
        assert_eq!(bits_for_ids(1 << 20), 20);
        assert_eq!(bits_for_ids((1 << 20) + 1), 21);
    }

    #[test]
    #[should_panic(expected = "bit range out of bounds")]
    fn read_past_end_panics() {
        let bytes = [0u8; 2];
        read_bits(&bytes, 10, 8);
    }

    #[test]
    fn interleaved_widths_roundtrip() {
        // Emulates packed entries: (id_bits, 64) pairs at many widths.
        for id_bits in [1u32, 5, 13, 17, 20, 31, 32, 40] {
            let mut w = BitWriter::new();
            let ids: Vec<u64> = (0..20)
                .map(|i| (i * 2_654_435_761u64) & ((1u64 << id_bits) - 1).max(1))
                .collect();
            for (i, &id) in ids.iter().enumerate() {
                w.write(id, id_bits);
                w.write((0.5f64 / (i + 1) as f64).to_bits(), 64);
            }
            let bytes = w.into_bytes();
            let entry_bits = u64::from(id_bits) + 64;
            for (i, &id) in ids.iter().enumerate() {
                let at = i as u64 * entry_bits;
                assert_eq!(read_bits(&bytes, at, id_bits), id, "id_bits={id_bits}");
                let prob = f64::from_bits(read_bits(&bytes, at + u64::from(id_bits), 64));
                assert_eq!(prob, 0.5 / (i + 1) as f64);
            }
        }
    }
}
