//! Schema for `BENCH_batch.json` — the shared-scan batch-execution
//! benchmark artifact written at the repo root by `benches/batch.rs`.
//!
//! The bench target runs a zipfian shared-word workload (many concurrent
//! queries drawing their words from the hot head of the vocabulary) two
//! ways: N independent `execute_with_budget` calls (the serial baseline)
//! and one `execute_batch` call (the fused shared-scan path with the
//! decoded-block cache). Each row records the aggregate latency of both
//! and the decode-cache hit rate the fused run achieved. The validator
//! enforces the PR's acceptance bound: on the block backend the fused
//! aggregate must stay at or below 0.6× the serial aggregate, with a
//! decode-cache hit rate above 50% — so CI fails when the fusion win
//! regresses, not just when the schema drifts.

use serde_json::Value;
use std::collections::BTreeMap;

/// Bump when the JSON shape changes; CI pins the current value.
pub const SCHEMA_VERSION: u64 = 1;

/// The acceptance bound on the block backend: fused aggregate latency
/// must be ≤ this fraction of the serial aggregate.
pub const MAX_FUSED_RATIO: f64 = 0.6;

/// The acceptance floor for the decode-cache hit rate on block rows.
pub const MIN_HIT_RATE: f64 = 0.5;

/// One workload measurement: a (backend, algorithm) cell of the zipfian
/// shared-word scenario.
#[derive(Debug, Clone)]
pub struct BatchRow {
    /// Backend name as the wire protocol spells it (`memory|disk|block`).
    pub backend: String,
    /// Algorithm name as the wire protocol spells it.
    pub algorithm: String,
    /// Aggregate latency of the serial per-item baseline, microseconds.
    pub serial_total_us: f64,
    /// Aggregate (wall-clock) latency of the fused batch, microseconds.
    pub fused_total_us: f64,
    /// `serial_total_us / fused_total_us`.
    pub speedup: f64,
    /// Shared-scan groups the planner formed for the batch.
    pub groups: u64,
    /// Decoded-block cache hits during the fused run.
    pub decode_cache_hits: u64,
    /// Decoded-block cache misses during the fused run.
    pub decode_cache_misses: u64,
    /// `hits / (hits + misses)`; 0 when the backend never decodes.
    pub decode_cache_hit_rate: f64,
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect::<BTreeMap<_, _>>(),
    )
}

/// Assembles the full `BENCH_batch.json` document.
pub fn report(corpus: &str, k: usize, queries: usize, zipf_s: f64, rows: &[BatchRow]) -> Value {
    let row_values: Vec<Value> = rows
        .iter()
        .map(|r| {
            obj(vec![
                ("backend", Value::from(r.backend.as_str())),
                ("algorithm", Value::from(r.algorithm.as_str())),
                ("serial_total_us", Value::from(r.serial_total_us)),
                ("fused_total_us", Value::from(r.fused_total_us)),
                ("speedup", Value::from(r.speedup)),
                ("groups", Value::from(r.groups)),
                ("decode_cache_hits", Value::from(r.decode_cache_hits)),
                ("decode_cache_misses", Value::from(r.decode_cache_misses)),
                (
                    "decode_cache_hit_rate",
                    Value::from(r.decode_cache_hit_rate),
                ),
            ])
        })
        .collect();
    obj(vec![
        ("schema_version", Value::from(SCHEMA_VERSION)),
        ("corpus", Value::from(corpus)),
        ("k", Value::from(k)),
        ("queries", Value::from(queries)),
        ("zipf_s", Value::from(zipf_s)),
        ("rows", Value::Array(row_values)),
    ])
}

fn require<'v>(v: &'v Value, key: &str) -> Result<&'v Value, String> {
    v.get(key).ok_or_else(|| format!("missing key: {key}"))
}

fn require_number(v: &Value, key: &str) -> Result<f64, String> {
    require(v, key)?
        .as_f64()
        .ok_or_else(|| format!("{key} is not a number"))
}

/// Structural AND acceptance check for the artifact — the bench runs
/// this before writing, and `ipm bench-check` runs it against the
/// committed file.
pub fn validate(v: &Value) -> Result<(), String> {
    let version = require(v, "schema_version")?
        .as_u64()
        .ok_or("schema_version is not an integer")?;
    if version != SCHEMA_VERSION {
        return Err(format!(
            "schema_version {version} != expected {SCHEMA_VERSION}"
        ));
    }
    require(v, "corpus")?
        .as_str()
        .ok_or("corpus is not a string")?;
    require(v, "k")?.as_u64().ok_or("k is not an integer")?;
    let queries = require(v, "queries")?
        .as_u64()
        .ok_or("queries is not an integer")?;
    if queries < 2 {
        return Err("queries < 2: nothing to fuse".into());
    }
    require_number(v, "zipf_s")?;
    let rows = require(v, "rows")?
        .as_array()
        .ok_or("rows is not an array")?;
    if rows.is_empty() {
        return Err("rows is empty".into());
    }
    let mut block_seen = false;
    for row in rows {
        let backend = require(row, "backend")?
            .as_str()
            .ok_or("backend not a string")?;
        require(row, "algorithm")?
            .as_str()
            .ok_or("algorithm not a string")?;
        let serial = require_number(row, "serial_total_us")?;
        let fused = require_number(row, "fused_total_us")?;
        if serial <= 0.0 || fused <= 0.0 {
            return Err("non-positive aggregate latency".into());
        }
        let speedup = require_number(row, "speedup")?;
        if (speedup - serial / fused).abs() > 1e-6 * speedup.abs().max(1.0) {
            return Err("speedup does not equal serial/fused".into());
        }
        let groups = require(row, "groups")?
            .as_u64()
            .ok_or("groups not an integer")?;
        require(row, "decode_cache_hits")?
            .as_u64()
            .ok_or("decode_cache_hits not an integer")?;
        require(row, "decode_cache_misses")?
            .as_u64()
            .ok_or("decode_cache_misses not an integer")?;
        let hit_rate = require_number(row, "decode_cache_hit_rate")?;
        if !(0.0..=1.0).contains(&hit_rate) {
            return Err(format!("decode_cache_hit_rate out of range: {hit_rate}"));
        }
        if backend == "block" {
            block_seen = true;
            if groups == 0 {
                return Err("block row formed no batch groups".into());
            }
            if fused > MAX_FUSED_RATIO * serial {
                return Err(format!(
                    "block backend: fused aggregate {fused:.0} µs exceeds \
                     {MAX_FUSED_RATIO}× serial aggregate {serial:.0} µs"
                ));
            }
            if hit_rate <= MIN_HIT_RATE {
                return Err(format!(
                    "block backend: decode-cache hit rate {hit_rate:.3} not above {MIN_HIT_RATE}"
                ));
            }
        }
    }
    if !block_seen {
        return Err("rows has no block backend row".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block_row() -> BatchRow {
        BatchRow {
            backend: "block".into(),
            algorithm: "smj".into(),
            serial_total_us: 10_000.0,
            fused_total_us: 4_000.0,
            speedup: 2.5,
            groups: 3,
            decode_cache_hits: 900,
            decode_cache_misses: 100,
            decode_cache_hit_rate: 0.9,
        }
    }

    #[test]
    fn report_round_trips_and_validates() {
        let mem = BatchRow {
            backend: "memory".into(),
            serial_total_us: 5_000.0,
            fused_total_us: 4_900.0,
            speedup: 5_000.0 / 4_900.0,
            groups: 3,
            decode_cache_hits: 0,
            decode_cache_misses: 0,
            decode_cache_hit_rate: 0.0,
            ..block_row()
        };
        let v = report("synth-tiny", 10, 64, 1.1, &[block_row(), mem]);
        validate(&v).unwrap();
        let text = serde_json::to_string_pretty(&v).unwrap();
        let back: Value = serde_json::from_str(&text).unwrap();
        validate(&back).unwrap();
        assert_eq!(back["rows"][0]["backend"], "block");
        assert_eq!(back["zipf_s"], 1.1);
    }

    #[test]
    fn validate_enforces_the_acceptance_bounds() {
        // Fused slower than 0.6× serial on the block backend.
        let mut slow = block_row();
        slow.fused_total_us = 7_000.0;
        slow.speedup = slow.serial_total_us / slow.fused_total_us;
        let v = report("c", 5, 64, 1.1, &[slow]);
        assert!(validate(&v).unwrap_err().contains("exceeds"));
        // Hit rate at or below 50%.
        let mut cold = block_row();
        cold.decode_cache_hit_rate = 0.5;
        let v = report("c", 5, 64, 1.1, &[cold]);
        assert!(validate(&v).unwrap_err().contains("hit rate"));
        // No block row at all.
        let mut mem = block_row();
        mem.backend = "memory".into();
        let v = report("c", 5, 64, 1.1, &[mem]);
        assert!(validate(&v).unwrap_err().contains("no block"));
        // Inconsistent speedup.
        let mut lying = block_row();
        lying.speedup = 99.0;
        let v = report("c", 5, 64, 1.1, &[lying]);
        assert!(validate(&v).unwrap_err().contains("speedup"));
        // Wrong version and a fused-only sanity case.
        let mut v = report("c", 5, 64, 1.1, &[block_row()]);
        if let Value::Object(map) = &mut v {
            map.insert("schema_version".into(), Value::from(99u64));
        }
        assert!(validate(&v).is_err());
        // A single query has nothing to share.
        let v = report("c", 5, 1, 1.1, &[block_row()]);
        assert!(validate(&v).unwrap_err().contains("nothing to fuse"));
    }
}
