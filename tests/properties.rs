//! Property-based tests (proptest) of the core invariants:
//!
//! * postings set-algebra vs a BTreeSet reference model;
//! * Apriori mining vs naive window counting;
//! * `P(q|p)` list construction vs Eq. 13 computed from postings;
//! * NRA vs a brute-force aggregation oracle over random lists;
//! * SMJ vs the same oracle;
//! * buffer pool vs a reference LRU model.

use proptest::prelude::*;

use ipm_core::nra::{run_nra, NraConfig};
use ipm_core::query::Operator;
use ipm_core::smj::run_smj_slices;
use ipm_corpus::{CorpusBuilder, DocId, PhraseId, TokenizerConfig};
use ipm_index::cursor::MemoryCursor;
use ipm_index::postings::Postings;
use ipm_index::wordlists::ListEntry;
use std::collections::BTreeSet;

// ---------- postings ------------------------------------------------------

fn postings_strategy(max_id: u32, max_len: usize) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0..max_id, 0..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn postings_ops_match_btreeset(a in postings_strategy(500, 200), b in postings_strategy(5000, 400)) {
        let pa = Postings::from_unsorted(a.iter().map(|&x| DocId(x)).collect());
        let pb = Postings::from_unsorted(b.iter().map(|&x| DocId(x)).collect());
        let sa: BTreeSet<u32> = a.into_iter().collect();
        let sb: BTreeSet<u32> = b.into_iter().collect();

        let inter: Vec<u32> = pa.intersect(&pb).iter().map(|d| d.raw()).collect();
        let want_i: Vec<u32> = sa.intersection(&sb).copied().collect();
        prop_assert_eq!(inter, want_i);

        let uni: Vec<u32> = pa.union(&pb).iter().map(|d| d.raw()).collect();
        let want_u: Vec<u32> = sa.union(&sb).copied().collect();
        prop_assert_eq!(uni, want_u);

        prop_assert_eq!(pa.intersect_len(&pb), sa.intersection(&sb).count());
    }

    #[test]
    fn multiway_ops_match_pairwise(lists in prop::collection::vec(postings_strategy(300, 100), 1..5)) {
        let ps: Vec<Postings> = lists
            .iter()
            .map(|l| Postings::from_unsorted(l.iter().map(|&x| DocId(x)).collect()))
            .collect();
        let refs: Vec<&Postings> = ps.iter().collect();
        let many_i = Postings::intersect_many(&refs);
        let many_u = Postings::union_many(&refs);
        let mut fold_i = ps[0].clone();
        let mut fold_u = ps[0].clone();
        for p in &ps[1..] {
            fold_i = fold_i.intersect(p);
            fold_u = fold_u.union(p);
        }
        prop_assert_eq!(many_i.as_slice(), fold_i.as_slice());
        prop_assert_eq!(many_u.as_slice(), fold_u.as_slice());
    }
}

// ---------- mining --------------------------------------------------------

fn random_corpus_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(0u8..10, 1..25), 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mining_matches_naive_window_counts(docs in random_corpus_strategy(), min_df in 1u32..5, max_len in 1usize..5) {
        let mut builder = CorpusBuilder::new(TokenizerConfig::default());
        for d in &docs {
            let text: Vec<String> = d.iter().map(|t| format!("t{t}")).collect();
            builder.add_text(&text.join(" "));
        }
        let corpus = builder.build();
        let cfg = ipm_index::mining::MiningConfig { min_df, max_len, min_len: 1 };
        let dict = ipm_index::mining::mine_phrases(&corpus, &cfg);

        // Naive reference.
        let mut counts: std::collections::BTreeMap<Vec<ipm_corpus::WordId>, u32> = Default::default();
        for doc in corpus.docs() {
            let mut seen = BTreeSet::new();
            for len in 1..=max_len {
                if doc.tokens.len() >= len {
                    for w in doc.tokens.windows(len) {
                        seen.insert(w.to_vec());
                    }
                }
            }
            for g in seen {
                *counts.entry(g).or_insert(0) += 1;
            }
        }
        counts.retain(|_, c| *c >= min_df);
        prop_assert_eq!(dict.len(), counts.len());
        for (gram, df) in &counts {
            let id = dict.get(gram);
            prop_assert!(id.is_some());
            prop_assert_eq!(dict.df(id.unwrap()), *df);
        }
    }

    #[test]
    fn word_lists_match_eq13(docs in random_corpus_strategy()) {
        let mut builder = CorpusBuilder::new(TokenizerConfig::default());
        for d in &docs {
            let text: Vec<String> = d.iter().map(|t| format!("t{t}")).collect();
            builder.add_text(&text.join(" "));
        }
        let corpus = builder.build();
        let index = ipm_index::corpus_index::CorpusIndex::build(
            &corpus,
            &ipm_index::corpus_index::IndexConfig {
                mining: ipm_index::mining::MiningConfig { min_df: 2, max_len: 3, min_len: 1 },
            },
        );
        let lists = ipm_index::wordlists::WordPhraseLists::build(
            &corpus,
            &index,
            &ipm_index::wordlists::WordListConfig::default(),
        );
        for (slot, feat) in lists.features().iter().enumerate() {
            for e in lists.list_by_slot(slot as u32) {
                let dq = index.features.feature(*feat);
                let dp = index.phrases.phrase(e.phrase);
                let want = dq.intersect_len(dp) as f64 / dp.len() as f64;
                prop_assert!((e.prob - want).abs() < 1e-12);
                prop_assert!(e.prob > 0.0);
            }
        }
    }
}

// ---------- top-k algorithms ----------------------------------------------

/// Random score-ordered lists: distinct phrases per list, probs in (0, 1].
fn scored_lists_strategy() -> impl Strategy<Value = Vec<Vec<ListEntry>>> {
    prop::collection::vec(
        prop::collection::btree_map(0u32..60, 0.001f64..1.0, 0..40),
        1..4,
    )
    .prop_map(|maps| {
        maps.into_iter()
            .map(|m| {
                let mut list: Vec<ListEntry> = m
                    .into_iter()
                    .map(|(id, prob)| ListEntry {
                        phrase: PhraseId(id),
                        prob,
                    })
                    .collect();
                list.sort_by(|a, b| {
                    b.prob
                        .partial_cmp(&a.prob)
                        .unwrap()
                        .then(a.phrase.cmp(&b.phrase))
                });
                list
            })
            .collect()
    })
}

/// Brute-force oracle: aggregate all lists fully.
fn oracle_top_k(lists: &[Vec<ListEntry>], op: Operator, k: usize) -> Vec<(PhraseId, f64)> {
    use std::collections::BTreeMap;
    let mut probs: BTreeMap<PhraseId, Vec<f64>> = BTreeMap::new();
    for list in lists {
        for e in list {
            probs.entry(e.phrase).or_default().push(e.prob);
        }
    }
    let mut scored: Vec<(PhraseId, f64)> = probs
        .into_iter()
        .filter_map(|(p, ps)| match op {
            Operator::Or => Some((p, ps.iter().sum())),
            Operator::And => {
                if ps.len() == lists.len() {
                    Some((p, ps.iter().map(|x| x.ln()).sum()))
                } else {
                    None
                }
            }
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    scored.truncate(k);
    scored
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn nra_matches_oracle(lists in scored_lists_strategy(), k in 1usize..8, batch in 1usize..64, op_or in any::<bool>()) {
        let op = if op_or { Operator::Or } else { Operator::And };
        let cursors: Vec<MemoryCursor> = lists.iter().map(|l| MemoryCursor::new(l)).collect();
        let out = run_nra(cursors, op, &NraConfig {
                k,
                batch_size: batch,
                ..Default::default()
            });
        let want = oracle_top_k(&lists, op, k);
        // The returned top-k *set* must equal the oracle's (ties are
        // measure-zero under the float strategy). Reported scores may be
        // conservative when the stop condition fires before a member is
        // fully seen, but must bracket the true score.
        let got_ids: BTreeSet<PhraseId> = out.hits.iter().map(|h| h.phrase).collect();
        let want_ids: BTreeSet<PhraseId> = want.iter().map(|(p, _)| *p).collect();
        prop_assert_eq!(&got_ids, &want_ids, "got {:?} want {:?}", out.hits, want);
        for h in &out.hits {
            let true_score = want.iter().find(|(p, _)| *p == h.phrase).unwrap().1;
            prop_assert!(h.lower <= true_score + 1e-9, "lower {} > true {}", h.lower, true_score);
            prop_assert!(h.upper >= true_score - 1e-9, "upper {} < true {}", h.upper, true_score);
        }
        // When the lists were exhausted (no early stop), scores are exact.
        if !out.stats.stopped_early {
            for h in &out.hits {
                let true_score = want.iter().find(|(p, _)| *p == h.phrase).unwrap().1;
                prop_assert!((h.score - true_score).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn smj_matches_oracle(lists in scored_lists_strategy(), k in 1usize..8, op_or in any::<bool>()) {
        let op = if op_or { Operator::Or } else { Operator::And };
        let mut id_lists = lists.clone();
        for l in &mut id_lists {
            l.sort_by_key(|e| e.phrase);
        }
        let slices: Vec<&[ListEntry]> = id_lists.iter().map(Vec::as_slice).collect();
        let hits = run_smj_slices(&slices, op, k);
        let want = oracle_top_k(&lists, op, k);
        prop_assert_eq!(hits.len(), want.len());
        for (h, (wp, ws)) in hits.iter().zip(&want) {
            prop_assert_eq!(h.phrase, *wp);
            prop_assert!((h.score - ws).abs() < 1e-9);
        }
    }

    #[test]
    fn nra_early_stop_is_safe(lists in scored_lists_strategy(), batch in 1usize..8) {
        // Whatever batch size (and thus stop timing), the returned top-k
        // set must equal the oracle's.
        let k = 3;
        let cursors: Vec<MemoryCursor> = lists.iter().map(|l| MemoryCursor::new(l)).collect();
        let out = run_nra(cursors, Operator::Or, &NraConfig {
                k,
                batch_size: batch,
                ..Default::default()
            });
        let want = oracle_top_k(&lists, Operator::Or, k);
        let got_ids: BTreeSet<PhraseId> = out.hits.iter().map(|h| h.phrase).collect();
        let want_ids: BTreeSet<PhraseId> = want.iter().map(|(p, _)| *p).collect();
        prop_assert_eq!(got_ids, want_ids);
    }
}

// ---------- buffer pool ----------------------------------------------------

/// Reference LRU model mirroring the pool's documented semantics.
struct RefLru {
    cap: usize,
    lookahead: usize,
    order: Vec<u64>,
    last_fetched: Option<u64>,
    hits: u64,
    seq: u64,
    rand: u64,
}

impl RefLru {
    fn touch(&mut self, page: u64) -> bool {
        if let Some(pos) = self.order.iter().position(|&p| p == page) {
            let p = self.order.remove(pos);
            self.order.push(p);
            true
        } else {
            false
        }
    }

    fn fetch(&mut self, page: u64) {
        if self.last_fetched == Some(page.wrapping_sub(1)) {
            self.seq += 1;
        } else {
            self.rand += 1;
        }
        self.last_fetched = Some(page);
        if self.order.len() == self.cap {
            self.order.remove(0);
        }
        self.order.push(page);
    }

    fn access(&mut self, page: u64, file_pages: u64) {
        if self.touch(page) {
            self.hits += 1;
        } else {
            self.fetch(page);
            for la in 1..=self.lookahead as u64 {
                let next = page + la;
                if next >= file_pages {
                    break;
                }
                if self.touch(next) {
                    break;
                }
                self.fetch(next);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn buffer_pool_matches_reference_model(
        accesses in prop::collection::vec(0u64..64, 1..300),
        cap in 1usize..20,
        lookahead in 0usize..3,
    ) {
        let mut pool = ipm_storage::BufferPool::new(ipm_storage::PoolConfig {
            page_size: 64,
            capacity_pages: cap,
            lookahead_pages: lookahead,
        });
        let mut reference = RefLru {
            cap,
            lookahead,
            order: Vec::new(),
            last_fetched: None,
            hits: 0,
            seq: 0,
            rand: 0,
        };
        for &page in &accesses {
            pool.access(page, 64);
            reference.access(page, 64);
        }
        let s = pool.stats();
        prop_assert_eq!(s.cache_hits, reference.hits);
        prop_assert_eq!(s.sequential_fetches, reference.seq);
        prop_assert_eq!(s.random_fetches, reference.rand);
    }
}

// ---------- bit packing (paper §4.2.2 layout) ------------------------------

fn packed_entries_strategy() -> impl Strategy<Value = (u32, Vec<(u64, f64)>)> {
    // id width 1..=40 bits; ids constrained to the width; probs in [0, 1].
    (1u32..=40).prop_flat_map(|id_bits| {
        let max_id = if id_bits >= 63 {
            u64::MAX
        } else {
            (1u64 << id_bits) - 1
        };
        (
            Just(id_bits),
            prop::collection::vec((0..=max_id, 0.0f64..=1.0), 0..200),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bit_writer_reader_roundtrip((id_bits, entries) in packed_entries_strategy()) {
        use ipm_storage::bits::{read_bits, BitWriter};
        let mut w = BitWriter::new();
        for &(id, prob) in &entries {
            w.write(id, id_bits);
            w.write(prob.to_bits(), 64);
        }
        let expected_bits = entries.len() as u64 * (u64::from(id_bits) + 64);
        prop_assert_eq!(w.bit_len(), expected_bits);
        let bytes = w.into_bytes();
        prop_assert_eq!(bytes.len() as u64, expected_bits.div_ceil(8));
        let entry_bits = u64::from(id_bits) + 64;
        for (i, &(id, prob)) in entries.iter().enumerate() {
            let at = i as u64 * entry_bits;
            prop_assert_eq!(read_bits(&bytes, at, id_bits), id);
            let got = f64::from_bits(read_bits(&bytes, at + u64::from(id_bits), 64));
            prop_assert_eq!(got.to_bits(), prob.to_bits());
        }
    }

    #[test]
    fn or_truncation_alternates_around_union(
        probs in prop::collection::vec(0.0f64..=1.0, 1..7),
    ) {
        // Bonferroni: odd-order cuts of inclusion–exclusion over-estimate
        // the union probability, even-order cuts under-estimate it.
        use ipm_core::scoring::{or_score_inclusion_exclusion, or_score_truncated};
        let full = or_score_inclusion_exclusion(&probs);
        for cutoff in 1..=probs.len() {
            let t = or_score_truncated(&probs, cutoff);
            if cutoff == probs.len() {
                prop_assert!((t - full).abs() < 1e-9, "full cut must equal closed form");
            } else if cutoff % 2 == 1 {
                prop_assert!(t >= full - 1e-9, "odd cutoff {cutoff}: {t} < {full}");
            } else {
                prop_assert!(t <= full + 1e-9, "even cutoff {cutoff}: {t} > {full}");
            }
        }
    }
}

// ---------- redundancy filter (paper §5.6) ---------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn redundancy_filter_matches_bruteforce(
        phrase_words in prop::collection::vec(
            prop::collection::vec(0u32..12, 1..5), 1..30),
        query_words in prop::collection::vec(0u32..12, 1..4),
        threshold in 0.0f64..=1.2,
    ) {
        use ipm_core::redundancy::{filter_hits, RedundancyConfig};
        use ipm_core::result::PhraseHit;
        use ipm_corpus::{Feature, WordId};
        use ipm_index::phrase::PhraseDictionary;

        let mut dict = PhraseDictionary::new();
        let mut ids = Vec::new();
        for ws in &phrase_words {
            let words: Vec<WordId> = ws.iter().map(|&w| WordId(w)).collect();
            // insert dedupes identical word sequences; track actual id.
            ids.push(dict.insert(&words, 1));
        }
        let query = ipm_core::query::Query::new(
            query_words.iter().map(|&w| Feature::Word(WordId(w))).collect(),
            Operator::Or,
        ).unwrap();

        let mut hits: Vec<PhraseHit> = ids
            .iter()
            .enumerate()
            .map(|(i, &p)| PhraseHit::exact(p, 1.0 / (i + 1) as f64))
            .collect();
        let cfg = RedundancyConfig { max_overlap: threshold };
        filter_hits(&dict, &query, &mut hits, &cfg);

        // Brute force from the raw word vectors.
        let qset: BTreeSet<u32> = query_words.iter().copied().collect();
        for h in &hits {
            let words = dict.words(h.phrase).unwrap();
            let shared = words.iter().filter(|w| qset.contains(&w.0)).count();
            let overlap = shared as f64 / words.len() as f64;
            prop_assert!(overlap < threshold, "kept hit with overlap {overlap} >= {threshold}");
        }
        // And nothing non-redundant was dropped: count survivors.
        let expect = ids.iter().filter(|&&p| {
            let words = dict.words(p).unwrap();
            let shared = words.iter().filter(|w| qset.contains(&w.0)).count();
            (shared as f64 / words.len() as f64) < threshold
        }).count();
        // `ids` may contain duplicates (dict dedupe) — compare sets.
        let kept: BTreeSet<u32> = hits.iter().map(|h| h.phrase.0).collect();
        let want: BTreeSet<u32> = ids.iter().filter(|&&p| {
            let words = dict.words(p).unwrap();
            let shared = words.iter().filter(|w| qset.contains(&w.0)).count();
            (shared as f64 / words.len() as f64) < threshold
        }).map(|p| p.0).collect();
        prop_assert_eq!(&kept, &want);
        let _ = expect;
    }
}

// ---------- incremental delta index (paper §4.5.1) -------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn delta_adjusted_probs_match_merged_corpus_counts(
        base_docs in prop::collection::vec(
            prop::collection::vec(0u8..8, 2..8), 3..12),
        added_docs in prop::collection::vec(
            prop::collection::vec(0u8..8, 2..8), 0..6),
        delete_picks in prop::collection::vec(any::<prop::sample::Index>(), 0..4),
    ) {
        use ipm_core::delta::DeltaIndex;
        use ipm_corpus::{Feature, WordId};
        use ipm_index::corpus_index::{CorpusIndex, IndexConfig};
        use ipm_index::inverted::doc_phrases;
        use ipm_index::mining::MiningConfig;

        // Base corpus over a tiny shared vocabulary w0..w7.
        let mut b = CorpusBuilder::new(TokenizerConfig::default());
        for doc in &base_docs {
            let text: Vec<String> = doc.iter().map(|t| format!("w{t}")).collect();
            b.add_text(&text.join(" "));
        }
        let corpus = b.build();
        let index = CorpusIndex::build(&corpus, &IndexConfig {
            mining: MiningConfig { min_df: 1, max_len: 3, min_len: 1 },
        });

        // Apply churn through the side index.
        let mut delta = DeltaIndex::new();
        let mut added_tokenized: Vec<Vec<WordId>> = Vec::new();
        for doc in &added_docs {
            let tokens: Vec<WordId> = doc
                .iter()
                .filter_map(|t| corpus.word_id(&format!("w{t}")))
                .collect();
            if tokens.is_empty() {
                continue; // words unseen in the base vocab can't be interned
            }
            delta.add_document(&index, &tokens, &[]);
            added_tokenized.push(tokens);
        }
        let mut deleted = BTreeSet::new();
        for pick in &delete_picks {
            let d = DocId(pick.index(base_docs.len()) as u32);
            delta.delete_document(d);
            deleted.insert(d.0);
        }

        // Ground truth: naive counting over the merged document set.
        let merged: Vec<&[WordId]> = corpus
            .docs()
            .iter()
            .filter(|d| !deleted.contains(&d.id.0))
            .map(|d| d.tokens.as_slice())
            .chain(added_tokenized.iter().map(|t| t.as_slice()))
            .collect();

        for (pid, _, base_df) in index.dict.iter() {
            let mut df = 0usize;
            let mut joint = [0usize; 8];
            for tokens in &merged {
                if doc_phrases(tokens, &index.dict).contains(&pid) {
                    df += 1;
                    let mut ws: Vec<u32> = tokens.iter().map(|w| w.0).collect();
                    ws.sort_unstable();
                    ws.dedup();
                    for w in ws {
                        if (w as usize) < joint.len() {
                            joint[w as usize] += 1;
                        }
                    }
                }
            }
            // Base-corpus joint counts give the stale probability.
            for w in 0u32..8 {
                let Some(wid) = corpus.word_id(&format!("w{w}")) else { continue };
                prop_assert!(wid.0 < 8, "tiny vocab stays dense");
                let mut base_joint = 0usize;
                let mut base_count = 0usize;
                for d in corpus.docs() {
                    if doc_phrases(&d.tokens, &index.dict).contains(&pid) {
                        base_count += 1;
                        if d.tokens.contains(&wid) {
                            base_joint += 1;
                        }
                    }
                }
                prop_assert_eq!(base_count as u32, base_df, "dict df equals naive df");
                let stale = base_joint as f64 / base_count as f64;
                let got = delta.adjust_prob(&index, Feature::Word(wid), pid, stale);
                let want = if df == 0 {
                    0.0
                } else {
                    joint[wid.0 as usize] as f64 / df as f64
                };
                prop_assert!(
                    (got - want).abs() < 1e-9,
                    "phrase {pid:?} word w{w}: got {got}, want {want} (df {df})"
                );
                // The corrected df must also match the merged count.
                prop_assert!(
                    (delta.adjusted_df(&index, pid) - df as f64).abs() < 1e-9
                );
            }
        }
    }
}
