//! Offline shim for `serde_json`: a JSON `Value` tree built by hand plus a
//! standards-correct pretty printer. There is no generic
//! `Serialize`-driven path — callers construct `Value`s directly. See
//! `shims/README.md`.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with deterministic (sorted) key order.
    Object(BTreeMap<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Number(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Number(n as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(map) => map.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

/// Serialization error (the shim's printer is infallible in practice; the
/// type exists for signature compatibility).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: f64) {
    if n.is_finite() {
        if n.fract() == 0.0 && n.abs() < 9e15 {
            out.push_str(&format!("{}", n as i64));
        } else {
            out.push_str(&format!("{n}"));
        }
    } else {
        // JSON has no Inf/NaN; serde_json emits null.
        out.push_str("null");
    }
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    const STEP: usize = 2;
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&" ".repeat(indent + STEP));
                write_pretty(out, item, indent + STEP);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&" ".repeat(indent));
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                out.push_str(&" ".repeat(indent + STEP));
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(out, val, indent + STEP);
                if i + 1 < map.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
    }
}

/// Pretty-prints a [`Value`] with 2-space indentation.
///
/// # Errors
/// Never fails; the `Result` mirrors the real crate's signature.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, value, 0);
    Ok(out)
}

/// Compact form.
///
/// # Errors
/// Never fails; the `Result` mirrors the real crate's signature.
pub fn to_string(value: &Value) -> Result<String, Error> {
    // Reuse the pretty printer then strip is wrong (strings may hold
    // newlines); walk again compactly instead.
    fn write_compact(out: &mut String, v: &Value) {
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write_number(out, *n),
            Value::String(s) => escape_into(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_compact(out, item);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, val)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, k);
                    out.push(':');
                    write_compact(out, val);
                }
                out.push('}');
            }
        }
    }
    let mut out = String::new();
    write_compact(&mut out, value);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Value {
        let mut obj = BTreeMap::new();
        obj.insert("title".to_owned(), Value::from("T \"quoted\""));
        obj.insert(
            "rows".to_owned(),
            Value::Array(vec![Value::from(vec!["a", "b"])]),
        );
        obj.insert("n".to_owned(), Value::from(3usize));
        Value::Object(obj)
    }

    #[test]
    fn index_and_compare() {
        let v = sample();
        assert_eq!(v["title"], "T \"quoted\"");
        assert_eq!(v["rows"][0][1], "b");
        assert_eq!(v["missing"], Value::Null);
        assert_eq!(v["n"], 3.0);
    }

    #[test]
    fn pretty_output_is_valid_and_escaped() {
        let text = to_string_pretty(&sample()).unwrap();
        assert!(text.contains("\"title\": \"T \\\"quoted\\\"\""));
        assert!(text.starts_with("{\n"));
        assert!(text.ends_with('}'));
    }

    #[test]
    fn compact_output() {
        let text = to_string(&Value::from(vec!["x"])).unwrap();
        assert_eq!(text, "[\"x\"]");
        assert_eq!(to_string(&Value::Number(2.0)).unwrap(), "2");
        assert_eq!(to_string(&Value::Number(2.5)).unwrap(), "2.5");
        assert_eq!(to_string(&Value::Number(f64::NAN)).unwrap(), "null");
    }
}
