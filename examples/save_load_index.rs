//! Persisting the index: build once offline, serve from files.
//!
//! Serializes the paper-layout index files (12-byte scored entries, 50-byte
//! phrase slots) with checksummed containers, reloads them, and answers a
//! query through the reloaded, disk-simulated index.
//!
//! ```text
//! cargo run --release --example save_load_index
//! ```

use interesting_phrases::prelude::*;
use ipm_storage::persist;
use ipm_storage::{BufferPool, PhraseListFile, WordListFile};

fn main() {
    let (corpus, _) = ipm_corpus::synth::generate(&ipm_corpus::synth::tiny());
    let miner = PhraseMiner::build(&corpus, MinerConfig::default());

    // --- offline: build + save -------------------------------------------
    let dir = std::env::temp_dir().join("ipm_example_index");
    std::fs::create_dir_all(&dir).expect("create index dir");
    let wl_path = dir.join("wordlists.ipw");
    let pl_path = dir.join("phrases.ipp");

    let word_file = WordListFile::build(miner.lists());
    let phrase_file = PhraseListFile::build(miner.corpus(), &miner.index().dict);
    persist::save_word_lists(&word_file, &wl_path).expect("save word lists");
    persist::save_phrase_list(&phrase_file, &pl_path).expect("save phrase list");
    println!(
        "saved: {} ({} B) + {} ({} B)",
        wl_path.display(),
        word_file.len_bytes(),
        pl_path.display(),
        phrase_file.len_bytes()
    );

    // --- serving process: load + query ------------------------------------
    let words = persist::load_word_lists(&wl_path).expect("load word lists");
    let phrases = persist::load_phrase_list(&pl_path).expect("load phrase list");
    println!(
        "loaded: {} entries / {} phrases (checksums verified)",
        words.total_entries(),
        phrases.num_phrases()
    );

    // Read a query's lists straight from the loaded image through a buffer
    // pool, exactly as the disk-resident NRA does.
    let query = miner.parse_query_str("w1 OR w2").expect("query");
    let mut pool = BufferPool::default();
    for feat in &query.features {
        let n = words.list_len(*feat).min(3);
        println!("\ntop {n} entries of {feat:?}'s reloaded list:");
        for i in 0..n {
            let e = words.read_entry(*feat, i, &mut pool).expect("entry");
            let text = phrases.read(e.phrase, &mut pool).unwrap_or_default();
            println!("  {text:<30} P(q|p) = {:.3}", e.prob);
        }
    }
    println!(
        "\nsimulated IO for those reads: {:.1} ms",
        pool.stats().io_ms(&ipm_storage::CostModel::default())
    );

    // Rehydrate the image into in-memory lists and answer with the fast
    // in-memory NRA path (cold-start lifecycle: build offline → load →
    // serve from memory).
    let rehydrated = words.to_lists();
    let cursors: Vec<_> = query
        .features
        .iter()
        .map(|&f| ipm_index::cursor::MemoryCursor::new(rehydrated.list(f)))
        .collect();
    let out = ipm_core::nra::run_nra(
        cursors,
        query.op,
        &ipm_core::nra::NraConfig {
            k: 3,
            ..Default::default()
        },
    );
    println!("\nin-memory NRA over the rehydrated index:");
    for h in &out.hits {
        let mut pool2 = BufferPool::default();
        let text = phrases.read(h.phrase, &mut pool2).unwrap_or_default();
        println!("  {text:<30} score {:.3}", h.score);
    }

    // The §4.2.2 bit-packed layout persists too (⌈log₂|P|⌉+64 bits/entry):
    let packed = miner.to_packed(1.0);
    let pk_path = dir.join("wordlists.ipk");
    persist::save_packed_lists(packed.file(), &pk_path).expect("save packed");
    println!(
        "\npacked image: {} B vs {} B unpacked ({:.1}% saved, {} bits/entry)",
        packed.file().len_bytes(),
        packed.file().unpacked_bytes(),
        100.0 * (1.0 - packed.file().len_bytes() as f64 / packed.file().unpacked_bytes() as f64),
        packed.file().entry_bits(),
    );

    // Corruption is detected, not silently served:
    let mut bytes = std::fs::read(&wl_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&wl_path, &bytes).unwrap();
    match persist::load_word_lists(&wl_path) {
        Err(e) => println!("\ncorrupted file correctly rejected: {e}"),
        Ok(_) => println!("\nBUG: corruption not detected"),
    }
    let _ = std::fs::remove_dir_all(dir);
}
