//! Regenerates Figure 11: fraction of lists traversed by NRA before its
//! stopping condition fires, on both datasets.

use ipm_bench::{emit, K};
use ipm_eval::experiments::{datasets, traversal};

fn main() {
    let reuters = datasets::build_reuters();
    emit(&traversal::run(&reuters, K));
    drop(reuters);
    let pubmed = datasets::build_pubmed();
    emit(&traversal::run(&pubmed, K));
}
