//! Phrase-id-range sharding of the word-specific lists.
//!
//! Every word list maps `phrase_id -> P(q|p)` and the paper's scores
//! factorize per phrase (Eq. 8/12): a phrase's score depends only on its
//! own list entries. Partitioning *every* list by the same disjoint
//! phrase-id ranges therefore yields shards that are complete, independent
//! sub-indexes over disjoint phrase populations — the local top-k of the
//! shards merge into the **exact** global top-k under the result total
//! order (score desc, ties by ascending phrase id).
//!
//! [`ShardedWordLists`] materializes that partition for both list orders:
//!
//! * each shard's **score-ordered** lists are the range-filtered originals
//!   (filtering a sorted sequence preserves its order);
//! * each shard's **id-ordered** lists are contiguous sub-runs of the
//!   originals (phrase-id order means a range is one slice per list).
//!
//! Sharding composes with [`WordPhraseLists::partial`] in either
//! direction, but the two orders differ: `partial(f)` keeps
//! `ceil(len · f)` entries *per list*, so truncating before sharding cuts
//! each global list's tail, while truncating after sharding cuts each
//! shard list's tail. Only the former matches the paper's §4.3 run-time
//! partial-list semantics; the engine's shard-aware disk images truncate
//! per shard and accordingly run NRA with partial-list bounds.

use crate::backend::MemoryBackend;
use crate::wordlists::{IdOrderedLists, ListEntry, WordPhraseLists};
use ipm_corpus::PhraseId;

/// One phrase-id partition of the word lists, in both orders.
#[derive(Debug, Clone)]
pub struct ListShard {
    /// Half-open owned range `[lo, hi)` of phrase ids.
    range: (PhraseId, PhraseId),
    /// Score-ordered lists restricted to the range.
    lists: WordPhraseLists,
    /// Id-ordered lists restricted to the range.
    id_lists: IdOrderedLists,
}

impl ListShard {
    /// The half-open phrase-id range this shard owns.
    pub fn range(&self) -> (PhraseId, PhraseId) {
        self.range
    }

    /// Whether this shard owns `phrase`.
    pub fn owns(&self, phrase: PhraseId) -> bool {
        self.range.0 <= phrase && phrase < self.range.1
    }

    /// The shard's score-ordered lists.
    pub fn lists(&self) -> &WordPhraseLists {
        &self.lists
    }

    /// The shard's id-ordered lists.
    pub fn id_lists(&self) -> &IdOrderedLists {
        &self.id_lists
    }

    /// An in-memory [`MemoryBackend`] view over this shard, usable by
    /// every retrieval algorithm.
    pub fn backend(&self) -> MemoryBackend<'_> {
        MemoryBackend::with_range(&self.lists, &self.id_lists, self.range)
    }
}

/// The word lists split into `n` disjoint phrase-id-range partitions.
#[derive(Debug, Clone)]
pub struct ShardedWordLists {
    shards: Vec<ListShard>,
}

impl ShardedWordLists {
    /// Splits `lists` (score order) and `id_lists` (id order) into `n`
    /// contiguous phrase-id-range shards. `num_phrases` is the size of the
    /// phrase dictionary; ids are partitioned into `n` equal-width ranges
    /// covering the full id space (the last shard absorbs the remainder).
    ///
    /// The two inputs need not hold the same entry multiset — the miner's
    /// id-ordered lists may carry a build-time SMJ fraction (paper §4.4.2)
    /// — so each order is range-filtered independently and the shards
    /// mirror whatever the unsharded backend would serve.
    pub fn build(
        lists: &WordPhraseLists,
        id_lists: &IdOrderedLists,
        num_phrases: usize,
        n: usize,
    ) -> Self {
        let n = n.max(1);
        let width = (num_phrases.div_ceil(n)).max(1) as u64;
        let bounds: Vec<(u32, u32)> = (0..n)
            .map(|i| {
                let lo = (i as u64 * width).min(u32::MAX as u64) as u32;
                let hi = if i + 1 == n {
                    u32::MAX
                } else {
                    ((i as u64 + 1) * width).min(u32::MAX as u64) as u32
                };
                (lo, hi)
            })
            .collect();

        // Distribute every feature's entries into per-shard buckets in one
        // pass per order; bucket order preserves the source order.
        let mut score_buckets: Vec<Vec<(ipm_corpus::Feature, Vec<ListEntry>)>> = (0..n)
            .map(|_| Vec::with_capacity(lists.num_features()))
            .collect();
        for (slot, &feat) in lists.features().iter().enumerate() {
            let full = lists.list_by_slot(slot as u32);
            let mut parts: Vec<Vec<ListEntry>> = vec![Vec::new(); n];
            for e in full {
                parts[shard_of(e.phrase.raw(), width, n)].push(*e);
            }
            for (s, part) in parts.into_iter().enumerate() {
                score_buckets[s].push((feat, part));
            }
        }
        let mut id_buckets: Vec<Vec<(ipm_corpus::Feature, Vec<ListEntry>)>> = (0..n)
            .map(|_| Vec::with_capacity(id_lists.num_features()))
            .collect();
        for &feat in id_lists.features() {
            let full = id_lists.list(feat);
            // Id order makes every shard a contiguous slice of the list.
            let mut start = 0usize;
            for (s, &(_, hi)) in bounds.iter().enumerate() {
                let end = if s + 1 == n {
                    full.len()
                } else {
                    start + full[start..].partition_point(|e| e.phrase.raw() < hi)
                };
                id_buckets[s].push((feat, full[start..end].to_vec()));
                start = end;
            }
        }

        let shards = bounds
            .into_iter()
            .zip(score_buckets.into_iter().zip(id_buckets))
            .map(|((lo, hi), (score, id))| ListShard {
                range: (PhraseId(lo), PhraseId(hi)),
                lists: WordPhraseLists::from_feature_lists(score),
                id_lists: IdOrderedLists::from_feature_lists(id),
            })
            .collect();
        Self { shards }
    }

    /// The shards, in ascending range order.
    pub fn shards(&self) -> &[ListShard] {
        &self.shards
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `phrase` (every id maps to exactly one shard).
    pub fn owner(&self, phrase: PhraseId) -> &ListShard {
        self.shards
            .iter()
            .find(|s| s.owns(phrase))
            .expect("ranges cover the full phrase-id space")
    }

    /// Total entries across all shards' score-ordered lists (equals the
    /// source's — sharding only redistributes).
    pub fn total_entries(&self) -> usize {
        self.shards.iter().map(|s| s.lists.total_entries()).sum()
    }

    /// Applies [`WordPhraseLists::partial`] to every shard's score-ordered
    /// lists (per-shard truncation; id-ordered lists are left untouched,
    /// mirroring how a build-time fraction freezes only the score image —
    /// see the module docs for how this differs from truncating before
    /// sharding).
    pub fn partial(&self, fraction: f64) -> ShardedWordLists {
        ShardedWordLists {
            shards: self
                .shards
                .iter()
                .map(|s| ListShard {
                    range: s.range,
                    lists: s.lists.partial(fraction),
                    id_lists: s.id_lists.clone(),
                })
                .collect(),
        }
    }
}

/// Index of the shard owning phrase id `raw` under `n` ranges of `width`.
fn shard_of(raw: u32, width: u64, n: usize) -> usize {
    ((raw as u64 / width) as usize).min(n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ListBackend;
    use crate::corpus_index::{CorpusIndex, IndexConfig};
    use crate::cursor::ScoredListCursor;
    use crate::mining::MiningConfig;
    use crate::wordlists::WordListConfig;

    fn setup() -> (usize, WordPhraseLists, IdOrderedLists) {
        let (c, _) = ipm_corpus::synth::generate(&ipm_corpus::synth::tiny());
        let index = CorpusIndex::build(
            &c,
            &IndexConfig {
                mining: MiningConfig {
                    min_df: 3,
                    max_len: 4,
                    min_len: 1,
                },
            },
        );
        let lists = WordPhraseLists::build(&c, &index, &WordListConfig::default());
        let id_lists = IdOrderedLists::from_score_ordered(&lists);
        (index.dict.len(), lists, id_lists)
    }

    #[test]
    fn shards_partition_every_list_without_loss() {
        let (np, lists, idl) = setup();
        for n in [1, 2, 3, 8] {
            let sharded = ShardedWordLists::build(&lists, &idl, np, n);
            assert_eq!(sharded.num_shards(), n);
            assert_eq!(sharded.total_entries(), lists.total_entries());
            for feat in lists.features() {
                // Concatenating the per-shard id-ordered lists in range
                // order reproduces the original id-ordered list exactly.
                let mut rebuilt: Vec<ListEntry> = Vec::new();
                for s in sharded.shards() {
                    rebuilt.extend_from_slice(s.id_lists().list(*feat));
                }
                let want = idl.list(*feat);
                assert_eq!(rebuilt.len(), want.len());
                for (a, b) in rebuilt.iter().zip(want) {
                    assert_eq!(a.phrase, b.phrase);
                    assert_eq!(a.prob.to_bits(), b.prob.to_bits());
                }
                // Score order survives filtering in every shard.
                for s in sharded.shards() {
                    let sl = s.lists().list(*feat);
                    for w in sl.windows(2) {
                        assert!(
                            w[0].prob > w[1].prob
                                || (w[0].prob == w[1].prob && w[0].phrase < w[1].phrase)
                        );
                    }
                    for e in sl {
                        assert!(s.owns(e.phrase));
                    }
                }
            }
        }
    }

    #[test]
    fn ranges_are_disjoint_and_cover_the_id_space() {
        let (np, lists, idl) = setup();
        let sharded = ShardedWordLists::build(&lists, &idl, np, 5);
        let shards = sharded.shards();
        assert_eq!(shards[0].range().0, PhraseId(0));
        assert_eq!(shards[shards.len() - 1].range().1, PhraseId(u32::MAX));
        for w in shards.windows(2) {
            assert_eq!(w[0].range().1, w[1].range().0, "ranges must abut");
        }
        // Every phrase id maps to exactly one owner.
        for raw in [0u32, 1, np as u32 / 2, np as u32 - 1] {
            let owners = shards.iter().filter(|s| s.owns(PhraseId(raw))).count();
            assert_eq!(owners, 1, "phrase {raw} must have exactly one owner");
        }
    }

    #[test]
    fn shard_backends_probe_only_their_range() {
        let (np, lists, idl) = setup();
        let sharded = ShardedWordLists::build(&lists, &idl, np, 3);
        for feat in lists.features().iter().take(30) {
            for e in lists.list(*feat).iter().take(10) {
                let owner = sharded.owner(e.phrase);
                assert_eq!(owner.backend().probe(*feat, e.phrase), e.prob);
                for s in sharded.shards() {
                    if !s.owns(e.phrase) {
                        assert_eq!(s.backend().probe(*feat, e.phrase), 0.0);
                    }
                    assert_eq!(s.backend().phrase_range(), Some(s.range()));
                    assert_eq!(s.backend().owns_phrase(e.phrase), s.owns(e.phrase));
                }
            }
        }
    }

    #[test]
    fn more_shards_than_phrases_yields_empty_tails() {
        // A dictionary of two phrases split eight ways: ids 0 and 1 land
        // in the first two shards, the remaining six shards are empty but
        // still valid backends.
        let entries = vec![
            ListEntry {
                phrase: PhraseId(0),
                prob: 0.9,
            },
            ListEntry {
                phrase: PhraseId(1),
                prob: 0.5,
            },
        ];
        let feat = ipm_corpus::Feature::Word(ipm_corpus::WordId(0));
        let lists = WordPhraseLists::from_feature_lists(vec![(feat, entries.clone())]);
        let idl = IdOrderedLists::from_feature_lists(vec![(feat, entries)]);
        let sharded = ShardedWordLists::build(&lists, &idl, 2, 8);
        assert_eq!(sharded.num_shards(), 8);
        assert_eq!(sharded.total_entries(), lists.total_entries());
        assert_eq!(sharded.shards()[0].lists().total_entries(), 1);
        assert_eq!(sharded.shards()[1].lists().total_entries(), 1);
        for s in &sharded.shards()[2..] {
            assert_eq!(s.lists().total_entries(), 0);
            assert!(s.backend().score_cursor(feat, 1.0).is_empty());
        }
    }

    #[test]
    fn sharding_composes_with_partial() {
        let (np, lists, idl) = setup();
        // partial-then-shard: shard the truncated lists.
        let cut = lists.partial(0.5);
        let cut_idl = IdOrderedLists::from_score_ordered(&cut);
        let a = ShardedWordLists::build(&cut, &cut_idl, np, 3);
        assert_eq!(a.total_entries(), cut.total_entries());
        // shard-then-partial: truncate each shard's score lists.
        let b = ShardedWordLists::build(&lists, &idl, np, 3).partial(0.5);
        // Same global ceil-per-list rule applied at different granularity:
        // both keep at least one entry per non-empty list, and neither
        // exceeds the source.
        assert!(b.total_entries() <= lists.total_entries());
        assert!(b.total_entries() >= a.shards().len());
    }
}
