//! Lifecycle equivalence (acceptance criteria of the live-index PR):
//!
//! (a) delta-corrected **SMJ** (and TA, and the exact scorer) over the
//!     *stale* index equals the same algorithm over an index rebuilt from
//!     scratch on the updated corpus — the paper's §4.5.1 exactness —
//!     across both backends and shard fanouts {1, 4};
//! (b) after `compact()`, all four algorithms equal the from-scratch
//!     rebuild and report `Exact`;
//! (c) concurrent queries racing `compact()` never error and always
//!     return results consistent with either the pre- or post-swap epoch.
//!
//! Update batches duplicate existing documents (plus arbitrary deletes):
//! duplication never creates a feature/phrase pair the stale lists lack,
//! which is exactly the regime where the paper's correction argument is
//! complete (genuinely new pairs and phrases are deferred to the rebuild
//! — covered by (b)). `min_df = 1` keeps every base phrase in the stale
//! dictionary so the rebuilt dictionary is never larger than it.

use interesting_phrases::prelude::*;
use ipm_core::DeltaIndex;
use proptest::prelude::*;

fn lifecycle_config() -> MinerConfig {
    MinerConfig {
        index: ipm_index::corpus_index::IndexConfig {
            mining: ipm_index::mining::MiningConfig {
                min_df: 1,
                max_len: 3,
                min_len: 1,
            },
        },
        ..Default::default()
    }
}

fn corpus_from(docs: &[Vec<u8>]) -> Corpus {
    let mut b = CorpusBuilder::new(TokenizerConfig::default());
    for d in docs {
        let text: Vec<String> = d.iter().map(|t| format!("t{t}")).collect();
        b.add_text(&text.join(" "));
    }
    b.build()
}

/// `(text, score-bits-within-1e-12)` comparison key for one response,
/// sorted by text — phrase ids differ between a stale index and a
/// rebuild, so identity goes through the rendered phrase.
fn keyed(hits: &[SearchHit]) -> Vec<(String, f64)> {
    let mut v: Vec<(String, f64)> = hits.iter().map(|h| (h.text.clone(), h.hit.score)).collect();
    v.sort_by(|a, b| a.0.cmp(&b.0));
    v
}

fn assert_keyed_eq(got: &[(String, f64)], want: &[(String, f64)], what: &str) {
    assert_eq!(
        got.len(),
        want.len(),
        "{what}: candidate sets differ\n got: {got:?}\nwant: {want:?}"
    );
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.0, w.0, "{what}: phrase drift");
        assert!(
            (g.1 - w.1).abs() < 1e-12,
            "{what}: score drift for '{}': {} vs {}",
            g.0,
            g.1,
            w.1
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn delta_equals_rebuild_and_compaction_restores_exactness(
        docs in prop::collection::vec(prop::collection::vec(0u8..8, 2..12), 6..14),
        adds in prop::collection::vec(0usize..64, 0..6),
        dels in prop::collection::vec(0usize..64, 0..4),
    ) {
        let corpus = corpus_from(&docs);
        let top = ipm_corpus::stats::top_words_by_df(&corpus, 2);
        if top.len() < 2 {
            return Ok(()); // degenerate single-word corpus
        }
        let engine = QueryEngine::with_config(
            PhraseMiner::build(&corpus, lifecycle_config()),
            ipm_core::EngineConfig { cache: None, ..Default::default() },
        );

        // Apply the update batch through the engine's ingestion API:
        // adds duplicate existing documents, deletes are idempotent.
        let n = docs.len();
        let mut expected: Vec<(Vec<WordId>, Vec<ipm_corpus::FacetId>)> = Vec::new();
        let mut deleted = vec![false; n];
        for &d in &dels {
            deleted[d % n] = true;
        }
        for (i, d) in corpus.docs().iter().enumerate() {
            if !deleted[i] {
                expected.push((d.tokens.clone(), d.facets.clone()));
            }
        }
        for &a in &adds {
            let src = corpus.doc(DocId((a % n) as u32)).unwrap();
            engine.ingest_document(&src.tokens, &src.facets);
            expected.push((src.tokens.clone(), src.facets.clone()));
        }
        for &d in &dels {
            engine.delete_document(DocId((d % n) as u32));
        }

        // Ground truth: a from-scratch rebuild over the updated corpus
        // (shared vocabulary, same construction order as compaction).
        let rebuilt_corpus = corpus.with_docs(expected);
        let reference = QueryEngine::with_config(
            PhraseMiner::build(&rebuilt_corpus, lifecycle_config()),
            ipm_core::EngineConfig { cache: None, ..Default::default() },
        );

        let words: Vec<&str> = top
            .iter()
            .map(|&(w, _)| corpus.words().term(w).unwrap())
            .collect();
        let k = 10_000; // cover every candidate: no tie-break sensitivity
        for op in ["AND", "OR"] {
            let input = format!("{} {op} {}", words[0], words[1]);

            // (a) corrected SMJ/TA/exact over the stale index equal the
            // rebuild, across backends and fanouts.
            for alg in [Algorithm::Smj, Algorithm::Ta, Algorithm::Exact] {
                let want = keyed(
                    &reference
                        .request(input.clone())
                        .k(k)
                        .algorithm(alg)
                        .run()
                        .unwrap()
                        .hits,
                );
                for backend in [
                    BackendChoice::Memory,
                    BackendChoice::Disk,
                    BackendChoice::Block,
                ] {
                    for shards in [1usize, 4] {
                        let resp = engine
                            .request(input.clone())
                            .k(k)
                            .algorithm(alg)
                            .backend(backend)
                            .shards(shards)
                            .use_delta(true)
                            .run()
                            .unwrap();
                        prop_assert!(
                            resp.completeness.is_exact(),
                            "{alg:?}: corrections must keep the label exact, got {:?}",
                            resp.completeness
                        );
                        assert_keyed_eq(
                            &keyed(&resp.hits),
                            &want,
                            &format!("(a) {alg:?}/{backend:?}/{op} @ {shards} shards"),
                        );
                    }
                }
            }
        }

        // (b) compaction flushes the delta into a full rebuild: all four
        // algorithms equal the reference and report Exact.
        let report = engine.compact();
        let delta_was_active = report.compacted;
        if delta_was_active {
            prop_assert_eq!(engine.lifecycle_stats().delta_docs, 0);
        }
        for op in ["AND", "OR"] {
            let input = format!("{} {op} {}", words[0], words[1]);
            for alg in [Algorithm::Nra, Algorithm::Smj, Algorithm::Ta, Algorithm::Exact] {
                let want = keyed(
                    &reference
                        .request(input.clone())
                        .k(k)
                        .algorithm(alg)
                        .run()
                        .unwrap()
                        .hits,
                );
                for backend in [
                    BackendChoice::Memory,
                    BackendChoice::Disk,
                    BackendChoice::Block,
                ] {
                    for shards in [1usize, 4] {
                        let resp = engine
                            .request(input.clone())
                            .k(k)
                            .algorithm(alg)
                            .backend(backend)
                            .shards(shards)
                            .use_delta(true) // post-compaction no-op
                            .run()
                            .unwrap();
                        prop_assert!(
                            resp.completeness.is_exact(),
                            "(b) {alg:?}: post-compaction runs must be exact, got {:?}",
                            resp.completeness
                        );
                        assert_keyed_eq(
                            &keyed(&resp.hits),
                            &want,
                            &format!("(b) {alg:?}/{backend:?}/{op} @ {shards} shards"),
                        );
                    }
                }
            }
        }
    }
}

/// (c) Queries racing `compact()` never error and every response is
/// consistent with either the pre-swap (delta-corrected) or post-swap
/// (rebuilt) epoch — the atomic-swap guarantee.
#[test]
fn queries_racing_compaction_see_one_epoch_or_the_other() {
    let docs: Vec<Vec<u8>> = vec![
        vec![0, 1, 2],
        vec![0, 1],
        vec![1, 2],
        vec![0, 2],
        vec![0, 1, 2, 3],
        vec![3, 1],
    ];
    let corpus = corpus_from(&docs);
    let engine = QueryEngine::with_config(
        PhraseMiner::build(&corpus, lifecycle_config()),
        ipm_core::EngineConfig::default(),
    );
    // Skew the scores: many duplicates of doc 0.
    let src = corpus.doc(DocId(0)).unwrap();
    let batch: Vec<(Vec<WordId>, Vec<ipm_corpus::FacetId>)> = (0..8)
        .map(|_| (src.tokens.clone(), src.facets.clone()))
        .collect();
    engine.ingest_documents(&batch);

    let input = "t0 OR t1".to_owned();
    let k = 10_000;
    let run = |e: &QueryEngine| {
        keyed(
            &e.request(input.clone())
                .k(k)
                .algorithm(Algorithm::Smj)
                .use_delta(true)
                .run()
                .unwrap()
                .hits,
        )
    };
    let pre = run(&engine);
    // The post state equals a from-scratch rebuild on base + batch.
    let post = {
        let mut all: Vec<(Vec<WordId>, Vec<ipm_corpus::FacetId>)> = corpus
            .docs()
            .iter()
            .map(|d| (d.tokens.clone(), d.facets.clone()))
            .collect();
        all.extend(batch.iter().cloned());
        let reference = QueryEngine::new(PhraseMiner::build(
            &corpus.with_docs(all),
            lifecycle_config(),
        ));
        run(&reference)
    };
    // Corrected-stale and rebuilt agree on values (paper §4.5.1), so the
    // race check below would be vacuous only if the delta changed
    // nothing; make sure it did change something vs the un-corrected run.
    let uncorrected = keyed(
        &engine
            .request(input.clone())
            .k(k)
            .algorithm(Algorithm::Smj)
            .run()
            .unwrap()
            .hits,
    );
    assert_ne!(pre, uncorrected, "delta must actually move scores");

    let barrier = std::sync::Barrier::new(5);
    std::thread::scope(|s| {
        for _ in 0..4 {
            let engine = engine.clone();
            let pre = pre.clone();
            let post = post.clone();
            let barrier = &barrier;
            let input = input.clone();
            s.spawn(move || {
                barrier.wait();
                for _ in 0..60 {
                    let resp = engine
                        .request(input.clone())
                        .k(k)
                        .algorithm(Algorithm::Smj)
                        .use_delta(true)
                        .run()
                        .expect("racing query must never error");
                    let got = keyed(&resp.hits);
                    assert!(
                        got == pre || got == post,
                        "response from neither epoch:\n got {got:?}\n pre {pre:?}\npost {post:?}"
                    );
                }
            });
        }
        barrier.wait();
        let report = engine.compact();
        assert!(report.compacted);
        assert_eq!(report.absorbed_adds, 8);
    });
    // After the race settles the engine answers from the rebuilt epoch.
    assert_eq!(run(&engine), post);
    assert!(engine.epoch() > 0);
}

/// Epoch bumps are conditional on actual state changes: no-op delta
/// operations leave the epoch — and therefore every cached result —
/// untouched (the satellite fix for unconditional cache clears).
#[test]
fn noop_delta_operations_keep_cache_warm() {
    let docs: Vec<Vec<u8>> = vec![vec![0, 1], vec![0, 1, 2], vec![1, 2], vec![0, 2]];
    let corpus = corpus_from(&docs);
    let engine = QueryEngine::new(PhraseMiner::build(&corpus, lifecycle_config()));
    let epoch0 = engine.epoch();

    assert!(!engine.search("t0 OR t1", 5).unwrap().served_from_cache);
    assert!(engine.search("t0 OR t1", 5).unwrap().served_from_cache);

    // Detaching with nothing attached: no-op.
    engine.detach_delta();
    // An update whose closure changes nothing: no-op.
    engine.update_delta(|_| {});
    // Attaching an empty delta over an empty one: no-op.
    engine.attach_delta(DeltaIndex::new());
    // Detaching the (still empty) delta: no-op.
    engine.detach_delta();
    // Deleting an out-of-range document: no-op.
    assert!(!engine.delete_document(DocId(u32::MAX)));
    assert_eq!(engine.epoch(), epoch0, "no-ops must not bump the epoch");
    assert!(
        engine.search("t0 OR t1", 5).unwrap().served_from_cache,
        "no-op lifecycle calls must keep cached results warm"
    );

    // A real mutation bumps the epoch exactly once and the old entry
    // stops matching.
    assert!(engine.delete_document(DocId(0)));
    assert_eq!(engine.epoch(), epoch0 + 1);
    assert!(!engine.search("t0 OR t1", 5).unwrap().served_from_cache);
    // Deleting the same document again: back to no-op.
    assert!(!engine.delete_document(DocId(0)));
    assert_eq!(engine.epoch(), epoch0 + 1);
    // A no-op compaction (delta holds only a delete? no — deletes count)
    // ... an *empty-delta* compaction is a no-op: detach first.
    engine.detach_delta();
    let epoch_now = engine.epoch();
    let report = engine.compact();
    assert!(!report.compacted, "empty delta: compaction is a no-op");
    assert_eq!(engine.epoch(), epoch_now);
    assert_eq!(report.elapsed, std::time::Duration::ZERO);
}

/// Regression: an `update_delta` closure that *replaces* the delta with
/// a different one of identical counts must still bump the epoch — the
/// fingerprint is per-state, not per-count, so equal `(adds, deletes)`
/// sizes cannot alias two different corrections.
#[test]
fn wholesale_delta_replacement_bumps_the_epoch() {
    let docs: Vec<Vec<u8>> = vec![vec![0, 1], vec![0, 1, 2], vec![1, 2], vec![0, 2]];
    let corpus = corpus_from(&docs);
    let engine = QueryEngine::new(PhraseMiner::build(&corpus, lifecycle_config()));
    let miner = engine.miner();
    let w0 = corpus.word_id("t0").unwrap();
    let w2 = corpus.word_id("t2").unwrap();
    engine.update_delta(|d| d.add_document(miner.index(), &[w0], &[]));
    let epoch_after_add = engine.epoch();

    // Warm the delta-corrected cache entry.
    assert!(
        !engine
            .request("t0 OR t1")
            .k(5)
            .use_delta(true)
            .run()
            .unwrap()
            .served_from_cache
    );
    assert!(
        engine
            .request("t0 OR t1")
            .k(5)
            .use_delta(true)
            .run()
            .unwrap()
            .served_from_cache
    );

    // Replace the whole delta with a different single-add delta: same
    // (1, 0) counts, different corrections.
    engine.update_delta(|d| {
        let mut fresh = DeltaIndex::new();
        fresh.add_document(miner.index(), &[w2], &[]);
        *d = fresh;
    });
    assert!(
        engine.epoch() > epoch_after_add,
        "replacement with equal counts must still bump the epoch"
    );
    assert!(
        !engine
            .request("t0 OR t1")
            .k(5)
            .use_delta(true)
            .run()
            .unwrap()
            .served_from_cache,
        "the pre-replacement cached result must not be served"
    );
}
