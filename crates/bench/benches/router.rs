//! Latency benchmark of the scatter-gather router (`ipm_server::Router`)
//! over real loopback shard servers, written as `BENCH_router.json` at the
//! repo root (schema in `ipm_bench::routerbench`, validated before the
//! write).
//!
//! Two scenarios, each swept over hedging on/off:
//!
//! * `uniform` — fanout 1/2/4, two healthy replicas per shard. Baselines
//!   the scatter overhead; with nothing slow the adaptive hedge delay sits
//!   above the healthy tail, so hedging-on rows should fire few hedges.
//! * `delayed` — fanout 2 where shard 0's *primary* replica injects a
//!   25 ms service delay (`ServerConfig::fault_delay_ms`) and its second
//!   replica is fast. Without hedging every request eats the delay; with
//!   hedging the router escapes to the fast replica after a few
//!   milliseconds. The validator enforces that the hedging-on p99 is no
//!   worse than hedging-off here — the PR's headline claim.
//!
//! A closed loop with one client keeps the measurement a pure latency
//! story. Per-row hedge counters are computed as `RouterStats` deltas:
//! the router registers its counters on the engine's shared metrics
//! registry, so routers spawned on the same engine accumulate into the
//! same instruments. `IPM_ROUTERBENCH_REQUESTS` overrides the per-row
//! request count.

use ipm_bench::routerbench::{self, RouterRow, SCENARIO_DELAYED, SCENARIO_UNIFORM};
use ipm_core::{EngineConfig, MinerConfig, PhraseMiner, QueryEngine};
use ipm_obs::Histogram;
use ipm_server::{
    Client, HedgeConfig, Router, RouterConfig, SearchRequest, Server, ServerConfig, ServerHandle,
};
use std::time::{Duration, Instant};

const ARTIFACT_K: usize = 5;
const DELAYED_SHARD_MS: u64 = 25;
/// Hedge delay for the delayed scenario: well under the injected fault,
/// well over a healthy loopback roundtrip.
const DELAYED_HEDGE_MS: u64 = 3;

fn requests_per_row() -> usize {
    std::env::var("IPM_ROUTERBENCH_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(40)
}

/// One engine clone serves every tier: shard servers, router, and the
/// parity reference all see the same corpus build, so phrase-range
/// partitions line up by construction. The result cache is disabled so
/// each request exercises the full scatter path.
fn engine_and_queries() -> (QueryEngine, Vec<String>) {
    let (corpus, _) = ipm_corpus::synth::generate(&ipm_corpus::synth::tiny());
    let miner = PhraseMiner::build(&corpus, MinerConfig::default());
    let top = ipm_corpus::stats::top_words_by_df(miner.corpus(), 6);
    let terms: Vec<String> = top
        .iter()
        .map(|&(w, _)| corpus.words().term(w).unwrap().to_owned())
        .collect();
    let queries = (0..terms.len() - 1)
        .flat_map(|i| {
            [
                format!("{} AND {}", terms[i], terms[i + 1]),
                format!("{} OR {}", terms[i], terms[i + 1]),
            ]
        })
        .collect();
    let engine = QueryEngine::with_config(
        miner,
        EngineConfig {
            cache: None,
            ..Default::default()
        },
    );
    (engine, queries)
}

fn spawn_shard(engine: &QueryEngine, fault_delay_ms: u64) -> ServerHandle {
    Server::spawn(
        engine.clone(),
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            queue_depth: 64,
            fault_delay_ms,
        },
    )
    .expect("bind shard server")
}

/// Spawns a fresh router over `shards`, drives the closed loop, and
/// returns the row built from the latency histogram plus the router's
/// counter deltas.
fn measure_row(
    engine: &QueryEngine,
    scenario: &str,
    hedging: bool,
    hedge_initial: Duration,
    drain: Duration,
    shards: Vec<Vec<String>>,
    queries: &[String],
) -> RouterRow {
    let fanout = shards.len();
    let mut router = Router::spawn(
        engine.clone(),
        RouterConfig {
            addr: "127.0.0.1:0".to_owned(),
            shards,
            hedge: HedgeConfig {
                enabled: hedging,
                initial_delay: hedge_initial,
                ..Default::default()
            },
            rpc_timeout: Duration::from_secs(5),
        },
    )
    .expect("spawn router");
    let before = router.stats();
    let histogram = Histogram::new();
    let mut client = Client::connect(&router.addr().to_string()).expect("connect router");
    for r in 0..requests_per_row() {
        let q = &queries[r % queries.len()];
        let mut req = SearchRequest::new(q.clone());
        req.k = ARTIFACT_K;
        let started = Instant::now();
        let resp = client.search(&req).expect("routed roundtrip");
        histogram.observe(started.elapsed());
        assert_eq!(resp["ok"].as_bool(), Some(true), "routed request failed");
    }
    // Losing hedge attempts outlive their request: each leaves a job
    // queued on the slow replica and increments `wasted_rpcs` only once
    // that job completes. Counters are shared across routers on one
    // engine, so without a drain those stragglers land in the *next*
    // row's delta and their backlog inflates its first latencies.
    std::thread::sleep(drain);
    let after = router.stats();
    router.shutdown();
    RouterRow::from_snapshot(
        scenario,
        fanout,
        hedging,
        &histogram.snapshot(),
        after.hedges_fired - before.hedges_fired,
        after.hedges_won - before.hedges_won,
        after.wasted_rpcs - before.wasted_rpcs,
    )
}

fn print_row(row: &RouterRow) {
    println!(
        "{:<8} fanout {}  hedging {:<5} p50 {:>9.1} us  p95 {:>9.1} us  p99 {:>9.1} us  \
         hedges {}/{} won  wasted {}",
        row.scenario,
        row.fanout,
        row.hedging,
        row.p50_us,
        row.p95_us,
        row.p99_us,
        row.hedges_won,
        row.hedges_fired,
        row.wasted_rpcs,
    );
}

fn main() {
    let (engine, queries) = engine_and_queries();
    let mut rows = Vec::new();

    // Uniform tier: two healthy replicas per shard, enough servers for the
    // widest fanout. Shard servers are fanout-agnostic (the request names
    // its fanout and shard index), so fanout 1 and 2 reuse the same pool.
    let pool: Vec<ServerHandle> = (0..8).map(|_| spawn_shard(&engine, 0)).collect();
    let addrs: Vec<String> = pool.iter().map(|h| h.addr().to_string()).collect();
    for fanout in [1usize, 2, 4] {
        let shards: Vec<Vec<String>> = (0..fanout)
            .map(|s| vec![addrs[2 * s].clone(), addrs[2 * s + 1].clone()])
            .collect();
        for hedging in [true, false] {
            let row = measure_row(
                &engine,
                SCENARIO_UNIFORM,
                hedging,
                HedgeConfig::default().initial_delay,
                Duration::from_millis(50),
                shards.clone(),
                &queries,
            );
            print_row(&row);
            rows.push(row);
        }
    }

    // Delayed tier: shard 0's primary replica is slow, its backup and all
    // of shard 1 are fast. Only the hedge (or eating the delay) answers.
    let slow = spawn_shard(&engine, DELAYED_SHARD_MS);
    for hedging in [true, false] {
        let shards = vec![
            vec![slow.addr().to_string(), addrs[0].clone()],
            vec![addrs[2].clone(), addrs[3].clone()],
        ];
        // Drain must cover the losing-attempt backlog on the slow
        // replica: every hedged request strands a `DELAYED_SHARD_MS` job
        // there, serviced two at a time.
        let drain = Duration::from_millis(DELAYED_SHARD_MS * requests_per_row() as u64 / 2 + 100);
        let row = measure_row(
            &engine,
            SCENARIO_DELAYED,
            hedging,
            Duration::from_millis(DELAYED_HEDGE_MS),
            drain,
            shards,
            &queries,
        );
        print_row(&row);
        rows.push(row);
    }

    let doc = routerbench::report("synth-tiny", ARTIFACT_K, DELAYED_SHARD_MS, &rows);
    routerbench::validate(&doc).expect("generated artifact must match its own schema");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_router.json");
    let json = serde_json::to_string_pretty(&doc).expect("serialize artifact");
    std::fs::write(&path, json + "\n").expect("write BENCH_router.json");
    println!("wrote {}", path.display());

    for mut shard in pool {
        shard.shutdown();
    }
    let mut slow = slow;
    slow.shutdown();
}
