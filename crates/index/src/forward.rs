//! The forward index: per-document phrase lists.
//!
//! This is the index family of Bedathur et al. (ref. \[2\]) and Gao &
//! Michel (ref. \[8\])
//! (paper Table 3, "one list per d, (Phrases in d) ∩ P"): for every
//! document, the sorted list of dictionary phrases it contains. The exact
//! baselines and the ground-truth scorer aggregate these lists over `D'`.
//!
//! Stored in CSR form (one offsets array + one flat id array) so that the
//! whole index is two allocations regardless of document count.

use crate::inverted::collect_doc_phrases;
use crate::phrase::PhraseDictionary;
use ipm_corpus::{Corpus, DocId, PhraseId};

/// CSR-packed per-document phrase lists.
#[derive(Debug, Default, Clone)]
pub struct ForwardIndex {
    offsets: Vec<u64>,
    phrases: Vec<PhraseId>,
}

impl ForwardIndex {
    /// Builds forward lists for every document in the corpus.
    pub fn build(corpus: &Corpus, dict: &PhraseDictionary) -> Self {
        let max_len = dict.max_phrase_words();
        let mut offsets = Vec::with_capacity(corpus.num_docs() + 1);
        let mut phrases = Vec::new();
        let mut scratch: Vec<PhraseId> = Vec::new();
        offsets.push(0u64);
        for doc in corpus.docs() {
            collect_doc_phrases(&doc.tokens, dict, max_len, &mut scratch);
            phrases.extend_from_slice(&scratch);
            offsets.push(phrases.len() as u64);
        }
        Self { offsets, phrases }
    }

    /// The sorted, distinct phrase list of a document; empty if out of range.
    #[inline]
    pub fn doc(&self, id: DocId) -> &[PhraseId] {
        let i = id.index();
        if i + 1 >= self.offsets.len() {
            return &[];
        }
        &self.phrases[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Number of documents covered.
    pub fn num_docs(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Total number of (doc, phrase) entries — the paper's forward-index
    /// size driver.
    pub fn total_entries(&self) -> usize {
        self.phrases.len()
    }

    /// Mean forward-list length.
    pub fn mean_list_len(&self) -> f64 {
        if self.num_docs() == 0 {
            0.0
        } else {
            self.total_entries() as f64 / self.num_docs() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mining::{mine_phrases, MiningConfig};
    use ipm_corpus::{CorpusBuilder, TokenizerConfig};

    fn build_all(texts: &[&str], min_df: u32) -> (Corpus, PhraseDictionary, ForwardIndex) {
        let mut b = CorpusBuilder::new(TokenizerConfig::default());
        for t in texts {
            b.add_text(t);
        }
        let c = b.build();
        let dict = mine_phrases(
            &c,
            &MiningConfig {
                min_df,
                max_len: 4,
                min_len: 1,
            },
        );
        let fwd = ForwardIndex::build(&c, &dict);
        (c, dict, fwd)
    }

    #[test]
    fn forward_lists_are_sorted_distinct() {
        let (_, _, fwd) = build_all(&["a b a b c", "a b c", "a b", "c a"], 2);
        for i in 0..fwd.num_docs() {
            let list = fwd.doc(DocId(i as u32));
            assert!(
                list.windows(2).all(|w| w[0] < w[1]),
                "doc {i} list not sorted"
            );
        }
    }

    #[test]
    fn forward_agrees_with_phrase_postings() {
        let (c, dict, fwd) = build_all(&["e m t", "e m", "m t", "e m t r"], 2);
        let pp = crate::inverted::PhrasePostings::build(&c, &dict);
        for (id, _, _) in dict.iter() {
            for doc in pp.phrase(id).iter() {
                assert!(
                    fwd.doc(doc).binary_search(&id).is_ok(),
                    "phrase {id:?} in postings of {doc:?} but not forward list"
                );
            }
        }
        // And the reverse direction.
        for i in 0..fwd.num_docs() {
            let d = DocId(i as u32);
            for &p in fwd.doc(d) {
                assert!(pp.phrase(p).contains(d));
            }
        }
    }

    #[test]
    fn out_of_range_doc_is_empty() {
        let (_, _, fwd) = build_all(&["a a", "a a"], 2);
        assert!(fwd.doc(DocId(99)).is_empty());
    }

    #[test]
    fn entry_statistics() {
        let (_, _, fwd) = build_all(&["a b", "a b", "a b"], 3);
        // dict: "a", "b", "a b" -> 3 entries per doc
        assert_eq!(fwd.num_docs(), 3);
        assert_eq!(fwd.total_entries(), 9);
        assert!((fwd.mean_list_len() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_corpus() {
        let c = CorpusBuilder::default().build();
        let dict = PhraseDictionary::new();
        let fwd = ForwardIndex::build(&c, &dict);
        assert_eq!(fwd.num_docs(), 0);
        assert_eq!(fwd.mean_list_len(), 0.0);
    }
}
