//! Regenerates Table 7: the consolidated quality/performance summary.

use ipm_bench::{emit, K, QUALITY_FRACTIONS};
use ipm_eval::experiments::{datasets, summary};

fn main() {
    let reuters = datasets::build_reuters();
    emit(&summary::run(&reuters, QUALITY_FRACTIONS, K));
    drop(reuters);
    let pubmed = datasets::build_pubmed();
    emit(&summary::run(&pubmed, QUALITY_FRACTIONS, K));
}
