//! Regenerates Table 4: sample top-5 phrases — an AND query on the
//! PubMed-like dataset and an OR query on the Reuters-like dataset.

use ipm_bench::{emit, K};
use ipm_core::query::Operator;
use ipm_eval::experiments::{datasets, samples};

fn main() {
    let pubmed = datasets::build_pubmed();
    emit(&samples::run(&pubmed, Operator::And, 3, K));
    drop(pubmed);
    let reuters = datasets::build_reuters();
    emit(&samples::run(&reuters, Operator::Or, 2, K));
}
