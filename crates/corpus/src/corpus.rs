//! The in-memory corpus: documents + vocabularies.

use crate::doc::Document;
use crate::ids::{DocId, FacetId, WordId};
use crate::token::{tokenize, TokenizerConfig};
use crate::vocab::{FacetVocabulary, Vocabulary};
use serde::{Deserialize, Serialize};

/// A static corpus `D` of tokenized documents with interned vocabularies.
///
/// This is the paper's `D` (Table 2): the fixed document collection over
/// which the phrase dictionary `P`, the feature set `W`, and all indexes are
/// built. Dynamic subsets `D'` are *not* materialized here; they are defined
/// by queries and resolved against indexes (crate `ipm-index`).
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Corpus {
    docs: Vec<Document>,
    words: Vocabulary,
    facets: FacetVocabulary,
}

impl Corpus {
    /// Number of documents, `|D|`.
    pub fn num_docs(&self) -> usize {
        self.docs.len()
    }

    /// Whether the corpus has no documents.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// The document with the given id, if in range.
    pub fn doc(&self, id: DocId) -> Option<&Document> {
        self.docs.get(id.index())
    }

    /// All documents in id order.
    pub fn docs(&self) -> &[Document] {
        &self.docs
    }

    /// The word vocabulary `W` (keyword features).
    pub fn words(&self) -> &Vocabulary {
        &self.words
    }

    /// The facet vocabulary (metadata features).
    pub fn facets(&self) -> &FacetVocabulary {
        &self.facets
    }

    /// Total number of tokens across all documents.
    pub fn total_tokens(&self) -> usize {
        self.docs.iter().map(Document::len).sum()
    }

    /// Resolves a word string to its id.
    pub fn word_id(&self, term: &str) -> Option<WordId> {
        self.words.get(term)
    }

    /// Resolves a facet string (in `key:value` form) to its id.
    pub fn facet_id(&self, facet: &str) -> Option<FacetId> {
        self.facets.get(facet)
    }

    /// A new corpus over `docs` (token streams + facets, renumbered
    /// densely from 0) that *shares this corpus's vocabularies*: word and
    /// facet ids keep their meaning, so indexes built over the result are
    /// directly comparable with ones built over `self`. This is the
    /// offline-rebuild primitive of the §4.5.1 lifecycle — compaction
    /// reconstructs the document set (base minus deletions plus ingested
    /// docs) without re-interning a single term.
    ///
    /// Vocabulary entries no longer referenced by any document are kept
    /// (ids must stay stable); they simply end up with empty postings.
    pub fn with_docs(&self, docs: Vec<(Vec<WordId>, Vec<FacetId>)>) -> Corpus {
        Corpus {
            docs: docs
                .into_iter()
                .enumerate()
                .map(|(i, (tokens, facets))| Document::new(DocId(i as u32), tokens, facets))
                .collect(),
            words: self.words.clone(),
            facets: self.facets.clone(),
        }
    }

    /// Renders a sequence of word ids back to a space-joined string.
    pub fn render_words(&self, ids: &[WordId]) -> String {
        let mut s = String::new();
        for (i, &w) in ids.iter().enumerate() {
            if i > 0 {
                s.push(' ');
            }
            s.push_str(self.words.term(w).unwrap_or("<?>"));
        }
        s
    }
}

/// Incremental builder for [`Corpus`].
///
/// ```
/// use ipm_corpus::{CorpusBuilder, TokenizerConfig};
///
/// let mut b = CorpusBuilder::new(TokenizerConfig::default());
/// b.add_text("trade reserves fell sharply");
/// b.add_text_with_facets("economic minister speaks", &[("topic", "economy")]);
/// let corpus = b.build();
/// assert_eq!(corpus.num_docs(), 2);
/// assert!(corpus.word_id("reserves").is_some());
/// assert!(corpus.facet_id("topic:economy").is_some());
/// ```
#[derive(Debug, Default)]
pub struct CorpusBuilder {
    tokenizer: TokenizerConfig,
    docs: Vec<Document>,
    words: Vocabulary,
    facets: FacetVocabulary,
}

impl CorpusBuilder {
    /// Creates a builder with the given tokenizer configuration.
    pub fn new(tokenizer: TokenizerConfig) -> Self {
        Self {
            tokenizer,
            ..Default::default()
        }
    }

    /// Adds a raw-text document without facets; returns its id.
    pub fn add_text(&mut self, text: &str) -> DocId {
        self.add_text_with_facets(text, &[])
    }

    /// Adds a raw-text document with `(key, value)` facets; returns its id.
    pub fn add_text_with_facets(&mut self, text: &str, facets: &[(&str, &str)]) -> DocId {
        let tokens = tokenize(text, &self.tokenizer)
            .iter()
            .map(|t| self.words.intern(t))
            .collect();
        let facet_ids = facets
            .iter()
            .map(|(k, v)| self.facets.intern_kv(k, v))
            .collect();
        self.add_tokenized(tokens, facet_ids)
    }

    /// Adds an already-tokenized document (ids must come from this builder's
    /// vocabulary, e.g. via [`CorpusBuilder::intern_word`]); returns its id.
    pub fn add_tokenized(&mut self, tokens: Vec<WordId>, facets: Vec<FacetId>) -> DocId {
        let id = DocId(self.docs.len() as u32);
        self.docs.push(Document::new(id, tokens, facets));
        id
    }

    /// Interns a word, for callers assembling token streams directly
    /// (e.g. the synthetic generators).
    pub fn intern_word(&mut self, term: &str) -> WordId {
        self.words.intern(term)
    }

    /// Interns a facet value from its parts.
    pub fn intern_facet(&mut self, key: &str, value: &str) -> FacetId {
        self.facets.intern_kv(key, value)
    }

    /// Number of documents added so far.
    pub fn num_docs(&self) -> usize {
        self.docs.len()
    }

    /// Finalizes the corpus.
    pub fn build(self) -> Corpus {
        Corpus {
            docs: self.docs,
            words: self.words,
            facets: self.facets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_corpus() -> Corpus {
        let mut b = CorpusBuilder::new(TokenizerConfig::default());
        b.add_text("query optimization in database systems");
        b.add_text("database systems and query planning");
        b.add_text_with_facets(
            "economic minister on trade reserves",
            &[("topic", "economy")],
        );
        b.build()
    }

    #[test]
    fn builder_assigns_dense_doc_ids() {
        let c = small_corpus();
        assert_eq!(c.num_docs(), 3);
        for (i, d) in c.docs().iter().enumerate() {
            assert_eq!(d.id, DocId(i as u32));
        }
    }

    #[test]
    fn shared_vocabulary_across_documents() {
        let c = small_corpus();
        let db = c.word_id("database").unwrap();
        assert!(c.doc(DocId(0)).unwrap().tokens.contains(&db));
        assert!(c.doc(DocId(1)).unwrap().tokens.contains(&db));
    }

    #[test]
    fn facet_resolution() {
        let c = small_corpus();
        let f = c.facet_id("topic:economy").unwrap();
        assert!(c.doc(DocId(2)).unwrap().has_facet(f));
        assert!(!c.doc(DocId(0)).unwrap().has_facet(f));
        assert_eq!(c.facet_id("topic:sports"), None);
    }

    #[test]
    fn render_words_roundtrip() {
        let c = small_corpus();
        let d = c.doc(DocId(0)).unwrap();
        assert_eq!(
            c.render_words(&d.tokens),
            "query optimization in database systems"
        );
    }

    #[test]
    fn render_words_handles_unknown_ids() {
        let c = small_corpus();
        let bogus = WordId(9999);
        assert_eq!(c.render_words(&[bogus]), "<?>");
    }

    #[test]
    fn total_tokens_sums_docs() {
        let c = small_corpus();
        assert_eq!(
            c.total_tokens(),
            c.docs().iter().map(|d| d.len()).sum::<usize>()
        );
        assert_eq!(c.total_tokens(), 5 + 5 + 5);
    }

    #[test]
    fn doc_out_of_range_is_none() {
        let c = small_corpus();
        assert!(c.doc(DocId(3)).is_none());
    }

    #[test]
    fn empty_corpus() {
        let c = CorpusBuilder::default().build();
        assert!(c.is_empty());
        assert_eq!(c.total_tokens(), 0);
    }

    #[test]
    fn with_docs_shares_vocabulary_and_renumbers() {
        let c = small_corpus();
        let d0 = c.doc(DocId(0)).unwrap().clone();
        let d2 = c.doc(DocId(2)).unwrap().clone();
        let rebuilt = c.with_docs(vec![
            (d2.tokens.clone(), d2.facets.clone()),
            (d0.tokens.clone(), d0.facets.clone()),
        ]);
        assert_eq!(rebuilt.num_docs(), 2);
        assert_eq!(rebuilt.doc(DocId(0)).unwrap().tokens, d2.tokens);
        assert_eq!(rebuilt.doc(DocId(0)).unwrap().id, DocId(0));
        assert_eq!(rebuilt.doc(DocId(1)).unwrap().tokens, d0.tokens);
        // Vocabulary ids keep their meaning across the rebuild.
        assert_eq!(rebuilt.word_id("database"), c.word_id("database"));
        assert_eq!(
            rebuilt.facet_id("topic:economy"),
            c.facet_id("topic:economy")
        );
    }

    #[test]
    fn add_tokenized_respects_interned_ids() {
        let mut b = CorpusBuilder::default();
        let w1 = b.intern_word("alpha");
        let w2 = b.intern_word("beta");
        let f = b.intern_facet("year", "1997");
        let id = b.add_tokenized(vec![w1, w2, w1], vec![f]);
        let c = b.build();
        let d = c.doc(id).unwrap();
        assert_eq!(d.tokens, vec![w1, w2, w1]);
        assert!(d.has_facet(f));
        assert_eq!(c.render_words(&d.tokens), "alpha beta alpha");
    }
}
