//! Regenerates Table 6: mean |estimated − real| interestingness.

use ipm_bench::{emit, K};
use ipm_eval::experiments::{accuracy, datasets};

fn main() {
    let reuters = datasets::build_reuters();
    emit(&accuracy::run(&reuters, K));
    drop(reuters);
    let pubmed = datasets::build_pubmed();
    emit(&accuracy::run(&pubmed, K));
}
