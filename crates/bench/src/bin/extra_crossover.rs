//! Regenerates the §5.5 analysis: the partial-list fraction at which
//! in-memory NRA overtakes SMJ.

use ipm_bench::{emit, K};
use ipm_core::query::Operator;
use ipm_eval::experiments::{crossover, datasets};

const SWEEP: &[f64] = &[0.05, 0.10, 0.20, 0.35, 0.50, 0.75, 0.90, 1.00];

fn main() {
    let reuters = datasets::build_reuters();
    for op in [Operator::And, Operator::Or] {
        emit(&crossover::run(&reuters, op, SWEEP, K));
    }
    drop(reuters);
    let pubmed = datasets::build_pubmed();
    for op in [Operator::And, Operator::Or] {
        emit(&crossover::run(&pubmed, op, SWEEP, K));
    }
}
