//! The high-level facade: build once, query many times.
//!
//! [`PhraseMiner`] owns the corpus, the offline indexes (dictionary,
//! postings, forward lists) and the paper's word-specific lists in both
//! orders, and exposes every retrieval path:
//!
//! * [`PhraseMiner::top_k_exact`] — ground truth (Eq. 3);
//! * [`PhraseMiner::top_k_smj`] — in-memory SMJ over ID-ordered lists;
//! * [`PhraseMiner::top_k_nra`] / [`PhraseMiner::top_k_nra_partial`] —
//!   NRA over in-memory score-ordered lists;
//! * [`PhraseMiner::to_disk`] + [`PhraseMiner::top_k_nra_disk`] — NRA over
//!   the simulated disk with IO accounting.

use crate::delta::DeltaIndex;
use crate::exact;
use crate::nra::{run_nra, NraConfig, NraOutcome};
use crate::query::{Operator, Query, QueryError};
use crate::result::PhraseHit;
use crate::smj::{run_smj, run_smj_backend};
use crate::ta::run_ta_backend;
use ipm_corpus::{Corpus, PhraseId};
use ipm_index::backend::{ListBackend, MemoryBackend};
use ipm_index::corpus_index::{CorpusIndex, IndexConfig};
use ipm_index::cursor::MemoryCursor;
use ipm_index::wordlists::{IdOrderedLists, WordListConfig, WordPhraseLists};
use ipm_storage::{DiskLists, IoStats, PackedLists};

/// Build configuration for [`PhraseMiner`].
#[derive(Debug, Clone, Default)]
pub struct MinerConfig {
    /// Phrase-mining / index parameters.
    pub index: IndexConfig,
    /// Word-list construction parameters.
    pub wordlists: WordListConfig,
    /// Build-time partial fraction for the SMJ (ID-ordered) lists; `None`
    /// keeps full lists. Frozen at build time (paper §4.4.2).
    pub smj_fraction: Option<f64>,
    /// Default NRA tuning (per-query `k` overrides the one in here).
    pub nra: NraConfig,
}

/// An indexed corpus ready for interesting-phrase queries.
#[derive(Debug)]
pub struct PhraseMiner {
    corpus: Corpus,
    index: CorpusIndex,
    lists: WordPhraseLists,
    id_lists: IdOrderedLists,
    config: MinerConfig,
}

impl PhraseMiner {
    /// Builds all indexes over (a clone of) `corpus`.
    pub fn build(corpus: &Corpus, config: MinerConfig) -> Self {
        let index = CorpusIndex::build(corpus, &config.index);
        let lists = WordPhraseLists::build(corpus, &index, &config.wordlists);
        let smj_source = match config.smj_fraction {
            Some(f) if f < 1.0 => lists.partial(f),
            _ => lists.clone(),
        };
        let id_lists = IdOrderedLists::from_score_ordered(&smj_source);
        Self {
            corpus: corpus.clone(),
            index,
            lists,
            id_lists,
            config,
        }
    }

    /// The corpus this miner was built over.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// The offline index bundle.
    pub fn index(&self) -> &CorpusIndex {
        &self.index
    }

    /// The score-ordered word lists.
    pub fn lists(&self) -> &WordPhraseLists {
        &self.lists
    }

    /// The ID-ordered lists that SMJ runs over.
    pub fn id_lists(&self) -> &IdOrderedLists {
        &self.id_lists
    }

    /// The build configuration.
    pub fn config(&self) -> &MinerConfig {
        &self.config
    }

    /// The in-memory [`ListBackend`] view over this miner's lists. Every
    /// retrieval algorithm runs over it; `ipm_storage::DiskLists` is the
    /// drop-in disk-resident alternative (see [`PhraseMiner::to_disk`]).
    pub fn memory_backend(&self) -> MemoryBackend<'_> {
        MemoryBackend::new(&self.lists, &self.id_lists)
    }

    /// Parses keyword terms (and `key:value` facet terms) into a query.
    pub fn parse_query(&self, terms: &[&str], op: Operator) -> Result<Query, QueryError> {
        Query::from_terms(&self.corpus, terms, op)
    }

    /// Exact top-k (Eq. 3) — the ground truth, linear in `|D'|`.
    pub fn top_k_exact(&self, query: &Query, k: usize) -> Vec<PhraseHit> {
        exact::exact_top_k(&self.index, query, k)
    }

    /// SMJ top-k over the (possibly build-time-partial) ID-ordered lists.
    pub fn top_k_smj(&self, query: &Query, k: usize) -> Vec<PhraseHit> {
        run_smj(&self.id_lists, query, k)
    }

    /// SMJ top-k for OR queries with the full Eq. 11 inclusion–exclusion
    /// score instead of the first-order cut (the Table 6 ablation).
    ///
    /// # Panics
    /// Panics on AND queries — inclusion–exclusion is an OR construction.
    pub fn top_k_smj_exact_or(&self, query: &Query, k: usize) -> Vec<PhraseHit> {
        assert_eq!(
            query.op,
            Operator::Or,
            "exact-OR scoring requires an OR query"
        );
        crate::smj::run_smj_exact_or(&self.id_lists, query, k)
    }

    /// NRA top-k over full in-memory score-ordered lists.
    pub fn top_k_nra(&self, query: &Query, k: usize) -> NraOutcome {
        self.top_k_nra_partial(query, k, 1.0)
    }

    /// NRA top-k reading only the top-`fraction` of each list (run-time
    /// partial lists, paper §4.3).
    pub fn top_k_nra_partial(&self, query: &Query, k: usize, fraction: f64) -> NraOutcome {
        self.top_k_nra_backend(&self.memory_backend(), query, k, fraction)
    }

    /// NRA top-k with delta corrections from a side index (paper §4.5.1).
    pub fn top_k_nra_with_delta(&self, query: &Query, k: usize, delta: &DeltaIndex) -> NraOutcome {
        let cursors: Vec<_> = query
            .features
            .iter()
            .map(|&f| {
                crate::delta::AdjustedCursor::new(
                    MemoryCursor::new(self.lists.list(f)),
                    delta,
                    &self.index,
                    f,
                )
            })
            .collect();
        let cfg = NraConfig {
            k,
            // Stale ordering + corrections ⇒ bounds are heuristic; treat
            // lists as partial so exhausted lists keep a safe bound.
            lists_are_partial: true,
            ..self.config.nra.clone()
        };
        run_nra(cursors, query.op, &cfg)
    }

    /// Serializes the word lists (optionally truncated to `fraction`), the
    /// miner's id-ordered lists (which carry the build-time
    /// `smj_fraction`, paper §4.4.2 — so disk SMJ/TA mirror the in-memory
    /// backend exactly) and the phrase file into a simulated-disk index.
    pub fn to_disk(&self, fraction: f64) -> DiskLists {
        self.to_disk_with(
            fraction,
            ipm_storage::PoolConfig::default(),
            ipm_storage::CostModel::default(),
        )
    }

    /// [`PhraseMiner::to_disk`] with an explicit buffer-pool geometry and
    /// cost model (the engine's `EngineConfig::pool`/`cost` plumb through
    /// here).
    pub fn to_disk_with(
        &self,
        fraction: f64,
        pool: ipm_storage::PoolConfig,
        cost: ipm_storage::CostModel,
    ) -> DiskLists {
        let source = if fraction < 1.0 {
            self.lists.partial(fraction)
        } else {
            self.lists.clone()
        };
        DiskLists::with_lists(
            &self.corpus,
            &self.index.dict,
            &source,
            &self.id_lists,
            pool,
            cost,
        )
    }

    /// NRA over a disk-resident index built with [`PhraseMiner::to_disk`].
    /// Returns the outcome plus the IO activity of this query (the pool is
    /// reset first, modelling a cold cache as the paper's per-query costs
    /// do).
    pub fn top_k_nra_disk(
        &self,
        disk: &DiskLists,
        query: &Query,
        k: usize,
        fraction: f64,
    ) -> (NraOutcome, IoStats) {
        disk.reset_io();
        let outcome = self.top_k_nra_backend(disk, query, k, fraction);
        (outcome, disk.io_stats())
    }

    /// Encodes the word lists into the block-compressed image
    /// ([`ipm_storage::BlockImage`]): bit-packed 128-entry blocks with
    /// skip metadata, integer-rational scores dequantized bit-identically
    /// to the in-memory lists, per-*block* IO charging. Like
    /// [`PhraseMiner::to_disk`], `fraction < 1.0` freezes a build-time cut
    /// of the score-ordered lists; the id-ordered side carries the
    /// miner's `smj_fraction`.
    pub fn to_block(&self, fraction: f64) -> ipm_storage::BlockImage {
        self.to_block_with(
            fraction,
            ipm_storage::PoolConfig::default(),
            ipm_storage::CostModel::default(),
        )
    }

    /// [`PhraseMiner::to_block`] with an explicit buffer-pool geometry and
    /// cost model.
    pub fn to_block_with(
        &self,
        fraction: f64,
        pool: ipm_storage::PoolConfig,
        cost: ipm_storage::CostModel,
    ) -> ipm_storage::BlockImage {
        ipm_storage::BlockImage::build(
            &self.index,
            &self.lists,
            &self.id_lists,
            fraction,
            pool,
            cost,
        )
    }

    /// Serializes the word lists (optionally truncated to `fraction`) into
    /// the bit-packed `⌈log₂|P|⌉ + 64`-bit layout of paper §4.2.2.
    pub fn to_packed(&self, fraction: f64) -> PackedLists {
        let source = if fraction < 1.0 {
            self.lists.partial(fraction)
        } else {
            self.lists.clone()
        };
        PackedLists::build(&source, self.index.dict.len())
    }

    /// NRA over a packed disk-resident index built with
    /// [`PhraseMiner::to_packed`]. Cold cache per query, like
    /// [`PhraseMiner::top_k_nra_disk`].
    pub fn top_k_nra_packed(
        &self,
        packed: &PackedLists,
        query: &Query,
        k: usize,
        fraction: f64,
    ) -> (NraOutcome, IoStats) {
        packed.reset_io();
        let cursors: Vec<_> = query
            .features
            .iter()
            .map(|&f| packed.cursor(f, fraction))
            .collect();
        let cfg = NraConfig {
            k,
            lists_are_partial: fraction < 1.0,
            ..self.config.nra.clone()
        };
        let outcome = run_nra(cursors, query.op, &cfg);
        (outcome, packed.io_stats())
    }

    /// TA top-k: sorted access over the score-ordered lists with random
    /// probes into the ID-ordered lists (in-memory extension; see
    /// [`crate::ta`]).
    pub fn top_k_ta(&self, query: &Query, k: usize) -> crate::ta::TaOutcome {
        crate::ta::run_ta(&self.lists, &self.id_lists, query, k)
    }

    /// SMJ over a disk-resident index built with [`PhraseMiner::to_disk`]:
    /// one synchronized scan of the id-ordered list file per query, every
    /// page charged to the pool (cold cache per query, like
    /// [`PhraseMiner::top_k_nra_disk`]).
    pub fn top_k_smj_disk(
        &self,
        disk: &DiskLists,
        query: &Query,
        k: usize,
    ) -> (Vec<PhraseHit>, IoStats) {
        disk.reset_io();
        let hits = run_smj_backend(disk, query, k);
        (hits, disk.io_stats())
    }

    /// TA over a disk-resident index: sorted access on the score-ordered
    /// file plus binary-search probes into the id-ordered file, all
    /// charged to the pool (cold cache per query). The probe-heavy IO
    /// pattern is exactly why the paper prefers NRA on disk (§5.5); this
    /// makes that trade-off measurable.
    pub fn top_k_ta_disk(
        &self,
        disk: &DiskLists,
        query: &Query,
        k: usize,
    ) -> (crate::ta::TaOutcome, IoStats) {
        disk.reset_io();
        let outcome = run_ta_backend(disk, query, k);
        (outcome, disk.io_stats())
    }

    /// NRA top-k over any [`ListBackend`] reading only the top-`fraction`
    /// prefix of each score-ordered list.
    pub fn top_k_nra_backend<B: ListBackend>(
        &self,
        backend: &B,
        query: &Query,
        k: usize,
        fraction: f64,
    ) -> NraOutcome {
        let cursors: Vec<B::ScoreCursor<'_>> = query
            .features
            .iter()
            .map(|&f| backend.score_cursor(f, fraction))
            .collect();
        let cfg = NraConfig {
            k,
            lists_are_partial: fraction < 1.0,
            ..self.config.nra.clone()
        };
        run_nra(cursors, query.op, &cfg)
    }

    /// NRA top-k with the §5.6 post-retrieval redundancy filter: results
    /// whose lexical overlap with the query reaches
    /// `redundancy.max_overlap` are suppressed, and deeper candidates take
    /// their place (the miner over-fetches internally until `k` survivors
    /// are found or candidates run out).
    pub fn top_k_nonredundant(
        &self,
        query: &Query,
        k: usize,
        redundancy: &crate::redundancy::RedundancyConfig,
    ) -> Vec<PhraseHit> {
        let mut fetch = k * 2 + 8;
        loop {
            let mut hits = self.top_k_nra(query, fetch).hits;
            let exhausted = hits.len() < fetch;
            crate::redundancy::filter_hits(&self.index.dict, query, &mut hits, redundancy);
            if hits.len() >= k || exhausted {
                hits.truncate(k);
                return hits;
            }
            fetch *= 2;
        }
    }

    /// Approximate NPMI top-k (paper §7 future work — another
    /// interestingness formulation served by the same list machinery):
    /// fetches the NRA top-`fetch` candidates by estimated
    /// interestingness, converts each estimate to estimated NPMI using
    /// `df(p)` and `|D'|` (postings set algebra only), and reranks.
    ///
    /// **Fetch depth matters.** The lists are ordered by `P(q|p)` — the
    /// right key for Eq. 1 but not for NPMI, which breaks Eq. 1's ties
    /// toward *higher-df* phrases. A shallow fetch sees only an arbitrary
    /// slice of the top-interestingness plateau and misses the phrases
    /// NPMI actually prefers; recall rises with `fetch` and becomes exact
    /// (up to independence-assumption score error) when `fetch` covers
    /// every candidate. This is the honest answer to the paper's §7
    /// question for NPMI: the machinery *computes* it from list data, but
    /// the list order no longer supports early termination.
    pub fn top_k_npmi(&self, query: &Query, k: usize, fetch: usize) -> Vec<PhraseHit> {
        // For OR queries, base the estimates on the full inclusion–
        // exclusion score (Eq. 11): the first-order cut's overestimate is
        // harmless for Eq. 1's ranking but inflates NPMI for phrases
        // partially correlated with many query words.
        let mut hits = match query.op {
            Operator::Or => crate::smj::run_smj_exact_or(&self.id_lists, query, fetch.max(k)),
            Operator::And => self.top_k_nra(query, fetch.max(k)).hits,
        };
        crate::measures::rescore_npmi(&self.index, query, &mut hits);
        hits.truncate(k);
        hits
    }

    /// Exact top-k under an alternative interestingness [`crate::measures::Measure`]
    /// (ground truth for the NPMI approximation).
    pub fn top_k_exact_measure(
        &self,
        query: &Query,
        k: usize,
        measure: crate::measures::Measure,
    ) -> Vec<PhraseHit> {
        crate::measures::exact_top_k_measure(&self.index, query, k, measure)
    }

    /// Parses a full query string (`"trade AND reserves"`, facets allowed).
    pub fn parse_query_str(&self, input: &str) -> Result<Query, crate::parse::ParseError> {
        crate::parse::parse_query(&self.corpus, input)
    }

    /// Renders a phrase id as text.
    pub fn phrase_text(&self, p: PhraseId) -> String {
        self.index.dict.render(p, &self.corpus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipm_index::mining::MiningConfig;

    fn miner() -> PhraseMiner {
        let (c, _) = ipm_corpus::synth::generate(&ipm_corpus::synth::tiny());
        PhraseMiner::build(
            &c,
            MinerConfig {
                index: IndexConfig {
                    mining: MiningConfig {
                        min_df: 3,
                        max_len: 4,
                        min_len: 1,
                    },
                },
                ..Default::default()
            },
        )
    }

    fn some_query(m: &PhraseMiner, op: Operator) -> Query {
        // Pick two corpus words that co-occur: take the two most frequent.
        let top = ipm_corpus::stats::top_words_by_df(m.corpus(), 2);
        Query::new(
            top.iter()
                .map(|&(w, _)| ipm_corpus::Feature::Word(w))
                .collect(),
            op,
        )
        .unwrap()
    }

    #[test]
    fn build_produces_nonempty_indexes() {
        let m = miner();
        assert!(!m.index().dict.is_empty());
        assert!(m.lists().total_entries() > 0);
        assert_eq!(m.id_lists().total_entries(), m.lists().total_entries());
    }

    #[test]
    fn exact_smj_nra_agree_on_top_scores_or() {
        let m = miner();
        let q = some_query(&m, Operator::Or);
        let k = 5;
        let exact: Vec<f64> = m.top_k_exact(&q, k).iter().map(|h| h.score).collect();
        let smj = m.top_k_smj(&q, k);
        let nra = m.top_k_nra(&q, k);
        // SMJ and NRA run the same scoring; their results must agree.
        assert_eq!(smj.len(), nra.hits.len());
        for (a, b) in smj.iter().zip(&nra.hits) {
            assert_eq!(a.phrase, b.phrase, "smj {smj:?} nra {:?}", nra.hits);
            assert!((a.score - b.score).abs() < 1e-9);
        }
        // The independence-assumption scores approximate the exact ones.
        for (est, ex) in smj.iter().zip(&exact) {
            let est_i = crate::scoring::estimated_interestingness(Operator::Or, est.score);
            assert!((est_i - ex).abs() < 0.5, "estimate {est_i} vs exact {ex}");
        }
    }

    #[test]
    fn exact_smj_nra_agree_on_top_scores_and() {
        let m = miner();
        let q = some_query(&m, Operator::And);
        let smj = m.top_k_smj(&q, 5);
        let nra = m.top_k_nra(&q, 5);
        assert_eq!(smj.len(), nra.hits.len());
        for (a, b) in smj.iter().zip(&nra.hits) {
            assert_eq!(a.phrase, b.phrase);
            assert!((a.score - b.score).abs() < 1e-9);
        }
    }

    #[test]
    fn partial_nra_is_subset_biased_but_nonempty() {
        let m = miner();
        let q = some_query(&m, Operator::Or);
        let out = m.top_k_nra_partial(&q, 5, 0.2);
        assert!(!out.hits.is_empty());
        // Partial lists can only have read fewer entries than full lists.
        let full = m.top_k_nra(&q, 5);
        assert!(out.stats.total_entries_read() <= full.stats.total_entries_read());
    }

    #[test]
    fn disk_nra_matches_memory_nra() {
        let m = miner();
        let q = some_query(&m, Operator::Or);
        let disk = m.to_disk(1.0);
        let (disk_out, io) = m.top_k_nra_disk(&disk, &q, 5, 1.0);
        let mem_out = m.top_k_nra(&q, 5);
        assert_eq!(
            disk_out.hits.iter().map(|h| h.phrase).collect::<Vec<_>>(),
            mem_out.hits.iter().map(|h| h.phrase).collect::<Vec<_>>()
        );
        assert!(io.total_fetches() > 0);
        assert!(io.io_ms(disk.cost_model()) > 0.0);
    }

    #[test]
    fn build_time_smj_fraction_freezes_lists() {
        let (c, _) = ipm_corpus::synth::generate(&ipm_corpus::synth::tiny());
        let full = PhraseMiner::build(&c, MinerConfig::default());
        let partial = PhraseMiner::build(
            &c,
            MinerConfig {
                smj_fraction: Some(0.2),
                ..Default::default()
            },
        );
        assert!(partial.id_lists().total_entries() < full.id_lists().total_entries());
        // Score-ordered lists stay full either way (NRA truncates at run time).
        assert_eq!(
            partial.lists().total_entries(),
            full.lists().total_entries()
        );
    }

    #[test]
    fn disk_smj_and_ta_match_memory() {
        let m = miner();
        for op in [Operator::And, Operator::Or] {
            let q = some_query(&m, op);
            let disk = m.to_disk(1.0);
            let (smj_disk, io) = m.top_k_smj_disk(&disk, &q, 5);
            assert!(io.total_accesses() > 0);
            let smj_mem = m.top_k_smj(&q, 5);
            assert_eq!(
                smj_disk.iter().map(|h| h.phrase).collect::<Vec<_>>(),
                smj_mem.iter().map(|h| h.phrase).collect::<Vec<_>>(),
                "{op}: disk SMJ diverges"
            );
            let (ta_disk, io) = m.top_k_ta_disk(&disk, &q, 5);
            assert!(io.random_fetches > 0, "{op}: TA probes must cost random IO");
            let ta_mem = m.top_k_ta(&q, 5);
            assert_eq!(
                ta_disk.hits.iter().map(|h| h.phrase).collect::<Vec<_>>(),
                ta_mem.hits.iter().map(|h| h.phrase).collect::<Vec<_>>(),
                "{op}: disk TA diverges"
            );
        }
    }

    #[test]
    fn disk_image_freezes_build_time_smj_fraction() {
        // A miner with a build-time SMJ fraction serves *partial* id lists
        // in memory; its disk image must mirror them, not the full lists.
        let (c, _) = ipm_corpus::synth::generate(&ipm_corpus::synth::tiny());
        let m = PhraseMiner::build(
            &c,
            MinerConfig {
                smj_fraction: Some(0.2),
                ..Default::default()
            },
        );
        let q = some_query(&m, Operator::Or);
        let disk = m.to_disk(1.0);
        let (smj_disk, _) = m.top_k_smj_disk(&disk, &q, 5);
        let smj_mem = m.top_k_smj(&q, 5);
        assert_eq!(
            smj_disk.iter().map(|h| h.phrase).collect::<Vec<_>>(),
            smj_mem.iter().map(|h| h.phrase).collect::<Vec<_>>(),
            "partial id lists must freeze into the disk image"
        );
        for (a, b) in smj_disk.iter().zip(&smj_mem) {
            assert!((a.score - b.score).abs() < 1e-12);
        }
    }

    #[test]
    fn parse_query_round_trip() {
        let m = miner();
        let q = m.parse_query(&["w1", "w2"], Operator::And).unwrap();
        assert_eq!(q.len(), 2);
        assert!(m
            .parse_query(&["definitely-not-a-word"], Operator::Or)
            .is_err());
    }

    #[test]
    fn phrase_text_renders() {
        let m = miner();
        let (id, words, _) = m.index().dict.iter().next().unwrap();
        assert_eq!(m.phrase_text(id), m.corpus().render_words(words));
    }

    #[test]
    fn delta_corrections_flow_through_nra() {
        let m = miner();
        let q = some_query(&m, Operator::Or);
        let delta = DeltaIndex::new();
        let with_empty_delta = m.top_k_nra_with_delta(&q, 5, &delta);
        let plain = m.top_k_nra(&q, 5);
        assert_eq!(
            with_empty_delta
                .hits
                .iter()
                .map(|h| h.phrase)
                .collect::<Vec<_>>(),
            plain.hits.iter().map(|h| h.phrase).collect::<Vec<_>>()
        );
    }

    #[test]
    fn nonredundant_results_respect_overlap_threshold() {
        let m = miner();
        for op in [Operator::And, Operator::Or] {
            let q = some_query(&m, op);
            let cfg = crate::redundancy::RedundancyConfig::default();
            let hits = m.top_k_nonredundant(&q, 5, &cfg);
            assert!(hits.len() <= 5);
            for h in &hits {
                let words = m.index().dict.words(h.phrase).unwrap();
                let overlap = crate::redundancy::overlap_fraction(words, &q);
                assert!(
                    overlap < cfg.max_overlap,
                    "{op}: phrase {} has overlap {overlap}",
                    m.phrase_text(h.phrase)
                );
            }
        }
    }

    #[test]
    fn nonredundant_is_a_subsequence_of_deeper_unfiltered_ranking() {
        // The filter must only remove hits, never reorder or invent them.
        let m = miner();
        let q = some_query(&m, Operator::Or);
        let cfg = crate::redundancy::RedundancyConfig::default();
        let filtered = m.top_k_nonredundant(&q, 5, &cfg);
        let deep: Vec<_> = m.top_k_nra(&q, 200).hits.iter().map(|h| h.phrase).collect();
        let mut pos = 0;
        for h in &filtered {
            let at = deep[pos..]
                .iter()
                .position(|p| *p == h.phrase)
                .expect("filtered hit missing from deep ranking");
            pos += at + 1;
        }
    }

    #[test]
    fn disabled_filter_returns_plain_top_k() {
        let m = miner();
        let q = some_query(&m, Operator::Or);
        let cfg = crate::redundancy::RedundancyConfig { max_overlap: 2.0 };
        let filtered = m.top_k_nonredundant(&q, 5, &cfg);
        let plain: Vec<_> = m.top_k_nra(&q, 5).hits;
        assert_eq!(
            filtered.iter().map(|h| h.phrase).collect::<Vec<_>>(),
            plain.iter().map(|h| h.phrase).collect::<Vec<_>>()
        );
    }
}
