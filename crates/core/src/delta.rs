//! Incremental operation: the side index of paper §4.5.1.
//!
//! The word-specific lists hold pre-computed conditional probabilities and
//! are expensive to keep current under document churn. The paper's remedy:
//! maintain a *separate* inverted index over the updated (added or deleted)
//! documents, keyed on features and phrases; when a phrase enters the
//! candidate set of NRA or SMJ, query that side index for the delta of its
//! conditional probability and use the corrected value. Periodically the
//! side index is flushed and the list indexes rebuilt offline.
//!
//! Correctness note from the paper: the corrections make SMJ results exact
//! again, but NRA's pruning bounds were computed from the *stale* list
//! order, so corrected-NRA remains approximate.
//!
//! [`DeltaOverlay`] lifts the correction from a cursor-level bolt-on to a
//! full [`ListBackend`]: it wraps *any* backend (memory, disk, or one
//! shard of either) so score cursors, id cursors and random probes all
//! serve corrected `P(q|p)` values. Every algorithm — NRA, SMJ, TA and
//! (through [`crate::exact`]'s delta-aware scorer) the exact ground truth
//! — therefore honours the same side index uniformly.

use ipm_corpus::hash::{FxHashMap, FxHashSet};
use ipm_corpus::{DocId, FacetId, Feature, PhraseId, WordId};
use ipm_index::backend::ListBackend;
use ipm_index::corpus_index::CorpusIndex;
use ipm_index::cursor::{IdListCursor, ScoredListCursor};
use ipm_index::inverted::doc_phrases;
use ipm_index::wordlists::ListEntry;

use crate::query::{Operator, Query};

/// Process-wide stamp source for [`DeltaIndex::fingerprint`]: every
/// construction and every state-changing mutation draws a fresh value,
/// so two delta states never share a fingerprint — not even a wholesale
/// in-place replacement with equal counts.
static DELTA_STAMP: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

fn next_stamp() -> u64 {
    // lint-allow: relaxed-ordering — stamp uniqueness comes from fetch_add atomicity; no cross-variable ordering
    DELTA_STAMP.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// The side index over inserted and deleted documents.
#[derive(Debug)]
pub struct DeltaIndex {
    /// Number of documents added so far (local ids are dense).
    num_added: u32,
    /// feature code -> local added-doc ids containing it (sorted).
    added_features: FxHashMap<u64, Vec<u32>>,
    /// phrase -> local added-doc ids containing it (sorted).
    added_phrases: FxHashMap<PhraseId, Vec<u32>>,
    /// Base-corpus documents marked deleted.
    deleted: FxHashSet<DocId>,
    /// Raw token/facet streams of every added document, in insertion
    /// order (local id = position). Compaction rebuilds the corpus from
    /// these, and new phrases/words they carry enter the dictionary at
    /// that offline rebuild — exactly the paper's flush model.
    added_docs: Vec<(Vec<WordId>, Vec<FacetId>)>,
    /// Change fingerprint; refreshed by every state-changing mutation.
    stamp: u64,
    /// `P(q|p)` corrections served while this delta was live (relaxed;
    /// bumped from concurrent query threads). Dropped with the delta at
    /// compaction, so it gauges the *current generation's* correction
    /// traffic.
    corrections: std::sync::atomic::AtomicU64,
}

impl Clone for DeltaIndex {
    fn clone(&self) -> Self {
        Self {
            num_added: self.num_added,
            added_features: self.added_features.clone(),
            added_phrases: self.added_phrases.clone(),
            deleted: self.deleted.clone(),
            added_docs: self.added_docs.clone(),
            stamp: self.stamp,
            corrections: std::sync::atomic::AtomicU64::new(
                // lint-allow: relaxed-ordering — clone snapshot of an advisory counter
                self.corrections.load(std::sync::atomic::Ordering::Relaxed),
            ),
        }
    }
}

impl Default for DeltaIndex {
    fn default() -> Self {
        Self {
            num_added: 0,
            added_features: FxHashMap::default(),
            added_phrases: FxHashMap::default(),
            deleted: FxHashSet::default(),
            added_docs: Vec::new(),
            stamp: next_stamp(),
            corrections: std::sync::atomic::AtomicU64::new(0),
        }
    }
}

impl DeltaIndex {
    /// Creates an empty side index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of added documents.
    pub fn num_added(&self) -> usize {
        self.num_added as usize
    }

    /// Number of deleted base documents.
    pub fn num_deleted(&self) -> usize {
        self.deleted.len()
    }

    /// Whether the side index is empty (nothing to correct).
    pub fn is_empty(&self) -> bool {
        self.num_added == 0 && self.deleted.is_empty()
    }

    /// How many `P(q|p)` corrections this delta has served (monotone
    /// while the delta is live; the count dies with it at compaction).
    pub fn corrections_applied(&self) -> u64 {
        // lint-allow: relaxed-ordering — advisory stats read
        self.corrections.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Records an inserted document. Phrases are recognized against the
    /// *existing* dictionary (new phrases only enter `P` at the next offline
    /// rebuild, mirroring the paper's flush model).
    pub fn add_document(&mut self, index: &CorpusIndex, tokens: &[WordId], facets: &[FacetId]) {
        let local = self.num_added;
        self.num_added += 1;
        self.stamp = next_stamp();
        self.added_docs.push((tokens.to_vec(), facets.to_vec()));
        let mut distinct: Vec<WordId> = tokens.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        for w in distinct {
            self.added_features
                .entry(Feature::Word(w).encode())
                .or_default()
                .push(local);
        }
        let mut fs: Vec<FacetId> = facets.to_vec();
        fs.sort_unstable();
        fs.dedup();
        for f in fs {
            self.added_features
                .entry(Feature::Facet(f).encode())
                .or_default()
                .push(local);
        }
        for p in doc_phrases(tokens, &index.dict) {
            self.added_phrases.entry(p).or_default().push(local);
        }
    }

    /// Marks a base-corpus document deleted. Idempotent (re-deleting a
    /// deleted document changes no state and keeps the fingerprint).
    pub fn delete_document(&mut self, doc: DocId) {
        if self.deleted.insert(doc) {
            self.stamp = next_stamp();
        }
    }

    /// Whether a base-corpus document is marked deleted.
    pub fn is_deleted(&self, doc: DocId) -> bool {
        self.deleted.contains(&doc)
    }

    /// The raw token/facet streams of every added document, in insertion
    /// order (local id = position) — the material compaction flushes into
    /// the offline rebuild.
    pub fn added_docs(&self) -> &[(Vec<WordId>, Vec<FacetId>)] {
        &self.added_docs
    }

    /// The phrases occurring in at least one added document.
    pub fn added_phrase_ids(&self) -> impl Iterator<Item = PhraseId> + '_ {
        self.added_phrases.keys().copied()
    }

    /// Local ids of added documents that contain `phrase` (sorted).
    pub fn added_containing(&self, phrase: PhraseId) -> &[u32] {
        self.added_phrases
            .get(&phrase)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Local ids (sorted) of added documents matching `query`: the union
    /// (OR) or intersection (AND) of the per-feature added-doc lists —
    /// the delta-side half of materializing `D'` over the updated corpus.
    pub fn added_matching(&self, query: &Query) -> Vec<u32> {
        let lists: Vec<&[u32]> = query
            .features
            .iter()
            .map(|f| {
                self.added_features
                    .get(&f.encode())
                    .map(Vec::as_slice)
                    .unwrap_or(&[])
            })
            .collect();
        match query.op {
            Operator::Or => {
                let mut all: Vec<u32> = lists.concat();
                all.sort_unstable();
                all.dedup();
                all
            }
            Operator::And => {
                let Some((first, rest)) = lists.split_first() else {
                    return Vec::new();
                };
                let mut acc: Vec<u32> = first.to_vec();
                for l in rest {
                    acc.retain(|x| l.binary_search(x).is_ok());
                    if acc.is_empty() {
                        break;
                    }
                }
                acc
            }
        }
    }

    /// A cheap change fingerprint. Every state-changing mutation — and
    /// every freshly constructed `DeltaIndex`, so even a wholesale
    /// in-place replacement with identical counts — yields a new value;
    /// no-ops (re-deleting an already-deleted document) keep it stable.
    /// Callers use it to make cache/epoch invalidation conditional on an
    /// actual state change.
    pub fn fingerprint(&self) -> u64 {
        self.stamp
    }

    /// The corrected `P(q|p)` given the stale probability from the list
    /// index.
    ///
    /// With `J = |docs(q) ∩ docs(p)|` and `F = |docs(p)|` in the base
    /// corpus (recovered from `stale_prob = J/F` and the base df), the
    /// corrected probability is
    /// `(J + J_add − J_del) / (F + F_add − F_del)`.
    pub fn adjust_prob(
        &self,
        index: &CorpusIndex,
        feature: Feature,
        phrase: PhraseId,
        stale_prob: f64,
    ) -> f64 {
        if self.is_empty() {
            return stale_prob;
        }
        self.corrections
            // lint-allow: relaxed-ordering — monotone correction counter, read only by stats
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let base_df = index.phrases.df(phrase) as f64;
        let base_joint = (stale_prob * base_df).round();

        let added_p = self.added_phrases.get(&phrase);
        let added_q = self.added_features.get(&feature.encode());
        let add_joint = match (added_q, added_p) {
            (Some(q), Some(p)) => sorted_intersection_len(q, p) as f64,
            _ => 0.0,
        };
        let add_p = added_p.map(|v| v.len()).unwrap_or(0) as f64;

        let (del_joint, del_p) = if self.deleted.is_empty() {
            (0.0, 0.0)
        } else {
            let p_postings = index.phrases.phrase(phrase);
            let q_postings = index.features.feature(feature);
            let mut del_joint = 0usize;
            let mut del_p = 0usize;
            for d in p_postings.iter() {
                if self.deleted.contains(&d) {
                    del_p += 1;
                    if q_postings.contains(d) {
                        del_joint += 1;
                    }
                }
            }
            (del_joint as f64, del_p as f64)
        };

        let denom = base_df + add_p - del_p;
        if denom <= 0.0 {
            return 0.0;
        }
        ((base_joint + add_joint - del_joint) / denom).clamp(0.0, 1.0)
    }

    /// Corrected document frequency of a phrase (`freq(p, D)` after churn).
    pub fn adjusted_df(&self, index: &CorpusIndex, phrase: PhraseId) -> f64 {
        let base = index.phrases.df(phrase) as f64;
        let add = self
            .added_phrases
            .get(&phrase)
            .map(|v| v.len())
            .unwrap_or(0) as f64;
        let del = if self.deleted.is_empty() {
            0.0
        } else {
            index
                .phrases
                .phrase(phrase)
                .iter()
                .filter(|d| self.deleted.contains(d))
                .count() as f64
        };
        base + add - del
    }
}

fn sorted_intersection_len(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// A cursor that corrects each entry's probability against a [`DeltaIndex`]
/// as it streams by — the paper's "additional query ... performed on the
/// separate index" when a phrase is taken into the candidate set.
///
/// Entries whose *corrected* probability collapses to zero (every joint
/// document deleted) are skipped: the base lists omit zero-probability
/// pairs, and the corrected stream mirrors that invariant so SMJ's
/// presence test and AND's `-∞` semantics stay faithful to a rebuilt
/// index. `len()` is therefore an upper bound on the entries yielded.
pub struct AdjustedCursor<'a, C> {
    inner: C,
    delta: &'a DeltaIndex,
    index: &'a CorpusIndex,
    feature: Feature,
}

impl<'a, C> AdjustedCursor<'a, C> {
    /// Wraps `inner` (the stale list cursor for `feature`).
    pub fn new(inner: C, delta: &'a DeltaIndex, index: &'a CorpusIndex, feature: Feature) -> Self {
        Self {
            inner,
            delta,
            index,
            feature,
        }
    }

    fn adjust(&self, e: ListEntry) -> Option<ListEntry> {
        let prob = self
            .delta
            .adjust_prob(self.index, self.feature, e.phrase, e.prob);
        (prob > 0.0).then_some(ListEntry {
            phrase: e.phrase,
            prob,
        })
    }
}

impl<C: ScoredListCursor> ScoredListCursor for AdjustedCursor<'_, C> {
    fn next_entry(&mut self) -> Option<ListEntry> {
        while let Some(e) = self.inner.next_entry() {
            if let Some(adjusted) = self.adjust(e) {
                return Some(adjusted);
            }
        }
        None
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn position(&self) -> usize {
        self.inner.position()
    }
}

/// [`AdjustedCursor`]'s phrase-id-ordered sibling: corrects an
/// [`IdListCursor`] stream (skipping corrected zeros), which is what makes
/// delta-corrected SMJ possible — the paper's "corrections make SMJ exact
/// again" — without SMJ knowing the delta exists.
pub struct AdjustedIdCursor<'a, C> {
    inner: AdjustedCursor<'a, C>,
}

impl<C: IdListCursor> IdListCursor for AdjustedIdCursor<'_, C> {
    fn next_entry(&mut self) -> Option<ListEntry> {
        while let Some(e) = self.inner.inner.next_entry() {
            if let Some(adjusted) = self.inner.adjust(e) {
                return Some(adjusted);
            }
        }
        None
    }

    fn len(&self) -> usize {
        self.inner.inner.len()
    }
}

/// A [`ListBackend`] wrapper that serves §4.5.1-corrected `P(q|p)` values
/// through *every* access path — score cursors, id cursors and random
/// probes — so NRA, SMJ, TA and the exact scorer all honour one side
/// index over any underlying backend (memory, disk, or a phrase-id shard
/// of either).
///
/// The three access paths stay mutually consistent: all serve exactly the
/// base backend's pairs with corrected probabilities, with corrected-zero
/// pairs omitted everywhere (probes included). Pairs that exist only in
/// added documents — a phrase/feature combination with no base joint
/// document — surface at the next offline rebuild ([compaction]), like
/// the paper's deferred new phrases.
///
/// [compaction]: crate::engine::QueryEngine::compact
pub struct DeltaOverlay<'a, B> {
    inner: &'a B,
    delta: &'a DeltaIndex,
    index: &'a CorpusIndex,
}

impl<'a, B: ListBackend> DeltaOverlay<'a, B> {
    /// Wraps `inner`, correcting against `delta` (probabilities recovered
    /// through `index`'s postings and dictionary).
    pub fn new(inner: &'a B, delta: &'a DeltaIndex, index: &'a CorpusIndex) -> Self {
        Self {
            inner,
            delta,
            index,
        }
    }
}

impl<B: ListBackend> ListBackend for DeltaOverlay<'_, B> {
    type ScoreCursor<'c>
        = AdjustedCursor<'c, B::ScoreCursor<'c>>
    where
        Self: 'c;
    type IdCursor<'c>
        = AdjustedIdCursor<'c, B::IdCursor<'c>>
    where
        Self: 'c;

    fn score_cursor(&self, feature: Feature, fraction: f64) -> Self::ScoreCursor<'_> {
        AdjustedCursor::new(
            self.inner.score_cursor(feature, fraction),
            self.delta,
            self.index,
            feature,
        )
    }

    fn id_cursor(&self, feature: Feature) -> Self::IdCursor<'_> {
        AdjustedIdCursor {
            inner: AdjustedCursor::new(
                self.inner.id_cursor(feature),
                self.delta,
                self.index,
                feature,
            ),
        }
    }

    fn probe(&self, feature: Feature, phrase: PhraseId) -> f64 {
        let stale = self.inner.probe(feature, phrase);
        if stale == 0.0 {
            // Absent base pairs stay absent (see the type docs): probes
            // must agree with what the corrected cursors stream.
            return 0.0;
        }
        self.delta.adjust_prob(self.index, feature, phrase, stale)
    }

    fn list_len(&self, feature: Feature) -> usize {
        self.inner.list_len(feature)
    }

    fn phrase_range(&self) -> Option<(PhraseId, PhraseId)> {
        self.inner.phrase_range()
    }

    fn io_fetches(&self) -> u64 {
        self.inner.io_fetches()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipm_corpus::{Corpus, CorpusBuilder, TokenizerConfig};
    use ipm_index::corpus_index::IndexConfig;
    use ipm_index::cursor::MemoryCursor;
    use ipm_index::mining::MiningConfig;
    use ipm_index::wordlists::{WordListConfig, WordPhraseLists};

    fn build(texts: &[&str]) -> (Corpus, CorpusIndex, WordPhraseLists) {
        let mut b = CorpusBuilder::new(TokenizerConfig::default());
        for t in texts {
            b.add_text(t);
        }
        let c = b.build();
        let index = CorpusIndex::build(
            &c,
            &IndexConfig {
                mining: MiningConfig {
                    min_df: 2,
                    max_len: 3,
                    min_len: 1,
                },
            },
        );
        let lists = WordPhraseLists::build(&c, &index, &WordListConfig::default());
        (c, index, lists)
    }

    const BASE: &[&str] = &["a b c", "a b", "b c", "a c", "a b c d", "d b"];

    #[test]
    fn empty_delta_is_identity() {
        let (c, index, lists) = build(BASE);
        let delta = DeltaIndex::new();
        let f = Feature::Word(c.word_id("a").unwrap());
        for e in lists.list(f) {
            assert_eq!(delta.adjust_prob(&index, f, e.phrase, e.prob), e.prob);
        }
    }

    #[test]
    fn added_documents_match_full_rebuild() {
        let (c, index, lists) = build(BASE);
        // Delta: add two documents with known content.
        let a = c.word_id("a").unwrap();
        let b = c.word_id("b").unwrap();
        let mut delta = DeltaIndex::new();
        delta.add_document(&index, &[a, b], &[]);
        delta.add_document(&index, &[b], &[]);
        assert_eq!(delta.num_added(), 2);

        // Ground truth: rebuild over the base + the two new docs.
        let extended: Vec<&str> = BASE.iter().copied().chain(["a b", "b"]).collect();
        let (c2, index2, lists2) = build(&extended);

        let fa = Feature::Word(a);
        for e in lists.list(fa) {
            let adjusted = delta.adjust_prob(&index, fa, e.phrase, e.prob);
            // Map the phrase to the rebuilt index (vocab ids are identical
            // because the base documents were interned first).
            let words = index.dict.words(e.phrase).unwrap();
            let p2 = index2.dict.get(words).expect("phrase survives rebuild");
            let want = lists2
                .list(Feature::Word(c2.word_id("a").unwrap()))
                .iter()
                .find(|x| x.phrase == p2)
                .map(|x| x.prob)
                .unwrap_or(0.0);
            assert!(
                (adjusted - want).abs() < 1e-9,
                "phrase {:?}: adjusted {adjusted} want {want}",
                words
            );
        }
    }

    #[test]
    fn deleted_documents_match_full_rebuild() {
        let (c, index, lists) = build(BASE);
        let mut delta = DeltaIndex::new();
        delta.delete_document(DocId(0)); // remove "a b c"
        assert_eq!(delta.num_deleted(), 1);

        let remaining: Vec<&str> = BASE[1..].to_vec();
        let (c2, index2, lists2) = build(&remaining);

        let fa = Feature::Word(c.word_id("a").unwrap());
        for e in lists.list(fa) {
            let adjusted = delta.adjust_prob(&index, fa, e.phrase, e.prob);
            let words = index.dict.words(e.phrase).unwrap();
            // The phrase may have fallen below min_df in the rebuilt corpus;
            // compare against raw postings arithmetic instead of the dict.
            let want = match index2.dict.get(
                &words
                    .iter()
                    .map(|w| c2.word_id(c.words().term_unchecked(*w)).unwrap())
                    .collect::<Vec<_>>(),
            ) {
                Some(p2) => lists2
                    .list(Feature::Word(c2.word_id("a").unwrap()))
                    .iter()
                    .find(|x| x.phrase == p2)
                    .map(|x| x.prob)
                    .unwrap_or(0.0),
                None => {
                    // fell out of the dictionary; compute directly
                    let dp = index.phrases.phrase(e.phrase);
                    let dq = index.features.feature(fa);
                    let joint = dp
                        .iter()
                        .filter(|d| d.raw() != 0 && dq.contains(*d))
                        .count() as f64;
                    let df = dp.iter().filter(|d| d.raw() != 0).count() as f64;
                    if df == 0.0 {
                        0.0
                    } else {
                        joint / df
                    }
                }
            };
            assert!(
                (adjusted - want).abs() < 1e-9,
                "phrase {words:?}: adjusted {adjusted} want {want}"
            );
        }
    }

    #[test]
    fn delete_is_idempotent() {
        let (_, index, lists) = build(BASE);
        let mut delta = DeltaIndex::new();
        delta.delete_document(DocId(1));
        delta.delete_document(DocId(1));
        assert_eq!(delta.num_deleted(), 1);
        let _ = (index, lists);
    }

    #[test]
    fn adjusted_df_tracks_churn() {
        let (c, index, _) = build(BASE);
        let a = c.word_id("a").unwrap();
        let b = c.word_id("b").unwrap();
        let ab = index.dict.get(&[a, b]).unwrap();
        let base_df = index.phrases.df(ab) as f64;
        let mut delta = DeltaIndex::new();
        delta.add_document(&index, &[a, b, b], &[]);
        assert_eq!(delta.adjusted_df(&index, ab), base_df + 1.0);
        delta.delete_document(DocId(0)); // contains "a b"
        assert_eq!(delta.adjusted_df(&index, ab), base_df);
    }

    #[test]
    fn adjusted_cursor_streams_corrected_probs() {
        let (c, index, lists) = build(BASE);
        let a = c.word_id("a").unwrap();
        let b = c.word_id("b").unwrap();
        let mut delta = DeltaIndex::new();
        delta.add_document(&index, &[a, b], &[]);
        let fa = Feature::Word(a);
        let base_list = lists.list(fa);
        let mut cur = AdjustedCursor::new(MemoryCursor::new(base_list), &delta, &index, fa);
        assert_eq!(cur.len(), base_list.len());
        let mut n = 0;
        while let Some(e) = cur.next_entry() {
            let want = delta.adjust_prob(&index, fa, e.phrase, base_list[n].prob);
            assert_eq!(e.prob, want);
            n += 1;
        }
        assert_eq!(n, base_list.len());
    }

    #[test]
    fn overlay_serves_corrected_values_through_every_access_path() {
        use ipm_index::backend::{ListBackend, MemoryBackend};
        use ipm_index::wordlists::IdOrderedLists;

        let (c, index, lists) = build(BASE);
        let idl = IdOrderedLists::from_score_ordered(&lists);
        let base = MemoryBackend::new(&lists, &idl);
        let a = c.word_id("a").unwrap();
        let b = c.word_id("b").unwrap();
        let mut delta = DeltaIndex::new();
        delta.add_document(&index, &[a, b], &[]);
        delta.delete_document(DocId(0));
        let overlay = DeltaOverlay::new(&base, &delta, &index);

        for &w in &[a, b] {
            let f = Feature::Word(w);
            // Score cursor: same phrases (minus corrected zeros), each
            // probability equal to a direct adjust_prob call.
            let mut cur = overlay.score_cursor(f, 1.0);
            let mut seen = 0;
            while let Some(e) = cur.next_entry() {
                assert!(e.prob > 0.0, "corrected zeros must be skipped");
                seen += 1;
                // The probe path agrees with the cursor entry exactly.
                assert_eq!(overlay.probe(f, e.phrase).to_bits(), e.prob.to_bits());
            }
            assert!(seen > 0);
            // Id cursor: ascending ids, same corrected multiset as the
            // score cursor.
            let mut idc = overlay.id_cursor(f);
            let mut id_pairs: Vec<(ipm_corpus::PhraseId, u64)> = Vec::new();
            let mut prev = None;
            while let Some(e) = IdListCursor::next_entry(&mut idc) {
                if let Some(p) = prev {
                    assert!(e.phrase > p, "id order violated");
                }
                prev = Some(e.phrase);
                id_pairs.push((e.phrase, e.prob.to_bits()));
            }
            let mut score_pairs: Vec<(ipm_corpus::PhraseId, u64)> = Vec::new();
            let mut cur = overlay.score_cursor(f, 1.0);
            while let Some(e) = cur.next_entry() {
                score_pairs.push((e.phrase, e.prob.to_bits()));
            }
            score_pairs.sort_unstable();
            id_pairs.sort_unstable();
            assert_eq!(score_pairs, id_pairs, "access paths must agree");
        }
        // A pair absent from the base backend stays absent through the
        // overlay (consistency with the cursors).
        assert_eq!(
            overlay.probe(Feature::Word(a), ipm_corpus::PhraseId(u32::MAX)),
            0.0
        );
        // Range/ownership delegate.
        assert_eq!(overlay.phrase_range(), base.phrase_range());
        assert_eq!(overlay.io_fetches(), 0);
    }

    #[test]
    fn added_matching_unions_and_intersects() {
        let (c, index, _) = build(BASE);
        let a = c.word_id("a").unwrap();
        let b = c.word_id("b").unwrap();
        let mut delta = DeltaIndex::new();
        delta.add_document(&index, &[a], &[]); // local 0: a only
        delta.add_document(&index, &[a, b], &[]); // local 1: both
        delta.add_document(&index, &[b], &[]); // local 2: b only
        let q_or = crate::query::Query::from_words(&c, &["a", "b"], Operator::Or).unwrap();
        let q_and = crate::query::Query::from_words(&c, &["a", "b"], Operator::And).unwrap();
        assert_eq!(delta.added_matching(&q_or), vec![0, 1, 2]);
        assert_eq!(delta.added_matching(&q_and), vec![1]);
        assert_eq!(delta.added_docs().len(), 3);
    }

    #[test]
    fn fingerprint_moves_on_every_state_change_and_only_then() {
        let (_, index, _) = build(BASE);
        let mut delta = DeltaIndex::new();
        let f0 = delta.fingerprint();
        // No-op: re-deleting keeps the fingerprint stable.
        delta.delete_document(DocId(1));
        let f1 = delta.fingerprint();
        assert_ne!(f0, f1);
        delta.delete_document(DocId(1));
        assert_eq!(delta.fingerprint(), f1);
        // Adds always move it.
        delta.add_document(&index, &[WordId(0)], &[]);
        let f2 = delta.fingerprint();
        assert_ne!(f1, f2);
        // A wholesale replacement with identical counts still moves it:
        // two independently built deltas never share a fingerprint.
        let mut other = DeltaIndex::new();
        other.delete_document(DocId(9));
        other.add_document(&index, &[WordId(1)], &[]);
        assert_eq!(
            (other.num_added(), other.num_deleted()),
            (delta.num_added(), delta.num_deleted())
        );
        assert_ne!(other.fingerprint(), delta.fingerprint());
    }

    #[test]
    fn new_phrase_only_counts_after_rebuild() {
        // A phrase absent from the dictionary is not tracked by the delta
        // (the paper defers new phrases to the offline rebuild).
        let (c, index, _) = build(BASE);
        let mut delta = DeltaIndex::new();
        let z = 10_000; // unseen word id
        delta.add_document(&index, &[WordId(z), WordId(z + 1)], &[]);
        // No phrase entries should have been recorded.
        assert_eq!(delta.added_phrases.len(), 0);
        let _ = c;
    }

    #[test]
    fn facet_features_adjust_too() {
        let mut b = CorpusBuilder::new(TokenizerConfig::default());
        b.add_text_with_facets("m n", &[("t", "x")]);
        b.add_text_with_facets("m n", &[("t", "x")]);
        b.add_text("m n");
        let c = b.build();
        let index = CorpusIndex::build(
            &c,
            &IndexConfig {
                mining: MiningConfig {
                    min_df: 2,
                    max_len: 2,
                    min_len: 1,
                },
            },
        );
        let mn = index
            .dict
            .get(&[c.word_id("m").unwrap(), c.word_id("n").unwrap()])
            .unwrap();
        let facet = c.facet_id("t:x").unwrap();
        let ff = Feature::Facet(facet);
        let stale = 2.0 / 3.0;
        let mut delta = DeltaIndex::new();
        // Add a doc containing "m n" with the facet: joint 3/4.
        delta.add_document(
            &index,
            &[c.word_id("m").unwrap(), c.word_id("n").unwrap()],
            &[facet],
        );
        let adjusted = delta.adjust_prob(&index, ff, mn, stale);
        assert!((adjusted - 3.0 / 4.0).abs() < 1e-12);
    }
}
