//! Alternative interestingness formulations (paper §1 and §7).
//!
//! The paper scores with the normalized-frequency measure of Eq. 1 but
//! notes "there are alternative formulations for interestingness such as
//! pointwise mutual information", and closes by asking whether the
//! independence assumption "can be used to simplify other kinds of
//! interestingness formulations" (§7, future work). This module answers
//! for the two PMI-family measures, under the document-frequency event
//! model (one uniform draw of a document):
//!
//! * `P(p) = df(p)/|D|`, `P(D') = |D'|/|D|`, `P(p, D') = freq(p, D')/|D|`,
//!   and Eq. 1's `I(p, D') = freq(p, D')/df(p) = P(D'|p)`.
//! * **PMI**: `log(P(p, D') / (P(p)·P(D'))) = log I + log(|D|/|D'|)`.
//!   For a fixed query the second term is constant, so PMI is a strictly
//!   increasing transform of `I` — *every* top-k machinery in this crate
//!   (NRA, SMJ, TA, exact) already answers PMI queries verbatim, only the
//!   displayed score changes. [`pmi_from_interestingness`] performs the
//!   transform; the rank-equivalence is tested below and in the
//!   integration suite.
//! * **NPMI**: `PMI / (−log P(p, D'))`. The denominator varies *per
//!   phrase*, so NPMI genuinely reranks. It still needs nothing beyond
//!   what the framework has: `I` (estimated from the lists under
//!   independence), `df(p)` (stored with the dictionary), and `|D'|`
//!   (set algebra over the `r` feature postings — no forward lists, no
//!   scan of `D'`). [`rescore_npmi`] converts a hit list in place;
//!   over-fetching NRA candidates and rescoring gives an approximate
//!   NPMI top-k ([`crate::miner::PhraseMiner::top_k_npmi`]).

use crate::query::Query;
use crate::result::{sort_hits, PhraseHit};
use ipm_index::corpus_index::CorpusIndex;
use ipm_index::postings::Postings;

/// Which interestingness formulation scores the results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Measure {
    /// Eq. 1: `freq(p, D') / freq(p, D)`.
    #[default]
    Interestingness,
    /// Pointwise mutual information of the phrase and the sub-collection.
    Pmi,
    /// PMI normalized by `−log P(p, D')` (in `[−1, 1]`).
    Npmi,
}

/// PMI from Eq. 1's interestingness: `ln I + ln(|D| / |D'|)`.
///
/// Returns `f64::NEG_INFINITY` when `interestingness` is 0 (the phrase
/// does not occur in `D'`).
pub fn pmi_from_interestingness(
    interestingness: f64,
    subset_size: usize,
    corpus_size: usize,
) -> f64 {
    debug_assert!(subset_size > 0 && corpus_size >= subset_size);
    interestingness.ln() + (corpus_size as f64 / subset_size as f64).ln()
}

/// NPMI from Eq. 1's interestingness and the phrase's global document
/// frequency.
///
/// `P(p, D') = I · df / |D|`; when that joint probability is 1 (the phrase
/// is in every document and `D' = D`) NPMI is 1 by convention.
pub fn npmi_from_interestingness(
    interestingness: f64,
    df: usize,
    subset_size: usize,
    corpus_size: usize,
) -> f64 {
    if interestingness <= 0.0 {
        return -1.0; // no co-occurrence: NPMI's lower end
    }
    let joint = (interestingness * df as f64 / corpus_size as f64).min(1.0);
    let denom = -joint.ln();
    if denom <= f64::EPSILON {
        return 1.0;
    }
    let pmi = pmi_from_interestingness(interestingness, subset_size, corpus_size);
    (pmi / denom).clamp(-1.0, 1.0)
}

/// Exact top-k under any [`Measure`]: materializes `D'`, computes exact
/// per-phrase interestingness, and maps it through the measure.
pub fn exact_top_k_measure(
    index: &CorpusIndex,
    query: &Query,
    k: usize,
    measure: Measure,
) -> Vec<PhraseHit> {
    let subset = crate::exact::materialize_subset(index, query);
    let mut hits = crate::exact::exact_scores_for_subset(index, &subset);
    apply_measure(index, &subset, &mut hits, measure);
    sort_hits(&mut hits);
    hits.truncate(k);
    hits
}

/// Maps `hits` (scores = Eq. 1 interestingness) through `measure` in place.
/// No-op for [`Measure::Interestingness`].
pub fn apply_measure(
    index: &CorpusIndex,
    subset: &Postings,
    hits: &mut [PhraseHit],
    measure: Measure,
) {
    let n = subset.len();
    let corpus = index.num_docs();
    if n == 0 {
        return;
    }
    for h in hits.iter_mut() {
        let score = match measure {
            Measure::Interestingness => h.score,
            Measure::Pmi => pmi_from_interestingness(h.score, n, corpus),
            Measure::Npmi => {
                npmi_from_interestingness(h.score, index.phrases.df(h.phrase), n, corpus)
            }
        };
        *h = PhraseHit::exact(h.phrase, score);
    }
}

/// Rescores approximate hits (estimated interestingness on `score`) to
/// estimated NPMI and re-sorts, using only list-framework inputs: the
/// estimates, `df(p)` from the dictionary, and `|D'|` from feature-postings
/// set algebra.
pub fn rescore_npmi(index: &CorpusIndex, query: &Query, hits: &mut Vec<PhraseHit>) {
    let subset_size = crate::exact::materialize_subset(index, query).len();
    if subset_size == 0 {
        hits.clear();
        return;
    }
    let corpus = index.num_docs();
    for h in hits.iter_mut() {
        let est = crate::scoring::estimated_interestingness(query.op, h.score);
        let npmi = npmi_from_interestingness(est, index.phrases.df(h.phrase), subset_size, corpus);
        *h = PhraseHit::exact(h.phrase, npmi);
    }
    sort_hits(hits);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Operator;
    use ipm_corpus::{Corpus, CorpusBuilder, PhraseId, TokenizerConfig};
    use ipm_index::corpus_index::IndexConfig;
    use ipm_index::mining::MiningConfig;

    fn setup() -> (Corpus, CorpusIndex) {
        let mut b = CorpusBuilder::new(TokenizerConfig::default());
        for t in [
            "q o d s", "q o x", "d s q", "q o d s", "x y", "d s x", "q o y", "d s y x",
        ] {
            b.add_text(t);
        }
        let c = b.build();
        let index = CorpusIndex::build(
            &c,
            &IndexConfig {
                mining: MiningConfig {
                    min_df: 2,
                    max_len: 3,
                    min_len: 1,
                },
            },
        );
        (c, index)
    }

    #[test]
    fn pmi_is_log_interestingness_plus_query_constant() {
        let i = 0.5;
        let pmi = pmi_from_interestingness(i, 4, 16);
        assert!((pmi - (0.5f64.ln() + 4.0f64.ln())).abs() < 1e-12);
    }

    #[test]
    fn pmi_ranking_equals_interestingness_ranking() {
        // PMI is a strictly increasing transform of I for a fixed query, so
        // the top-k (including tie order by phrase id) must be identical.
        let (c, index) = setup();
        for (terms, op) in [
            (vec!["q", "o"], Operator::And),
            (vec!["q", "o"], Operator::Or),
            (vec!["d", "x"], Operator::Or),
        ] {
            let q = Query::from_words(&c, &terms, op).unwrap();
            let by_i: Vec<PhraseId> = crate::exact::exact_top_k(&index, &q, 50)
                .iter()
                .map(|h| h.phrase)
                .collect();
            let by_pmi: Vec<PhraseId> = exact_top_k_measure(&index, &q, 50, Measure::Pmi)
                .iter()
                .map(|h| h.phrase)
                .collect();
            assert_eq!(by_i, by_pmi, "{terms:?} {op}");
        }
    }

    #[test]
    fn npmi_is_bounded_and_reranks() {
        let (c, index) = setup();
        let q = Query::from_words(&c, &["q", "o"], Operator::Or).unwrap();
        let hits = exact_top_k_measure(&index, &q, 100, Measure::Npmi);
        assert!(!hits.is_empty());
        for h in &hits {
            assert!((-1.0..=1.0).contains(&h.score), "{h:?}");
        }
        // NPMI reranks the I = 1 plateau: with I fixed at 1 the PMI
        // numerator `ln(|D|/|D'|)` is constant while the normalizer
        // `−ln(df/|D|)` shrinks as df grows, so NPMI *increases* with df —
        // among perfectly contained phrases it prefers the one whose
        // association spans more of the corpus (at df = |D'| it reaches
        // exactly 1). That is precisely the behaviour Eq. 1 cannot express
        // (it ties all of them at 1.0).
        let perfect: Vec<_> = {
            let subset = crate::exact::materialize_subset(&index, &q);
            crate::exact::exact_scores_for_subset(&index, &subset)
                .into_iter()
                .filter(|h| (h.score - 1.0).abs() < 1e-12)
                .collect()
        };
        if perfect.len() >= 2 {
            let mut npmi: Vec<(usize, f64)> = perfect
                .iter()
                .map(|h| {
                    let df = index.phrases.df(h.phrase);
                    let subset = crate::exact::materialize_subset(&index, &q);
                    (
                        df,
                        npmi_from_interestingness(1.0, df, subset.len(), index.num_docs()),
                    )
                })
                .collect();
            npmi.sort_by_key(|e| e.0);
            for w in npmi.windows(2) {
                assert!(
                    w[0].1 <= w[1].1 + 1e-12,
                    "NPMI must not decrease with df at I = 1: {npmi:?}"
                );
            }
        }
    }

    #[test]
    fn npmi_perfect_cooccurrence_is_one() {
        // Phrase in every document, D' = D.
        assert_eq!(npmi_from_interestingness(1.0, 10, 10, 10), 1.0);
    }

    #[test]
    fn npmi_absent_phrase_is_minus_one() {
        assert_eq!(npmi_from_interestingness(0.0, 3, 4, 10), -1.0);
    }

    #[test]
    fn apply_measure_interestingness_is_identity() {
        let (c, index) = setup();
        let q = Query::from_words(&c, &["q"], Operator::Or).unwrap();
        let subset = crate::exact::materialize_subset(&index, &q);
        let mut hits = crate::exact::exact_scores_for_subset(&index, &subset);
        let before = hits.clone();
        apply_measure(&index, &subset, &mut hits, Measure::Interestingness);
        for (a, b) in before.iter().zip(&hits) {
            assert_eq!(a.phrase, b.phrase);
            assert!((a.score - b.score).abs() < 1e-12);
        }
    }

    #[test]
    fn rescore_npmi_empty_subset_clears() {
        let (c, index) = setup();
        // "q AND y": q in {0,1,2,3,6}, y in {4,6,7} → doc 6 only... pick a
        // truly empty combination instead: "o AND y" shares doc 6 too, so
        // use words with disjoint postings: "o" and... construct via facet-
        // free check: if no empty subset exists, skip.
        let q = Query::from_words(&c, &["x", "o"], Operator::And).unwrap();
        let subset = crate::exact::materialize_subset(&index, &q);
        if subset.is_empty() {
            let mut hits = vec![PhraseHit::exact(PhraseId(0), 0.5)];
            rescore_npmi(&index, &q, &mut hits);
            assert!(hits.is_empty());
        }
    }
}
