//! A shared, thread-safe query front-end over pluggable list backends.
//!
//! The paper's closing claim is that list-based scoring makes interesting-
//! phrase mining "a feasible task for search-like interactive systems".
//! Such a system serves many concurrent queries over one immutable index.
//! [`QueryEngine`] packages a built [`PhraseMiner`] behind an [`Arc`] with:
//!
//! * a string-query API and per-query algorithm choice (all four: NRA,
//!   SMJ, TA, exact);
//! * per-query **backend** choice ([`BackendChoice`]): the in-memory lists
//!   or the simulated-disk image (`ipm_storage::DiskLists`), which is
//!   built lazily on first use and reports per-query [`IoStats`];
//! * a sharded LRU **result cache** keyed by `(query, k, options)`
//!   ([`crate::cache`]), so repeated interactive queries skip list
//!   traversal entirely — hit/miss counters sit next to
//!   [`QueryEngine::queries_served`];
//! * optional §5.6 redundancy filtering, composed with every algorithm,
//!   backend and NRA fraction;
//! * **partitioned intra-query execution**: requests are resolved by a
//!   planner ([`crate::plan::QueryPlan`]) into an algorithm, a backend and
//!   a shard fanout; the executor runs the algorithm per phrase-id shard
//!   on scoped threads and merges the local top-k under the deterministic
//!   result order (see [`crate::plan`] for why the merge is exact).
//!   Sharded index layouts (memory and disk) are built lazily per fanout
//!   and cached.
//!
//! Each index *generation* is immutable after build, so clones of the
//! engine can be handed to any number of threads; mutation happens through
//! the §4.5.1 **lifecycle** instead (`ingest_document` / `delete_document`
//! → per-query [`crate::delta::DeltaOverlay`] corrections →
//! [`QueryEngine::compact`], which rebuilds offline and atomically swaps
//! the serving generation). Every mutation bumps a monotonic **epoch**
//! that tags [`CacheKey`]s, so cached results age out by key mismatch
//! instead of wholesale cache clears. Disk-backed requests serialize on
//! an internal lock: the simulated buffer pools model one device set, and
//! per-query cold-cache IO accounting (the paper's §5.5 methodology) is
//! only meaningful for one query at a time — shards of a single query
//! still run in parallel, each against its own per-shard pool.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

use crate::budget::ApproxReason;
use crate::budget::{Budget, Completeness, SearchError, Trip};
use crate::cache::{CacheConfig, CacheStats, ShardedLruCache};
use crate::delta::DeltaIndex;
use crate::miner::PhraseMiner;
use crate::parse::ParseError;
use crate::plan::{
    run_one_shard, run_query_on, ExecContext, ExecStats, NraTuning, QueryPlan, ShardExecutor,
    ShardOutcome,
};
use crate::query::{Operator, Query};
use crate::redundancy::RedundancyConfig;
use crate::request::SearchRequest;
use crate::result::PhraseHit;
use crate::scoring::estimated_interestingness;
use ipm_corpus::hash::FxHashMap;
use ipm_corpus::{DocId, FacetId, Feature, WordId};
use ipm_index::backend::{ListBackend, MemoryBackend};
use ipm_index::sharding::{ListShard, ShardedWordLists};
use ipm_obs::{
    Counter, Gauge, Histogram, QueryTrace, Registry, SlowQueryConfig, SlowQueryLog, StageKind,
    TraceMeta, Tracer,
};
use ipm_storage::{
    BlockImage, CachedBlockImage, CostModel, DecodeStats, DecodedBlockCache, DiskLists, IoStats,
    PoolConfig, ShardedBlockImage, ShardedDiskImage,
};

/// Which retrieval algorithm serves a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Algorithm {
    /// NRA over score-ordered lists (paper Alg. 1) — the default.
    #[default]
    Nra,
    /// Sort-merge join over ID-ordered lists (paper Alg. 2).
    Smj,
    /// The threshold algorithm with random probes into the ID-ordered
    /// lists.
    Ta,
    /// The exact scorer (ground truth; linear in `|D'|`).
    Exact,
}

impl Algorithm {
    /// The wire / metrics-label name.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Nra => "nra",
            Algorithm::Smj => "smj",
            Algorithm::Ta => "ta",
            Algorithm::Exact => "exact",
        }
    }
}

/// Which list backend serves a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendChoice {
    /// The in-memory word lists — the default.
    #[default]
    Memory,
    /// The serialized disk image behind the simulated buffer pool; the
    /// response carries the query's [`IoStats`].
    Disk,
    /// The block-compressed image (`ipm_storage::BlockImage`): bit-packed
    /// 128-entry blocks with skip metadata behind a buffer pool of its
    /// own, charging per-*block* fetches — skipped blocks cost no IO. The
    /// response carries the query's [`IoStats`]; scores are bit-identical
    /// to the memory backend (integer-rational dequantization).
    Block,
}

impl BackendChoice {
    /// The wire / metrics-label name.
    pub fn name(self) -> &'static str {
        match self {
            BackendChoice::Memory => "memory",
            BackendChoice::Disk => "disk",
            BackendChoice::Block => "block",
        }
    }
}

/// Per-request options.
#[derive(Debug, Clone, Default)]
pub struct SearchOptions {
    /// Retrieval algorithm.
    pub algorithm: Algorithm,
    /// List backend.
    pub backend: BackendChoice,
    /// Fraction of each score-ordered list NRA may read (`1.0` = full;
    /// ignored by the other algorithms — SMJ's fraction is fixed at build
    /// time, paper §4.4.2). Composes with `redundancy`.
    pub nra_fraction: Option<f64>,
    /// Optional §5.6 redundancy filter applied post-retrieval (the engine
    /// over-fetches until `k` survivors are found or candidates run out).
    pub redundancy: Option<RedundancyConfig>,
    /// Apply the engine's attached §4.5.1 [`DeltaIndex`] corrections —
    /// honoured uniformly by **all four algorithms over both backends and
    /// every shard fanout**, via a [`crate::delta::DeltaOverlay`] wrapped
    /// around each shard backend (the exact scorer uses its delta-aware
    /// arm instead). Per the paper, corrections keep SMJ exact, and this
    /// engine extends that to TA (which surrenders its threshold stop —
    /// the stale order cannot justify it) and the exact scorer, while NRA
    /// stays `Approximate { delta_corrections }`: its pruning bounds were
    /// computed from the stale list order. A no-op when no delta is
    /// attached.
    pub use_delta: bool,
    /// Intra-query shard fanout: run this request over that many disjoint
    /// phrase-id partitions in parallel and merge the per-shard top-k
    /// (exact on the default full-list path; see [`crate::plan`]). `None`
    /// uses the engine's configured default ([`EngineConfig::shards`]);
    /// the planner clamps to [`crate::plan::MAX_SHARDS`].
    pub shards: Option<usize>,
    /// Collect a structured [`QueryTrace`] for this request and return it
    /// in [`SearchResponse::trace`]. Tracing never changes results — the
    /// cache key deliberately excludes this flag, so a traced request
    /// shares cached entries with untraced ones (and a traced cache hit
    /// reports just the probe stages).
    pub trace: bool,
}

/// Engine construction options.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Fraction of each score-ordered list serialized into the lazily
    /// built disk image (`1.0` = full lists). Below `1.0`, disk-backed
    /// NRA automatically runs with partial-list bound semantics (the
    /// truncated tail may hold any phrase), and disk-backed SMJ/TA
    /// become approximate exactly like their in-memory partial-list
    /// counterparts (paper §4.3/§4.4.2).
    pub disk_fraction: f64,
    /// Result-cache sizing; `None` disables caching.
    pub cache: Option<CacheConfig>,
    /// Default intra-query shard fanout for requests that leave
    /// [`SearchOptions::shards`] unset. `1` (the default) executes
    /// unsharded on the calling thread; `N > 1` splits every list by
    /// phrase-id range into `N` partitions served on `N` scoped threads,
    /// turning per-query latency into a function of core count.
    pub shards: usize,
    /// Buffer-pool geometry of the lazily built disk image(s) — page
    /// size, capacity, lookahead (the paper's §5.5 defaults). Smaller
    /// pages make per-query fetch counts finer-grained, which tightens
    /// what an [`crate::budget::Budget`] IO cap can enforce.
    pub pool: PoolConfig,
    /// Simulated per-fetch costs of the disk image(s) (§5.5 defaults:
    /// 1 ms sequential, 10 ms random).
    pub cost: CostModel,
    /// Keep a ring buffer of traces for queries at or above a wall-time
    /// threshold ([`QueryEngine::slow_queries`]). `None` (the default)
    /// disables the log — and with it the internal tracing it forces on
    /// otherwise-untraced queries.
    pub slow_query: Option<SlowQueryConfig>,
    /// Capacity (in 128-entry blocks) of the decoded-block cache the
    /// **batch** executor shares across block-backed batch members, so
    /// queries that walk the same word lists decode each block once
    /// ([`QueryEngine::execute_batch`]). Entries are keyed by index epoch
    /// — a generation swap invalidates them for free, like the result
    /// cache. `0` disables the cache; single-query execution never uses
    /// it (per-query §5.5 decode accounting stays untouched either way —
    /// the cache sits behind the buffer-pool charge, so IO numbers are
    /// identical; only decode CPU is saved).
    pub decode_cache_blocks: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            disk_fraction: 1.0,
            cache: Some(CacheConfig::default()),
            shards: 1,
            pool: PoolConfig::default(),
            cost: CostModel::default(),
            slow_query: None,
            decode_cache_blocks: 4096,
        }
    }
}

/// One resolved result row.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// The raw hit (phrase id, score, bounds).
    pub hit: PhraseHit,
    /// The phrase rendered as text.
    pub text: String,
    /// The score mapped back to an interestingness estimate in `[0, 1]`.
    pub interestingness: f64,
}

/// A served response.
#[derive(Debug, Clone)]
pub struct SearchResponse {
    /// The parsed query that was executed.
    pub query: Query,
    /// Resolved hits, best first.
    pub hits: Vec<SearchHit>,
    /// Wall-clock service time.
    pub elapsed: Duration,
    /// Simulated IO performed by *this* request (disk backend only;
    /// `None` on the memory backend and on cache hits, which perform no
    /// list IO at all). For a sharded disk run this is the aggregate over
    /// all shard pools.
    pub io: Option<IoStats>,
    /// Whether the result came from the query cache.
    pub served_from_cache: bool,
    /// The shard fanout the planner resolved for this request (`1` =
    /// unsharded execution).
    pub shards: usize,
    /// How complete the result is: the exact top-k, an inherently
    /// approximate configuration (partial lists, truncated image, delta
    /// corrections — paper §4.3/§4.4), or a budget-truncated anytime
    /// result. Budget-truncated responses are never cached; cache hits
    /// report the completeness of the exact/approximate entry they serve.
    pub completeness: Completeness,
    /// The structured trace, when [`SearchOptions::trace`] asked for one
    /// (boxed: untraced responses pay one machine word).
    pub trace: Option<Box<QueryTrace>>,
}

/// One `shard_exec` call's execution parameters — what the wire-v5 verb
/// carries beyond the query itself. The coordinator (the in-process
/// fan-out or a remote router) owns fetch depth, seeded floor and batch
/// scaling; the shard just executes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardExecParams {
    /// Fetch depth (the coordinator's over-fetch for this round).
    pub fetch: usize,
    /// Total shard fanout the coordinator is scattering over.
    pub fanout: usize,
    /// This shard's index in `[0, fanout)`.
    pub shard: usize,
    /// Seeded NRA defence line (`-∞` when inactive).
    pub floor: f64,
    /// Fanout-scaled NRA prune batch (`None` keeps the configured batch).
    pub batch_size: Option<usize>,
}

/// One member of a [`QueryEngine::execute_batch`] call: the same request
/// surface as [`QueryEngine::execute_with_budget`], with a per-item
/// budget (use [`Budget::none`] for unbudgeted items).
#[derive(Debug)]
pub struct BatchItem<'a> {
    /// The parsed query.
    pub query: Query,
    /// Result size.
    pub k: usize,
    /// Per-item options (algorithm, backend, fanout, ...).
    pub options: SearchOptions,
    /// Per-item execution budget; trips truncate this item only.
    pub budget: &'a Budget,
}

/// The decoded-block cache binding one batch execution threads down to
/// the block backend: the shared cache, the batch's pinned epoch, and the
/// batch-local hit/miss tally.
struct DecodeBinding<'a> {
    cache: &'a DecodedBlockCache,
    epoch: u64,
    stats: &'a DecodeStats,
}

/// One fused batch member's precomputed execution: the shared scan's
/// hits for this member plus its view of the work counters. Carried
/// into `execute_one` in place of an `execute_uncached` run — cache
/// probe/insert, completeness, tracing and response assembly stay on
/// the one shared path.
struct FusedHits {
    hits: Vec<PhraseHit>,
    stats: ExecStats,
}

/// A cloneable, thread-safe handle to an immutable phrase-mining index.
#[derive(Debug, Clone)]
pub struct QueryEngine {
    inner: Arc<Inner>,
}

/// The cache key: every request field that can change the result. Public
/// so request coalescers (e.g. `ipm_server`'s single-flight layer) can key
/// their in-flight maps identically to the result cache — two requests
/// with equal keys are guaranteed to produce equal responses.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Encoded features, sorted — feature order never changes results, so
    /// `a AND b` and `b AND a` share an entry.
    features: Vec<u64>,
    op: Operator,
    k: usize,
    algorithm: Algorithm,
    backend: BackendChoice,
    /// `nra_fraction` bit pattern (`1.0` when unset).
    fraction_bits: u64,
    /// `redundancy.max_overlap` bit pattern, when set.
    redundancy_bits: Option<u64>,
    /// Whether delta corrections were requested. Together with `epoch`
    /// this fully determines the delta-corrected result: every delta
    /// mutation bumps the engine's epoch, so entries computed against an
    /// older corpus state simply stop matching.
    use_delta: bool,
    /// The engine's index **epoch** at key-build time — a monotonic
    /// counter bumped by every observable index mutation (ingest, delete,
    /// delta attach/update/detach that changes state, compaction).
    /// Epoch-tagging replaces wholesale `cache.clear()` on mutation:
    /// stale-epoch entries miss naturally and age out of the LRU, while
    /// read-heavy workloads keep their warm entries untouched across
    /// unrelated mutations of *other* engines and across no-op updates.
    epoch: u64,
    /// The planner-resolved shard fanout (request override or engine
    /// default, clamped). Approximate paths (partial fractions, truncated
    /// images, delta corrections) can legitimately return different
    /// results under different shard layouts, so cached entries must
    /// never be shared across fanouts — but requests that *resolve* to
    /// the same fanout (e.g. `None` vs an explicit default) share one
    /// entry.
    shards: usize,
}

impl CacheKey {
    /// Builds the key for one request. `resolved_shards` is the fanout
    /// the planner resolved for it ([`QueryPlan::resolve`] — resolve
    /// once, key once), so requests that resolve identically share one
    /// entry; `epoch` is the engine's index epoch
    /// ([`QueryEngine::epoch`]) the request executes against.
    pub fn new(
        query: &Query,
        k: usize,
        options: &SearchOptions,
        resolved_shards: usize,
        epoch: u64,
    ) -> Self {
        let mut features: Vec<u64> = query.features.iter().map(|f| f.encode()).collect();
        features.sort_unstable();
        Self {
            features,
            op: query.op,
            k,
            algorithm: options.algorithm,
            backend: options.backend,
            fraction_bits: options.nra_fraction.unwrap_or(1.0).to_bits(),
            redundancy_bits: options.redundancy.as_ref().map(|r| r.max_overlap.to_bits()),
            use_delta: options.use_delta,
            shards: resolved_shards,
            epoch,
        }
    }
}

/// Most distinct shard layouts the engine keeps cached at once. The
/// fanout is client-controllable per request (CLI flag, wire field) and
/// every layout pins a full copy of the word lists (plus, after a
/// disk-backed request, a serialized disk image) — without a bound, a
/// client sweeping fanouts 2..=64 would pin ~63 index-sized copies and
/// OOM the server. Least-recently-used non-default layouts are evicted;
/// in-flight queries keep theirs alive through their `Arc`.
const MAX_CACHED_LAYOUTS: usize = 4;

/// One lazily built shard layout: the in-memory partitions, plus (once a
/// disk-backed sharded request arrives) their serialized disk images.
#[derive(Debug)]
struct ShardedIndex {
    mem: ShardedWordLists,
    disk: OnceLock<ShardedDiskImage>,
    /// Lazily built block-compressed images, one per shard (first
    /// block-backed sharded request pays the encode).
    block: OnceLock<ShardedBlockImage>,
    /// Eviction stamp (engine-wide logical clock; larger = more recent).
    last_used: AtomicU64,
}

/// One immutable generation of the index: the miner plus every layout
/// lazily derived from it (disk image, shard layouts). Compaction builds
/// a fresh `IndexState` offline and swaps it in atomically; in-flight
/// queries keep serving from the generation their snapshot pinned.
#[derive(Debug)]
struct IndexState {
    miner: Arc<PhraseMiner>,
    /// Lazily built disk image (first disk-backed request pays the build).
    disk: OnceLock<Arc<DiskLists>>,
    /// Lazily built block-compressed image (first block-backed request
    /// pays the encode).
    block: OnceLock<Arc<BlockImage>>,
    /// Lazily built shard layouts, keyed by fanout (a request may ask for
    /// any fanout; layouts are built once and reused, bounded by
    /// [`MAX_CACHED_LAYOUTS`] with LRU eviction).
    sharded: RwLock<FxHashMap<usize, Arc<ShardedIndex>>>,
    /// Logical clock stamping layout use for eviction.
    layout_clock: AtomicU64,
}

impl IndexState {
    fn new(miner: Arc<PhraseMiner>) -> Self {
        Self {
            miner,
            disk: OnceLock::new(),
            block: OnceLock::new(),
            sharded: RwLock::new(FxHashMap::default()),
            layout_clock: AtomicU64::new(0),
        }
    }
}

/// The mutable head of the engine: which index generation serves, which
/// delta corrects it, and the epoch that names this exact combination.
/// Readers snapshot the whole struct under one read lock (three cheap
/// `Arc` clones), so a query always sees a *consistent* (epoch, index,
/// delta) triple — never a new epoch with an old delta or vice versa.
#[derive(Debug, Clone)]
struct LiveState {
    /// Monotonic index epoch: bumped by every observable mutation
    /// (ingest, delete, state-changing delta attach/update/detach,
    /// compaction). Tags every [`CacheKey`].
    epoch: u64,
    index: Arc<IndexState>,
    /// The attached §4.5.1 side index over inserted/deleted documents;
    /// `None` until an ingest/delete/[`QueryEngine::attach_delta`].
    delta: Option<Arc<DeltaIndex>>,
}

/// What [`QueryEngine::compact`] reports.
#[derive(Debug, Clone)]
pub struct CompactionReport {
    /// Whether a rebuild actually happened (`false` when the delta was
    /// empty or absent — compaction is then a no-op and the epoch does
    /// not move).
    pub compacted: bool,
    /// The epoch serving *after* the call.
    pub epoch: u64,
    /// Documents in the (possibly rebuilt) corpus.
    pub docs: usize,
    /// Phrases in the (possibly rebuilt) dictionary.
    pub phrases: usize,
    /// Added documents the rebuild absorbed.
    pub absorbed_adds: usize,
    /// Deletions the rebuild absorbed.
    pub absorbed_deletes: usize,
    /// Wall-clock cost of the rebuild (zero for a no-op).
    pub elapsed: Duration,
}

/// A snapshot of the engine's lifecycle counters (served by the wire
/// protocol's `stats` verb).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LifecycleStats {
    /// Current index epoch.
    pub epoch: u64,
    /// Documents ingested since engine construction.
    pub ingested: u64,
    /// Documents deleted since engine construction.
    pub deleted: u64,
    /// Compactions performed (no-ops excluded).
    pub compactions: u64,
    /// Documents currently tracked by the attached delta
    /// (added + deleted; `0` when no delta is attached).
    pub delta_docs: usize,
}

/// Aggregated list-access counters of one backend across every query the
/// engine served (uncached executions only — cache hits touch no lists).
/// Served by [`QueryEngine::access_totals`] and mirrored as the
/// per-backend `ipm_list_*` metric series.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessTotals {
    /// Sorted (sequential list) entry accesses.
    pub sorted_accesses: u64,
    /// Random accesses (TA probes, NRA resolution probes).
    pub random_probes: u64,
    /// Entries skipped via block-max metadata.
    pub entries_skipped: u64,
    /// Algorithm loop progress (NRA prune rounds, SMJ merge steps).
    pub rounds: u64,
}

/// Per-backend registry handles (one set per [`BackendChoice`]).
#[derive(Debug)]
struct BackendCounters {
    sorted_accesses: Counter,
    random_probes: Counter,
    entries_skipped: Counter,
    rounds: Counter,
}

/// The engine's observability surface: one [`Registry`] shared with
/// whoever embeds the engine (the server registers its own families on
/// it), pre-registered handles for everything the query path bumps, and
/// the optional slow-query ring.
#[derive(Debug)]
struct EngineObs {
    registry: Arc<Registry>,
    /// `ipm_queries_served_total` — kept in lockstep with `Inner::served`
    /// so the latency histogram's `_count` equals the served total.
    queries_served: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    sharded_queries: Counter,
    latency: Histogram,
    /// Batch-execution families: planner groups formed, items executed,
    /// group-size distribution, decodes saved by the shared-scan cache.
    batch_groups: Counter,
    batch_items: Counter,
    batch_group_size: Histogram,
    fused_saved: Counter,
    decode_hits: Counter,
    decode_misses: Counter,
    trip_deadline: Counter,
    trip_io: Counter,
    trip_steps: Counter,
    io_sequential: Counter,
    io_random: Counter,
    io_pool_hits: Counter,
    docs_ingested: Counter,
    docs_deleted: Counter,
    compactions: Counter,
    slow_queries: Counter,
    epoch: Gauge,
    delta_docs: Gauge,
    delta_corrections: Gauge,
    cached_layouts: Gauge,
    /// Indexed like [`BackendChoice`]: memory, disk, block.
    backends: [BackendCounters; 3],
    slow: Option<Arc<SlowQueryLog>>,
}

impl EngineObs {
    fn new(slow_query: Option<SlowQueryConfig>) -> Self {
        let registry = Arc::new(Registry::default());
        let r = &registry;
        let backend = |name: &'static str| BackendCounters {
            sorted_accesses: r.counter_with(
                "ipm_list_sorted_accesses_total",
                "Sorted list entry accesses across all served queries",
                &[("backend", name)],
            ),
            random_probes: r.counter_with(
                "ipm_list_random_probes_total",
                "Random list probes across all served queries",
                &[("backend", name)],
            ),
            entries_skipped: r.counter_with(
                "ipm_block_entries_skipped_total",
                "List entries skipped via block-max metadata",
                &[("backend", name)],
            ),
            rounds: r.counter_with(
                "ipm_algorithm_rounds_total",
                "Algorithm loop rounds (NRA prune rounds, SMJ merge steps)",
                &[("backend", name)],
            ),
        };
        Self {
            queries_served: r.counter(
                "ipm_queries_served_total",
                "Queries served, cache hits included",
            ),
            cache_hits: r.counter("ipm_cache_hits_total", "Result-cache hits"),
            cache_misses: r.counter("ipm_cache_misses_total", "Result-cache misses"),
            sharded_queries: r.counter(
                "ipm_queries_sharded_total",
                "Uncached executions that fanned out to more than one shard",
            ),
            latency: r.histogram(
                "ipm_query_latency_seconds",
                "End-to-end engine service time per query (cache hits included)",
            ),
            batch_groups: r.counter(
                "ipm_batch_groups_total",
                "Shared-scan groups formed by the batch planner",
            ),
            batch_items: r.counter(
                "ipm_batch_items_total",
                "Queries executed through the batch path",
            ),
            batch_group_size: r.histogram(
                "ipm_batch_group_size",
                "Members per shared-scan batch group",
            ),
            fused_saved: r.counter(
                "ipm_batch_fused_scans_saved_total",
                "Block decodes skipped because a batch member reused a cached decoded block",
            ),
            decode_hits: r.counter(
                "ipm_decode_cache_hits_total",
                "Decoded-block cache hits across all batch executions",
            ),
            decode_misses: r.counter(
                "ipm_decode_cache_misses_total",
                "Decoded-block cache misses across all batch executions",
            ),
            trip_deadline: r.counter_with(
                "ipm_budget_truncated_total",
                "Responses truncated by a tripped execution budget",
                &[("kind", "deadline")],
            ),
            trip_io: r.counter_with(
                "ipm_budget_truncated_total",
                "Responses truncated by a tripped execution budget",
                &[("kind", "io")],
            ),
            trip_steps: r.counter_with(
                "ipm_budget_truncated_total",
                "Responses truncated by a tripped execution budget",
                &[("kind", "steps")],
            ),
            io_sequential: r.counter_with(
                "ipm_io_fetches_total",
                "Simulated page fetches across all disk/block-backed queries",
                &[("kind", "sequential")],
            ),
            io_random: r.counter_with(
                "ipm_io_fetches_total",
                "Simulated page fetches across all disk/block-backed queries",
                &[("kind", "random")],
            ),
            io_pool_hits: r.counter(
                "ipm_io_pool_hits_total",
                "Buffer-pool page hits across all disk/block-backed queries",
            ),
            docs_ingested: r.counter(
                "ipm_docs_ingested_total",
                "Documents ingested since engine construction",
            ),
            docs_deleted: r.counter(
                "ipm_docs_deleted_total",
                "Documents deleted since engine construction",
            ),
            compactions: r.counter("ipm_compactions_total", "Compactions performed"),
            slow_queries: r.counter(
                "ipm_slow_queries_total",
                "Queries at or above the slow-query threshold",
            ),
            epoch: r.gauge("ipm_index_epoch", "Current index epoch"),
            delta_docs: r.gauge(
                "ipm_delta_docs",
                "Documents tracked by the attached delta (added + deleted)",
            ),
            delta_corrections: r.gauge(
                "ipm_delta_corrections",
                "P(q|p) corrections served by the live delta (dies with it at compaction)",
            ),
            cached_layouts: r.gauge(
                "ipm_cached_layouts",
                "Shard layouts cached by the serving generation",
            ),
            backends: [backend("memory"), backend("disk"), backend("block")],
            slow: slow_query.map(|c| Arc::new(SlowQueryLog::new(c))),
            registry,
        }
    }

    fn backend(&self, choice: BackendChoice) -> &BackendCounters {
        match choice {
            BackendChoice::Memory => &self.backends[0],
            BackendChoice::Disk => &self.backends[1],
            BackendChoice::Block => &self.backends[2],
        }
    }

    /// Feeds one uncached execution's counters into the registry.
    fn record_execution(&self, backend: BackendChoice, stats: &ExecStats, io: Option<&IoStats>) {
        let b = self.backend(backend);
        b.sorted_accesses.add(stats.sorted_accesses);
        b.random_probes.add(stats.random_probes);
        b.entries_skipped.add(stats.entries_skipped);
        b.rounds.add(stats.rounds);
        if let Some(io) = io {
            self.io_sequential.add(io.sequential_fetches);
            self.io_random.add(io.random_fetches);
            self.io_pool_hits.add(io.cache_hits);
        }
    }
}

/// The trace/display label of a completeness outcome (`exact`,
/// `approximate:<reason>`, `truncated:<kind>`).
fn completeness_label(c: &Completeness) -> String {
    match c {
        Completeness::Exact => "exact".to_owned(),
        Completeness::Approximate { reason } => format!("approximate:{}", reason.name()),
        Completeness::Truncated { budget_hit } => format!("truncated:{}", budget_hit.name()),
    }
}

#[derive(Debug)]
struct Inner {
    /// The serving head. Queries take a brief read lock to snapshot it;
    /// mutators write-lock only for the O(1) swap/bump itself.
    live: RwLock<LiveState>,
    /// Serializes the *mutators* (ingest, delete, delta attach/detach,
    /// compaction) without ever blocking queries: compaction holds this
    /// across its whole offline rebuild so the delta it flushes cannot
    /// grow underneath it, while the read path keeps serving the old
    /// generation until the swap.
    maintenance: Mutex<()>,
    disk_fraction: f64,
    /// Buffer-pool geometry / cost model every disk image is built with.
    pool: PoolConfig,
    cost: CostModel,
    /// Serializes disk-backed execution for exact per-query IO accounting
    /// over the shared simulated pool. Held across a whole sharded fan-out
    /// too: shards of *one* query run in parallel against their own pools,
    /// but two concurrent queries must not interleave.
    disk_gate: Mutex<()>,
    cache: Option<ShardedLruCache<CacheKey, Arc<Vec<SearchHit>>>>,
    /// Decoded-block cache shared by block-backed **batch** executions
    /// (`None` when [`EngineConfig::decode_cache_blocks`] is `0`).
    /// Entries are keyed by `(epoch, image, offset)`, so generation swaps
    /// invalidate them exactly like the result cache.
    decode_cache: Option<DecodedBlockCache>,
    /// Default shard fanout for requests that don't specify one.
    default_shards: usize,
    /// Uncached executions that fanned out to more than one shard.
    sharded_queries: AtomicU64,
    served: AtomicU64,
    /// Lifecycle counters (see [`LifecycleStats`]).
    ingested: AtomicU64,
    deleted: AtomicU64,
    compactions: AtomicU64,
    /// Simulated IO accumulated across every disk-backed query served
    /// (cache hits add nothing — they perform no list IO).
    io_totals: Mutex<IoStats>,
    /// Metrics registry, pre-registered handles and the slow-query ring.
    obs: EngineObs,
}

// Every index generation is immutable after build and the mutable head is
// swapped atomically; a compile-time check that the engine really is
// shareable keeps that invariant honest.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QueryEngine>();
};

impl QueryEngine {
    /// Wraps a built miner with the default configuration (full-fraction
    /// lazy disk image, default-sized cache).
    pub fn new(miner: PhraseMiner) -> Self {
        Self::with_config(miner, EngineConfig::default())
    }

    /// Wraps a built miner with explicit engine options.
    pub fn with_config(miner: PhraseMiner, config: EngineConfig) -> Self {
        Self {
            inner: Arc::new(Inner {
                live: RwLock::new(LiveState {
                    epoch: 0,
                    index: Arc::new(IndexState::new(Arc::new(miner))),
                    delta: None,
                }),
                maintenance: Mutex::new(()),
                disk_fraction: config.disk_fraction,
                pool: config.pool,
                cost: config.cost,
                disk_gate: Mutex::new(()),
                cache: config.cache.map(ShardedLruCache::new),
                decode_cache: (config.decode_cache_blocks > 0)
                    .then(|| DecodedBlockCache::new(config.decode_cache_blocks)),
                default_shards: config.shards.max(1),
                sharded_queries: AtomicU64::new(0),
                served: AtomicU64::new(0),
                ingested: AtomicU64::new(0),
                deleted: AtomicU64::new(0),
                compactions: AtomicU64::new(0),
                io_totals: Mutex::new(IoStats::default()),
                obs: EngineObs::new(config.slow_query),
            }),
        }
    }

    /// A consistent snapshot of the serving head.
    fn live(&self) -> LiveState {
        self.inner.live.read().unwrap().clone()
    }

    /// The miner of the currently serving index generation (for direct
    /// algorithm access). The handle pins its generation: it stays valid
    /// — and keeps answering from the pre-swap state — across a
    /// concurrent [`QueryEngine::compact`].
    pub fn miner(&self) -> Arc<PhraseMiner> {
        self.inner.live.read().unwrap().index.miner.clone()
    }

    /// The current index epoch: a monotonic counter bumped by every
    /// observable index mutation (ingest, delete, state-changing delta
    /// attach/update/detach, compaction). Tags every [`CacheKey`], so
    /// mutations invalidate cached results by *missing* instead of by
    /// clearing.
    pub fn epoch(&self) -> u64 {
        self.inner.live.read().unwrap().epoch
    }

    /// The current generation's disk image, building it on first use.
    pub fn disk(&self) -> Arc<DiskLists> {
        let state = self.live().index;
        self.disk_for(&state)
    }

    fn disk_for(&self, state: &IndexState) -> Arc<DiskLists> {
        state
            .disk
            .get_or_init(|| {
                Arc::new(state.miner.to_disk_with(
                    self.inner.disk_fraction,
                    self.inner.pool,
                    self.inner.cost,
                ))
            })
            .clone()
    }

    /// The current generation's block-compressed image, encoding it on
    /// first use ([`EngineConfig::disk_fraction`] applies here too: both
    /// simulated images truncate at the same build-time cut).
    pub fn block(&self) -> Arc<BlockImage> {
        let state = self.live().index;
        self.block_for(&state)
    }

    fn block_for(&self, state: &IndexState) -> Arc<BlockImage> {
        state
            .block
            .get_or_init(|| {
                Arc::new(state.miner.to_block_with(
                    self.inner.disk_fraction,
                    self.inner.pool,
                    self.inner.cost,
                ))
            })
            .clone()
    }

    /// Queries served across all clones of this engine (cache hits
    /// included).
    pub fn queries_served(&self) -> u64 {
        // lint-allow: relaxed-ordering — monotonic query counter, read only for exposition
        self.inner.served.load(Ordering::Relaxed)
    }

    /// The configured default shard fanout ([`EngineConfig::shards`]).
    pub fn default_shards(&self) -> usize {
        self.inner.default_shards
    }

    /// Uncached executions that fanned out across more than one shard
    /// (cache hits are not counted — they run nothing).
    pub fn sharded_queries(&self) -> u64 {
        // lint-allow: relaxed-ordering — monotonic query counter, read only for exposition
        self.inner.sharded_queries.load(Ordering::Relaxed)
    }

    /// Number of shard layouts currently cached by the serving generation
    /// (bounded by `MAX_CACHED_LAYOUTS`).
    pub fn cached_layouts(&self) -> usize {
        self.live().index.sharded.read().unwrap().len()
    }

    /// The shard layout for fanout `n` within one index generation,
    /// building it on first use and evicting the least-recently-used
    /// non-default layout past the cap.
    fn sharded_index(&self, state: &IndexState, n: usize) -> Arc<ShardedIndex> {
        // lint-allow: relaxed-ordering — LRU recency clock; skew only costs a suboptimal eviction victim
        let stamp = state.layout_clock.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(idx) = state.sharded.read().unwrap().get(&n) {
            // lint-allow: relaxed-ordering — LRU recency stamp; skew only costs a suboptimal eviction victim
            idx.last_used.store(stamp, Ordering::Relaxed);
            return idx.clone();
        }
        let mut map = state.sharded.write().unwrap();
        if let Some(idx) = map.get(&n) {
            // lint-allow: relaxed-ordering — LRU recency stamp; skew only costs a suboptimal eviction victim
            idx.last_used.store(stamp, Ordering::Relaxed);
            return idx.clone();
        }
        while map.len() >= MAX_CACHED_LAYOUTS {
            let victim = map
                .iter()
                .filter(|&(&key, _)| key != self.inner.default_shards)
                // lint-allow: relaxed-ordering — LRU recency read; skew only costs a suboptimal eviction victim
                .min_by_key(|(_, v)| v.last_used.load(Ordering::Relaxed))
                .map(|(&key, _)| key);
            match victim {
                Some(key) => {
                    map.remove(&key);
                }
                None => break,
            }
        }
        let m = &state.miner;
        let idx = Arc::new(ShardedIndex {
            mem: ShardedWordLists::build(m.lists(), m.id_lists(), m.index().dict.len(), n),
            disk: OnceLock::new(),
            block: OnceLock::new(),
            last_used: AtomicU64::new(stamp),
        });
        map.insert(n, idx.clone());
        idx
    }

    /// Result-cache hit/miss counters (all zero when the cache is
    /// disabled).
    pub fn cache_stats(&self) -> CacheStats {
        self.inner
            .cache
            .as_ref()
            .map(ShardedLruCache::stats)
            .unwrap_or_default()
    }

    /// Drops every cached result (counters keep accumulating).
    pub fn clear_cache(&self) {
        if let Some(cache) = &self.inner.cache {
            // lint-allow: cache-clear — the admin escape hatch is the one sanctioned wholesale clear; serving invalidates by epoch key
            cache.clear();
        }
    }

    /// Simulated IO accumulated across all disk-backed queries served by
    /// every clone of this engine (cache hits contribute nothing).
    pub fn io_totals(&self) -> IoStats {
        *self.inner.io_totals.lock().unwrap()
    }

    /// The engine's metrics registry. Shared across clones; embedders
    /// (e.g. the server) register their own families on it so one
    /// [`QueryEngine::render_metrics`] call exposes everything.
    pub fn metrics_registry(&self) -> Arc<Registry> {
        self.inner.obs.registry.clone()
    }

    /// Renders the full metrics surface in Prometheus text exposition
    /// format, refreshing the point-in-time gauges (epoch, delta size,
    /// cached layouts) first.
    pub fn render_metrics(&self) -> String {
        let obs = &self.inner.obs;
        {
            let live = self.inner.live.read().unwrap();
            obs.epoch.set(live.epoch);
            obs.delta_docs.set(
                live.delta
                    .as_ref()
                    .map(|d| (d.num_added() + d.num_deleted()) as u64)
                    .unwrap_or(0),
            );
            obs.delta_corrections.set(
                live.delta
                    .as_ref()
                    .map(|d| d.corrections_applied())
                    .unwrap_or(0),
            );
            obs.cached_layouts
                .set(live.index.sharded.read().unwrap().len() as u64);
        }
        obs.registry.render()
    }

    /// Aggregated list-access counters for one backend across every query
    /// served (the per-backend `ipm_list_*` series, as numbers).
    pub fn access_totals(&self, backend: BackendChoice) -> AccessTotals {
        let b = self.inner.obs.backend(backend);
        AccessTotals {
            sorted_accesses: b.sorted_accesses.get(),
            random_probes: b.random_probes.get(),
            entries_skipped: b.entries_skipped.get(),
            rounds: b.rounds.get(),
        }
    }

    /// The slow-query log, when [`EngineConfig::slow_query`] enabled one.
    pub fn slow_queries(&self) -> Option<Arc<SlowQueryLog>> {
        self.inner.obs.slow.clone()
    }

    /// The per-query latency histogram's snapshot (the
    /// `ipm_query_latency_seconds` family, as numbers — its count equals
    /// [`QueryEngine::queries_served`]).
    pub fn latency_snapshot(&self) -> ipm_obs::HistogramSnapshot {
        self.inner.obs.latency.snapshot()
    }

    /// Attaches (or replaces) the §4.5.1 side index. Bumps the index
    /// epoch — invalidating cached results by key mismatch — but only if
    /// the swap actually changes observable state: replacing nothing (or
    /// an empty delta) with another empty delta leaves every cached
    /// result valid and the epoch untouched.
    pub fn attach_delta(&self, delta: DeltaIndex) {
        let _m = self.inner.maintenance.lock().unwrap();
        let mut live = self.inner.live.write().unwrap();
        let was_active = live.delta.as_ref().is_some_and(|d| !d.is_empty());
        let now_active = !delta.is_empty();
        live.delta = Some(Arc::new(delta));
        if was_active || now_active {
            live.epoch += 1;
        }
    }

    /// Mutates the attached delta in place (attaching an empty one first
    /// if none is present). The epoch is bumped only when the closure
    /// actually changed the delta ([`DeltaIndex::fingerprint`] moved) —
    /// a no-op update costs no cached result. Use for ongoing ingestion:
    /// `engine.update_delta(|d| d.add_document(...))`.
    pub fn update_delta(&self, f: impl FnOnce(&mut DeltaIndex)) {
        let _m = self.inner.maintenance.lock().unwrap();
        let mut live = self.inner.live.write().unwrap();
        let delta = live.delta.get_or_insert_with(Default::default);
        let before = delta.fingerprint();
        f(Arc::make_mut(delta));
        if delta.fingerprint() != before {
            live.epoch += 1;
        }
    }

    /// Detaches the side index (e.g. after an offline rebuild absorbed
    /// it). Bumps the epoch only when a non-empty delta was actually
    /// detached — detaching nothing changes nothing.
    pub fn detach_delta(&self) {
        let _m = self.inner.maintenance.lock().unwrap();
        let mut live = self.inner.live.write().unwrap();
        let was_active = live.delta.as_ref().is_some_and(|d| !d.is_empty());
        live.delta = None;
        if was_active {
            live.epoch += 1;
        }
    }

    /// A snapshot handle to the attached delta, if any.
    pub fn delta(&self) -> Option<Arc<DeltaIndex>> {
        self.inner.live.read().unwrap().delta.clone()
    }

    /// Ingests one document into the serving index's §4.5.1 side index:
    /// the live lists stay untouched, `use_delta` queries see the
    /// document immediately through corrected probabilities, and the next
    /// [`QueryEngine::compact`] folds it into a full rebuild. Tokens are
    /// word ids of the *current* vocabulary (the wire layer resolves
    /// strings; out-of-vocabulary words can only enter at a rebuild).
    /// Bumps the epoch.
    pub fn ingest_document(&self, tokens: &[WordId], facets: &[FacetId]) {
        let _m = self.inner.maintenance.lock().unwrap();
        let mut live = self.inner.live.write().unwrap();
        let index = live.index.clone();
        let delta = Arc::make_mut(live.delta.get_or_insert_with(Default::default));
        delta.add_document(index.miner.index(), tokens, facets);
        live.epoch += 1;
        // lint-allow: relaxed-ordering — monotone lifecycle counter; mutations serialize on the live write lock
        self.inner.ingested.fetch_add(1, Ordering::Relaxed);
        self.inner.obs.docs_ingested.inc();
    }

    /// Batched [`QueryEngine::ingest_document`]: one maintenance-lock
    /// acquisition and one epoch bump for the whole batch.
    pub fn ingest_documents(&self, docs: &[(Vec<WordId>, Vec<FacetId>)]) {
        if docs.is_empty() {
            return;
        }
        let _m = self.inner.maintenance.lock().unwrap();
        let mut live = self.inner.live.write().unwrap();
        let index = live.index.clone();
        let delta = Arc::make_mut(live.delta.get_or_insert_with(Default::default));
        for (tokens, facets) in docs {
            delta.add_document(index.miner.index(), tokens, facets);
        }
        live.epoch += 1;
        self.inner
            .ingested
            // lint-allow: relaxed-ordering — monotone lifecycle counter; mutations serialize on the live write lock
            .fetch_add(docs.len() as u64, Ordering::Relaxed);
        self.inner.obs.docs_ingested.add(docs.len() as u64);
    }

    /// Marks a document of the serving corpus deleted (through the side
    /// index; the postings stay untouched until compaction). Returns
    /// `false` — with no epoch bump and no cache impact — when `doc` is
    /// out of range or already deleted.
    pub fn delete_document(&self, doc: DocId) -> bool {
        let _m = self.inner.maintenance.lock().unwrap();
        let mut live = self.inner.live.write().unwrap();
        if doc.index() >= live.index.miner.corpus().num_docs() {
            return false;
        }
        if live.delta.as_ref().is_some_and(|d| d.is_deleted(doc)) {
            return false;
        }
        let delta = Arc::make_mut(live.delta.get_or_insert_with(Default::default));
        delta.delete_document(doc);
        live.epoch += 1;
        // lint-allow: relaxed-ordering — monotone lifecycle counter; mutations serialize on the live write lock
        self.inner.deleted.fetch_add(1, Ordering::Relaxed);
        self.inner.obs.docs_deleted.inc();
        true
    }

    /// Flushes the delta into a **full offline rebuild** — the third leg
    /// of the paper's §4.5.1 contract ("periodically, the [side index] is
    /// flushed and the list indexes are re-constructed"):
    ///
    /// 1. snapshot the serving generation and its delta (the maintenance
    ///    lock keeps the delta frozen; queries keep serving throughout);
    /// 2. reconstruct the corpus — surviving base documents plus every
    ///    ingested document, over the *same shared vocabulary* — and
    ///    rebuild the miner (dictionary, postings, forward lists, both
    ///    word-list orders) from scratch; new phrases and pairs the delta
    ///    had to defer now enter the lists;
    /// 3. atomically swap the new generation in, drop the delta, and bump
    ///    the epoch. Lazily derived layouts (disk image, shard layouts)
    ///    rebuild on first use against the new lists.
    ///
    /// After the swap the delta is empty, so all four algorithms answer
    /// `Exact` again (`use_delta` becomes a no-op until the next ingest).
    /// Ingest/delete calls block for the duration of the rebuild (they
    /// share the maintenance lock); queries never do — they serve the
    /// pre-swap generation until the O(1) swap, which is the behaviour
    /// the server relies on to keep compaction off the query path.
    ///
    /// A call with no attached (or an empty) delta is a no-op that
    /// reports `compacted: false` and leaves the epoch untouched.
    pub fn compact(&self) -> CompactionReport {
        let start = Instant::now();
        let _m = self.inner.maintenance.lock().unwrap();
        let snap = self.live();
        let delta = snap.delta.as_ref().filter(|d| !d.is_empty());
        let miner = &snap.index.miner;
        let Some(delta) = delta else {
            return CompactionReport {
                compacted: false,
                epoch: snap.epoch,
                docs: miner.corpus().num_docs(),
                phrases: miner.index().dict.len(),
                absorbed_adds: 0,
                absorbed_deletes: 0,
                elapsed: Duration::ZERO,
            };
        };
        // Offline rebuild (queries keep serving `snap.index`): surviving
        // base docs + ingested docs over the shared vocabulary.
        let mut docs: Vec<(Vec<WordId>, Vec<FacetId>)> =
            Vec::with_capacity(miner.corpus().num_docs() + delta.num_added());
        for d in miner.corpus().docs() {
            if !delta.is_deleted(d.id) {
                docs.push((d.tokens.clone(), d.facets.clone()));
            }
        }
        for (tokens, facets) in delta.added_docs() {
            docs.push((tokens.clone(), facets.clone()));
        }
        let new_corpus = miner.corpus().with_docs(docs);
        let new_miner = Arc::new(PhraseMiner::build(&new_corpus, miner.config().clone()));
        let report = CompactionReport {
            compacted: true,
            epoch: 0, // patched below, after the swap fixes the epoch
            docs: new_corpus.num_docs(),
            phrases: new_miner.index().dict.len(),
            absorbed_adds: delta.num_added(),
            absorbed_deletes: delta.num_deleted(),
            elapsed: Duration::ZERO,
        };
        let epoch = {
            let mut live = self.inner.live.write().unwrap();
            live.index = Arc::new(IndexState::new(new_miner));
            live.delta = None;
            live.epoch += 1;
            live.epoch
        };
        // lint-allow: relaxed-ordering — monotone lifecycle counter; mutations serialize on the live write lock
        self.inner.compactions.fetch_add(1, Ordering::Relaxed);
        self.inner.obs.compactions.inc();
        CompactionReport {
            epoch,
            elapsed: start.elapsed(),
            ..report
        }
    }

    /// Lifecycle counters: epoch, ingest/delete/compaction totals, and
    /// the live delta's size.
    pub fn lifecycle_stats(&self) -> LifecycleStats {
        let live = self.inner.live.read().unwrap();
        LifecycleStats {
            epoch: live.epoch,
            // lint-allow: relaxed-ordering — stats snapshot; each counter is independently monotone
            ingested: self.inner.ingested.load(Ordering::Relaxed),
            // lint-allow: relaxed-ordering — stats snapshot; each counter is independently monotone
            deleted: self.inner.deleted.load(Ordering::Relaxed),
            // lint-allow: relaxed-ordering — stats snapshot; each counter is independently monotone
            compactions: self.inner.compactions.load(Ordering::Relaxed),
            delta_docs: live
                .delta
                .as_ref()
                .map(|d| d.num_added() + d.num_deleted())
                .unwrap_or(0),
        }
    }

    /// Starts a budgeted, cancellable request for a query string — the
    /// canonical API; `search`/`search_with`/`execute` are thin shims
    /// over the same path.
    ///
    /// ```text
    /// engine.request("trade AND reserves")
    ///     .k(10)
    ///     .algorithm(Algorithm::Nra)
    ///     .backend(BackendChoice::Disk)
    ///     .shards(4)
    ///     .deadline(Duration::from_millis(50))
    ///     .io_budget(10_000)
    ///     .cancel_token(token)
    ///     .run()?;
    /// ```
    pub fn request(&self, input: impl Into<String>) -> SearchRequest<'_> {
        SearchRequest::new(self, input.into())
    }

    /// [`QueryEngine::request`] for an already-parsed [`Query`].
    pub fn request_query(&self, query: Query) -> SearchRequest<'_> {
        SearchRequest::for_query(self, query)
    }

    /// Parses and serves a string query (`"trade AND reserves"`,
    /// `"topic:t04 OR minister"`) with default options. A shim over
    /// [`QueryEngine::request`] with an unlimited budget.
    ///
    /// # Errors
    /// Returns the parse error for malformed input or unknown terms.
    pub fn search(&self, input: &str, k: usize) -> Result<SearchResponse, ParseError> {
        self.search_with(input, k, &SearchOptions::default())
    }

    /// Parses and serves a string query with explicit options. A shim
    /// over [`QueryEngine::request`] with an unlimited budget.
    ///
    /// # Errors
    /// Returns the parse error for malformed input or unknown terms.
    pub fn search_with(
        &self,
        input: &str,
        k: usize,
        options: &SearchOptions,
    ) -> Result<SearchResponse, ParseError> {
        let query = self.miner().parse_query_str(input)?;
        Ok(self.execute(query, k, options))
    }

    /// Serves an already-parsed query with an unlimited budget — the
    /// legacy shim over [`QueryEngine::execute_with_budget`] (which is
    /// infallible without a deadline or cancel token).
    pub fn execute(&self, query: Query, k: usize, options: &SearchOptions) -> SearchResponse {
        self.execute_with_budget(query, k, options, Budget::none())
            .expect("an unlimited budget cannot fail")
    }

    /// Serves an already-parsed query under an execution [`Budget`]:
    /// planner, dead-on-arrival check, cache lookup, then the (possibly
    /// sharded) executor with cooperative budget checks in every
    /// algorithm loop. The single code path behind every public entry
    /// point.
    ///
    /// A budget that trips *during* execution yields `Ok` with
    /// [`Completeness::Truncated`] — the anytime result at the stopping
    /// point (such responses are never cached). Cache hits perform no
    /// list work and satisfy any budget.
    ///
    /// # Errors
    /// [`SearchError::DeadlineExceeded`] when the deadline expired before
    /// execution started; [`SearchError::Cancelled`] when the cancel
    /// token fired before or during execution.
    pub fn execute_with_budget(
        &self,
        query: Query,
        k: usize,
        options: &SearchOptions,
        budget: &Budget,
    ) -> Result<SearchResponse, SearchError> {
        // Snapshot the serving head once: a consistent (epoch, index,
        // delta) triple. Everything below — cache key, completeness,
        // execution — works off this snapshot, so a concurrent ingest or
        // compaction never mixes generations within one request.
        let live = self.live();
        self.execute_one(&live, query, k, options, budget, None, None)
    }

    /// Serves several parsed queries as one batch: a single live-state
    /// snapshot, the [`crate::plan::BatchPlan`] planner grouping items
    /// that share query words (within one execution-config class), a
    /// fused shared scan walking each group's distinct word lists **once**
    /// for all eligible members (`fused.rs`), and — for block-backed
    /// items — a shared decoded-block cache so each encoded block is
    /// bit-unpacked once per group instead of once per query. Results come
    /// back in input order.
    ///
    /// **Parity contract**: every item returns exactly what its own
    /// [`QueryEngine::execute_with_budget`] call would have returned
    /// against the same snapshot — bit-identical hits, the same per-item
    /// [`Completeness`], per-item budgets still honored via their sticky
    /// trips (budgeted members always take the per-item path; the shared
    /// scan fuses only fully unbudgeted members). The one observable
    /// difference: a fused member reports `io: None`, because the group's
    /// shared scan cannot be attributed to single items — the group's
    /// combined [`IoStats`] still lands in [`QueryEngine::io_totals`], and
    /// the decoded-block tally books one logical read per member per
    /// block, exactly what the per-item decode-cached path would report.
    /// Grouping changes execution *order*, never hits.
    pub fn execute_batch(
        &self,
        items: Vec<BatchItem<'_>>,
    ) -> Vec<Result<SearchResponse, SearchError>> {
        let obs = &self.inner.obs;
        let live = self.live();
        let plan = crate::plan::BatchPlan::group(
            items.iter().map(|it| (&it.query, &it.options)),
            self.inner.default_shards,
        );
        obs.batch_items.add(items.len() as u64);
        obs.batch_groups.add(plan.groups.len() as u64);
        let batch_stats = DecodeStats::default();
        let mut items: Vec<Option<BatchItem<'_>>> = items.into_iter().map(Some).collect();
        let mut out: Vec<Option<Result<SearchResponse, SearchError>>> =
            (0..items.len()).map(|_| None).collect();
        for group in &plan.groups {
            obs.batch_group_size
                .observe_seconds(group.members.len() as f64);
            let decode = self.inner.decode_cache.as_ref().map(|cache| DecodeBinding {
                cache,
                epoch: live.epoch,
                stats: &batch_stats,
            });
            let mut fused = self.try_fuse_group(&live, &items, &group.members, decode.as_ref());
            for &i in &group.members {
                let item = items[i].take().expect("planner emits each item once");
                out[i] = Some(self.execute_one(
                    &live,
                    item.query,
                    item.k,
                    &item.options,
                    item.budget,
                    decode.as_ref(),
                    fused.remove(&i),
                ));
            }
        }
        obs.fused_saved.add(batch_stats.hits());
        obs.decode_hits.add(batch_stats.hits());
        obs.decode_misses.add(batch_stats.misses());
        out.into_iter()
            .map(|r| r.expect("every item executed"))
            .collect()
    }

    /// Attempts the shared-scan fused execution for one batch group.
    /// Eligible members — single-shard SMJ on the memory or block
    /// backend, no redundancy filter, no live delta, fully unlimited
    /// budget, not already result-cached — are served by **one**
    /// synchronized walk over the group's distinct word lists
    /// ([`crate::fused::run_fused_smj`]), each decoded block touched once
    /// for the whole group. Returns each fused member's hits keyed by
    /// item index; members absent from the map (and groups that don't
    /// qualify at all) fall back to the per-item path, which keeps budget
    /// truncation, NRA/TA/exact semantics, redundancy filtering and
    /// sharded fanout trivially identical to serial execution.
    fn try_fuse_group(
        &self,
        live: &LiveState,
        items: &[Option<BatchItem<'_>>],
        members: &[usize],
        decode: Option<&DecodeBinding<'_>>,
    ) -> FxHashMap<usize, FusedHits> {
        let mut fused = FxHashMap::default();
        if members.len() < 2 {
            return fused;
        }
        // The planner groups within one execution-config class, so the
        // group-wide gates can read any member's options.
        let first = items[members[0]].as_ref().expect("member not yet taken");
        let plan = QueryPlan::resolve(&first.options, self.inner.default_shards);
        if plan.algorithm != Algorithm::Smj
            || plan.shards != 1
            || !matches!(plan.backend, BackendChoice::Memory | BackendChoice::Block)
            || first.options.redundancy.is_some()
        {
            return fused;
        }
        // Delta corrections ride the per-item overlay seam.
        if first.options.use_delta && live.delta.as_ref().is_some_and(|d| !d.is_empty()) {
            return fused;
        }
        // Per-member gates: a budget's trip point depends on the item's
        // own traversal order, which a shared scan does not reproduce;
        // result-cached items skip list work entirely. `peek` leaves the
        // result cache's recency order and hit/miss counters untouched —
        // the real probe in `execute_one` still books the hit.
        let eligible: Vec<usize> = members
            .iter()
            .copied()
            .filter(|&i| {
                let it = items[i].as_ref().expect("member not yet taken");
                it.k > 0
                    && it.budget.is_unlimited()
                    && !self.inner.cache.as_ref().is_some_and(|c| {
                        c.peek(&CacheKey::new(
                            &it.query,
                            it.k,
                            &it.options,
                            plan.shards,
                            live.epoch,
                        ))
                    })
            })
            .collect();
        if eligible.len() < 2 {
            return fused;
        }
        // Distinct features in first-appearance order, plus each member's
        // cursor positions in its own query feature order.
        let mut index_of: FxHashMap<u64, usize> = FxHashMap::default();
        let mut features: Vec<Feature> = Vec::new();
        let mut specs: Vec<crate::fused::FusedSpec> = Vec::with_capacity(eligible.len());
        for &i in &eligible {
            let it = items[i].as_ref().expect("member not yet taken");
            let positions = it
                .query
                .features
                .iter()
                .map(|&f| {
                    *index_of.entry(f.encode()).or_insert_with(|| {
                        features.push(f);
                        features.len() - 1
                    })
                })
                .collect();
            specs.push(crate::fused::FusedSpec {
                positions,
                op: it.query.op,
                k: it.k,
            });
        }
        // Per-feature member multiplicity: the weight the decoded-block
        // tally books per physical lookup, so fused counters equal what
        // the per-item decode-cached walks would have reported.
        let mut multiplicity = vec![0u64; features.len()];
        for spec in &specs {
            let mut seen: Vec<usize> = Vec::new();
            for &ci in &spec.positions {
                if !seen.contains(&ci) {
                    seen.push(ci);
                    multiplicity[ci] += 1;
                }
            }
        }
        let m = &*live.index.miner;
        let results = match plan.backend {
            BackendChoice::Memory => {
                let backend = m.memory_backend();
                let cursors: Vec<_> = features.iter().map(|&f| backend.id_cursor(f)).collect();
                crate::fused::run_fused_smj(cursors, &specs)
            }
            BackendChoice::Block => {
                let block = self.block_for(&live.index);
                let block = &*block;
                let _serial = self.inner.disk_gate.lock().unwrap();
                block.reset_io(); // one shared cold scan for the whole group
                let results = if let Some(d) = decode {
                    let views: Vec<CachedBlockImage<'_>> = multiplicity
                        .iter()
                        .map(|&w| {
                            CachedBlockImage::new(block, d.cache, d.epoch, d.stats).with_weight(w)
                        })
                        .collect();
                    let cursors: Vec<_> = views
                        .iter()
                        .zip(&features)
                        .map(|(v, &f)| v.id_cursor(f))
                        .collect();
                    crate::fused::run_fused_smj(cursors, &specs)
                } else {
                    let cursors: Vec<_> = features.iter().map(|&f| block.id_cursor(f)).collect();
                    crate::fused::run_fused_smj(cursors, &specs)
                };
                let io = block.io_stats();
                self.inner.io_totals.lock().unwrap().accumulate(&io);
                results
            }
            _ => unreachable!("backend gated above"),
        };
        for (&i, (hits, smj)) in eligible.iter().zip(results) {
            fused.insert(
                i,
                FusedHits {
                    hits,
                    stats: ExecStats {
                        sorted_accesses: smj.entries_read,
                        random_probes: 0,
                        entries_skipped: 0,
                        rounds: smj.merge_steps,
                    },
                },
            );
        }
        fused
    }

    /// Cumulative decoded-block cache counters: `(hits, misses)`, both
    /// zero when the cache is disabled or no batch has run.
    pub fn decode_cache_stats(&self) -> (u64, u64) {
        self.inner
            .decode_cache
            .as_ref()
            .map(|c| (c.stats().hits(), c.stats().misses()))
            .unwrap_or((0, 0))
    }

    /// The single uncached-or-cached execution path behind
    /// [`QueryEngine::execute_with_budget`] and every batch item, against
    /// an already-pinned snapshot of the serving head. `decode` attaches
    /// the shared decoded-block cache (batch path only); `fused` carries
    /// hits already produced by the group's shared scan, which replace
    /// the `execute_uncached` run while cache probe/insert, completeness,
    /// counters and tracing stay on this one path.
    #[allow(clippy::too_many_arguments)]
    fn execute_one(
        &self,
        live: &LiveState,
        query: Query,
        k: usize,
        options: &SearchOptions,
        budget: &Budget,
        decode: Option<&DecodeBinding<'_>>,
        fused: Option<FusedHits>,
    ) -> Result<SearchResponse, SearchError> {
        let start = Instant::now();
        let obs = &self.inner.obs;
        if let Some(err) = budget.dead_on_arrival() {
            return Err(err);
        }
        // An explicitly traced request always collects; a configured
        // slow-query log additionally forces collection for every query
        // (its ring needs the trace of whichever query turns out slow).
        let tracer = if options.trace || obs.slow.is_some() {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        };
        let plan_span = tracer.span(StageKind::Plan);
        let plan = QueryPlan::resolve(options, self.inner.default_shards);
        let key = CacheKey::new(&query, k, options, plan.shards, live.epoch);
        let delta_snapshot = if options.use_delta {
            live.delta.clone().filter(|d| !d.is_empty())
        } else {
            None
        };
        let exact_probes = Self::exact_probes(&live.index.miner);
        let base = crate::plan::base_completeness(
            options,
            matches!(plan.backend, BackendChoice::Disk | BackendChoice::Block)
                && self.inner.disk_fraction < 1.0,
            delta_snapshot.is_some(),
            exact_probes,
            plan.shards,
        );
        plan_span.end();
        let trace_meta = |served_from_cache: bool, completeness: &Completeness| TraceMeta {
            query: query.render(live.index.miner.corpus()),
            algorithm: plan.algorithm.name(),
            backend: plan.backend.name(),
            k,
            shards: plan.shards,
            epoch: live.epoch,
            served_from_cache,
            completeness: completeness_label(completeness),
            budget_trip: budget.trip_cause().and_then(|t| match t {
                Trip::Cancelled => Some("cancelled"),
                t => t.budget_kind().map(crate::budget::BudgetKind::name),
            }),
        };
        if let Some(cache) = &self.inner.cache {
            let probe_span = tracer.span(StageKind::CacheProbe);
            let cached = cache.get(&key);
            probe_span.end();
            if let Some(hits) = cached {
                // lint-allow: relaxed-ordering — monotone query counter, read only by stats
                self.inner.served.fetch_add(1, Ordering::Relaxed);
                obs.queries_served.inc();
                obs.cache_hits.inc();
                let elapsed = start.elapsed();
                obs.latency.observe(elapsed);
                let trace = self.finish_trace(tracer, trace_meta(true, &base), options);
                return Ok(SearchResponse {
                    query,
                    hits: hits.as_ref().clone(),
                    elapsed,
                    io: None,
                    served_from_cache: true,
                    shards: plan.shards,
                    completeness: base,
                    trace,
                });
            }
            obs.cache_misses.inc();
        }

        let exec_span = tracer.span(StageKind::Execute);
        let (hits, io, stats) = match fused {
            Some(f) => {
                // Hits come from the group's shared scan; only text
                // resolution remains. `io: None` — the fused walk's IO is
                // a group quantity, accumulated once into the engine
                // totals by `try_fuse_group`.
                let m = &*live.index.miner;
                let text_span = tracer.span(StageKind::TextResolve);
                let resolved: Vec<SearchHit> = f
                    .hits
                    .into_iter()
                    .map(|hit| SearchHit {
                        text: m.phrase_text(hit.phrase),
                        interestingness: estimated_interestingness(query.op, hit.score),
                        hit,
                    })
                    .collect();
                text_span.end();
                (resolved, None, f.stats)
            }
            None => self.execute_uncached(
                &live.index,
                &query,
                k,
                options,
                &plan,
                &delta_snapshot,
                budget,
                &tracer,
                decode,
            ),
        };
        exec_span.end();
        obs.record_execution(plan.backend, &stats, io.as_ref());
        let completeness = match budget.trip_cause() {
            Some(Trip::Cancelled) => return Err(SearchError::Cancelled),
            Some(trip) => {
                let kind = trip.budget_kind().expect("non-cancel trip maps to a kind");
                match kind {
                    crate::budget::BudgetKind::Deadline => obs.trip_deadline.inc(),
                    crate::budget::BudgetKind::Io => obs.trip_io.inc(),
                    crate::budget::BudgetKind::Steps => obs.trip_steps.inc(),
                }
                Completeness::Truncated { budget_hit: kind }
            }
            None => base,
        };
        if plan.shards > 1 {
            // lint-allow: relaxed-ordering — monotone query counter, read only by stats
            self.inner.sharded_queries.fetch_add(1, Ordering::Relaxed);
            obs.sharded_queries.inc();
        }
        if !completeness.is_truncated() {
            // Truncated results reflect this request's budget, not the
            // query — caching them would serve partial answers to
            // unbudgeted callers.
            if let Some(cache) = &self.inner.cache {
                cache.insert(key, Arc::new(hits.clone()));
            }
        }
        // lint-allow: relaxed-ordering — monotone query counter, read only by stats
        self.inner.served.fetch_add(1, Ordering::Relaxed);
        obs.queries_served.inc();
        let elapsed = start.elapsed();
        obs.latency.observe(elapsed);
        let trace = self.finish_trace(tracer, trace_meta(false, &completeness), options);
        Ok(SearchResponse {
            query,
            hits,
            elapsed,
            io,
            served_from_cache: false,
            shards: plan.shards,
            completeness,
            trace,
        })
    }

    /// Closes a request's tracer: offers the trace to the slow-query ring
    /// (when configured) and returns it boxed iff the request asked for
    /// it.
    fn finish_trace(
        &self,
        tracer: Tracer,
        meta: TraceMeta,
        options: &SearchOptions,
    ) -> Option<Box<QueryTrace>> {
        let trace = tracer.finish(meta)?;
        if let Some(slow) = &self.inner.obs.slow {
            if slow.offer(&trace) {
                self.inner.obs.slow_queries.inc();
            }
        }
        options.trace.then(|| Box::new(trace))
    }

    /// Whether the backends' id-ordered (probe) lists are complete (no
    /// build-time SMJ fraction froze a prefix).
    fn exact_probes(miner: &PhraseMiner) -> bool {
        miner.config().smj_fraction.is_none_or(|f| f >= 1.0)
    }

    /// Runs the planned query — one backend per shard — and resolves hit
    /// texts (through the disk phrase file on the disk backend, so even
    /// the exact scorer charges its final phrase lookups there — the
    /// paper's last retrieval step; on a sharded image the lookup charges
    /// the shard owning the hit).
    #[allow(clippy::too_many_arguments)]
    fn execute_uncached(
        &self,
        state: &IndexState,
        query: &Query,
        k: usize,
        options: &SearchOptions,
        plan: &QueryPlan,
        delta_snapshot: &Option<Arc<DeltaIndex>>,
        budget: &Budget,
        tracer: &Tracer,
        decode: Option<&DecodeBinding<'_>>,
    ) -> (Vec<SearchHit>, Option<IoStats>, ExecStats) {
        let m = &*state.miner;
        let ctx = ExecContext {
            miner: m,
            options,
            image_truncated: matches!(plan.backend, BackendChoice::Disk | BackendChoice::Block)
                && self.inner.disk_fraction < 1.0,
            delta: delta_snapshot.as_deref(),
            exact_probes: Self::exact_probes(m),
            budget,
            tracer,
        };
        let resolve = |hit: PhraseHit, text: String| SearchHit {
            text,
            interestingness: estimated_interestingness(query.op, hit.score),
            hit,
        };
        // IO-budgeted (and budget-stopped) requests resolve result texts
        // from the in-memory phrase table: the cap governs *list* IO, and
        // the final phrase lookups must neither push a query past a cap
        // it respected nor charge IO after a budget said stop.
        let charge_texts = |budget: &Budget| !budget.has_io_budget() && !budget.is_tripped();
        match plan.backend {
            BackendChoice::Memory => {
                let (hits, stats) = if plan.shards == 1 {
                    let backend = m.memory_backend();
                    crate::plan::run_query(&ctx, &[&backend], query, k)
                } else {
                    let idx = self.sharded_index(state, plan.shards);
                    let backends: Vec<MemoryBackend<'_>> =
                        idx.mem.shards().iter().map(ListShard::backend).collect();
                    let refs: Vec<&MemoryBackend<'_>> = backends.iter().collect();
                    crate::plan::run_query(&ctx, &refs, query, k)
                };
                let text_span = tracer.span(StageKind::TextResolve);
                let resolved = hits
                    .into_iter()
                    .map(|hit| resolve(hit, m.phrase_text(hit.phrase)))
                    .collect();
                text_span.end();
                (resolved, None, stats)
            }
            BackendChoice::Disk if plan.shards == 1 => {
                let disk = self.disk_for(state);
                let disk = &*disk;
                let _serial = self.inner.disk_gate.lock().unwrap();
                disk.reset_io(); // per-query cold cache (paper §5.5)
                let (hits, stats) = crate::plan::run_query(&ctx, &[disk], query, k);
                let via_disk = charge_texts(budget);
                let text_span = tracer.span(StageKind::TextResolve);
                let resolved = hits
                    .into_iter()
                    .map(|hit| {
                        let text = via_disk
                            .then(|| disk.phrase_text(hit.phrase))
                            .flatten()
                            .unwrap_or_else(|| m.phrase_text(hit.phrase));
                        resolve(hit, text)
                    })
                    .collect();
                text_span.end();
                let io = disk.io_stats();
                self.inner.io_totals.lock().unwrap().accumulate(&io);
                (resolved, Some(io), stats)
            }
            BackendChoice::Disk => {
                let idx = self.sharded_index(state, plan.shards);
                let image = idx.disk.get_or_init(|| {
                    ShardedDiskImage::build(
                        m.corpus(),
                        &m.index().dict,
                        &idx.mem,
                        self.inner.disk_fraction,
                        self.inner.pool,
                        self.inner.cost,
                    )
                });
                let _serial = self.inner.disk_gate.lock().unwrap();
                image.reset_io(); // per-query cold cache across all shards
                let refs: Vec<&DiskLists> = image.shards().iter().collect();
                let (hits, stats) = crate::plan::run_query(&ctx, &refs, query, k);
                let via_disk = charge_texts(budget);
                let text_span = tracer.span(StageKind::TextResolve);
                let resolved = hits
                    .into_iter()
                    .map(|hit| {
                        let text = via_disk
                            .then(|| image.phrase_text(hit.phrase))
                            .flatten()
                            .unwrap_or_else(|| m.phrase_text(hit.phrase));
                        resolve(hit, text)
                    })
                    .collect();
                text_span.end();
                let io = image.io_stats();
                self.inner.io_totals.lock().unwrap().accumulate(&io);
                (resolved, Some(io), stats)
            }
            BackendChoice::Block if plan.shards == 1 => {
                let block = self.block_for(state);
                let block = &*block;
                let _serial = self.inner.disk_gate.lock().unwrap();
                block.reset_io(); // per-query cold cache (paper §5.5)
                let (hits, stats) = if let Some(d) = decode {
                    let cached = CachedBlockImage::new(block, d.cache, d.epoch, d.stats);
                    crate::plan::run_query(&ctx, &[&cached], query, k)
                } else {
                    crate::plan::run_query(&ctx, &[block], query, k)
                };
                // The block image carries no phrase file; texts resolve
                // from the miner's in-memory dictionary (like the memory
                // backend), so the IoStats are pure list traffic.
                let text_span = tracer.span(StageKind::TextResolve);
                let resolved = hits
                    .into_iter()
                    .map(|hit| resolve(hit, m.phrase_text(hit.phrase)))
                    .collect();
                text_span.end();
                let io = block.io_stats();
                self.inner.io_totals.lock().unwrap().accumulate(&io);
                (resolved, Some(io), stats)
            }
            BackendChoice::Block => {
                let idx = self.sharded_index(state, plan.shards);
                let image = idx.block.get_or_init(|| {
                    ShardedBlockImage::build(
                        m.index(),
                        &idx.mem,
                        self.inner.disk_fraction,
                        self.inner.pool,
                        self.inner.cost,
                    )
                });
                let _serial = self.inner.disk_gate.lock().unwrap();
                image.reset_io(); // per-query cold cache across all shards
                let (hits, stats) = if let Some(d) = decode {
                    let wrapped: Vec<CachedBlockImage<'_>> = image
                        .shards()
                        .iter()
                        .map(|s| CachedBlockImage::new(s, d.cache, d.epoch, d.stats))
                        .collect();
                    let refs: Vec<&CachedBlockImage<'_>> = wrapped.iter().collect();
                    crate::plan::run_query(&ctx, &refs, query, k)
                } else {
                    let refs: Vec<&BlockImage> = image.shards().iter().collect();
                    crate::plan::run_query(&ctx, &refs, query, k)
                };
                let text_span = tracer.span(StageKind::TextResolve);
                let resolved = hits
                    .into_iter()
                    .map(|hit| resolve(hit, m.phrase_text(hit.phrase)))
                    .collect();
                text_span.end();
                let io = image.io_stats();
                self.inner.io_totals.lock().unwrap().accumulate(&io);
                (resolved, Some(io), stats)
            }
        }
    }

    /// The half-open phrase-id range shard `shard` owns in a fanout-
    /// `fanout` layout of this engine's current index generation (`None`
    /// when `shard >= fanout`). Fanout 1 owns the full id space. Both
    /// ends of a distributed deployment derive these ranges
    /// deterministically from the corpus build, so a router can validate
    /// its configured shard set against each shard server's answer.
    pub fn shard_phrase_range(&self, fanout: usize, shard: usize) -> Option<(u32, u32)> {
        let fanout = fanout.clamp(1, crate::plan::MAX_SHARDS);
        if shard >= fanout {
            return None;
        }
        if fanout == 1 {
            return Some((0, u32::MAX));
        }
        let live = self.live();
        let idx = self.sharded_index(&live.index, fanout);
        let (lo, hi) = idx.mem.shards()[shard].range();
        Some((lo.raw(), hi.raw()))
    }

    /// Executes exactly one shard of a fanout-`params.fanout` scatter —
    /// the server-side half of the wire-v5 `shard_exec` verb. The node
    /// carves shard `params.shard` out of its own fanout-wide layout
    /// (deterministic equal-width phrase-id ranges, so every node serving
    /// the same corpus build derives the same partition) and runs the
    /// same per-shard unit a local scoped thread runs: algorithm dispatch
    /// plus, on NRA's exact path, resolution of the shard's own hits.
    ///
    /// Disk- and block-backed calls serialize on the engine's disk gate
    /// and reset the simulated pool, exactly like local execution — the
    /// per-query cold-cache accounting (paper §5.5) then covers this
    /// shard's run alone.
    ///
    /// A budget that trips *during* the run returns `Ok` with
    /// [`ShardOutcome::tripped`] set — the anytime envelope at the
    /// stopping point, which the router surfaces as a truncated response.
    ///
    /// # Errors
    /// [`SearchError::DeadlineExceeded`] when the forwarded deadline
    /// expired before execution started; [`SearchError::Cancelled`] when
    /// the budget's cancel token fired.
    pub fn execute_shard(
        &self,
        query: &Query,
        options: &SearchOptions,
        params: &ShardExecParams,
        budget: &Budget,
    ) -> Result<ShardOutcome, SearchError> {
        if let Some(err) = budget.dead_on_arrival() {
            return Err(err);
        }
        let tracer = Tracer::disabled();
        let live = self.live();
        let state = &live.index;
        let m = &*state.miner;
        let delta_snapshot = if options.use_delta {
            live.delta.clone().filter(|d| !d.is_empty())
        } else {
            None
        };
        let ctx = ExecContext {
            miner: m,
            options,
            image_truncated: matches!(options.backend, BackendChoice::Disk | BackendChoice::Block)
                && self.inner.disk_fraction < 1.0,
            delta: delta_snapshot.as_deref(),
            exact_probes: Self::exact_probes(m),
            budget,
            tracer: &tracer,
        };
        let tuning = NraTuning {
            lower_floor: params.floor,
            batch_size: params.batch_size,
        };
        let fanout = params.fanout.clamp(1, crate::plan::MAX_SHARDS);
        let shard = params.shard.min(fanout - 1);
        let fetch = params.fetch;
        let mut out = match options.backend {
            BackendChoice::Memory if fanout == 1 => {
                let backend = m.memory_backend();
                run_one_shard(&ctx, &backend, query, fetch, tuning, None)
            }
            BackendChoice::Memory => {
                let idx = self.sharded_index(state, fanout);
                let backend = idx.mem.shards()[shard].backend();
                run_one_shard(&ctx, &backend, query, fetch, tuning, None)
            }
            BackendChoice::Disk if fanout == 1 => {
                let disk = self.disk_for(state);
                let disk = &*disk;
                let _serial = self.inner.disk_gate.lock().unwrap();
                disk.reset_io(); // per-query cold cache (paper §5.5)
                run_one_shard(&ctx, disk, query, fetch, tuning, None)
            }
            BackendChoice::Disk => {
                let idx = self.sharded_index(state, fanout);
                let image = idx.disk.get_or_init(|| {
                    ShardedDiskImage::build(
                        m.corpus(),
                        &m.index().dict,
                        &idx.mem,
                        self.inner.disk_fraction,
                        self.inner.pool,
                        self.inner.cost,
                    )
                });
                let _serial = self.inner.disk_gate.lock().unwrap();
                image.reset_io(); // per-query cold cache
                run_one_shard(&ctx, &image.shards()[shard], query, fetch, tuning, None)
            }
            BackendChoice::Block if fanout == 1 => {
                let block = self.block_for(state);
                let block = &*block;
                let _serial = self.inner.disk_gate.lock().unwrap();
                block.reset_io(); // per-query cold cache (paper §5.5)
                run_one_shard(&ctx, block, query, fetch, tuning, None)
            }
            BackendChoice::Block => {
                let idx = self.sharded_index(state, fanout);
                let image = idx.block.get_or_init(|| {
                    ShardedBlockImage::build(
                        m.index(),
                        &idx.mem,
                        self.inner.disk_fraction,
                        self.inner.pool,
                        self.inner.cost,
                    )
                });
                let _serial = self.inner.disk_gate.lock().unwrap();
                image.reset_io(); // per-query cold cache
                run_one_shard(&ctx, &image.shards()[shard], query, fetch, tuning, None)
            }
        };
        if matches!(budget.trip_cause(), Some(Trip::Cancelled)) {
            return Err(SearchError::Cancelled);
        }
        out.tripped = budget.is_tripped();
        Ok(out)
    }

    /// Serves an already-parsed query by scattering it over `executors` —
    /// one [`ShardExecutor`] per shard, typically a router's remote
    /// `shard_exec` clients — and gathering under the same seeded-floor,
    /// over-fetch and merge logic as the in-process fan-out: both paths
    /// run the identical per-shard unit and the identical total-order
    /// merge, which is what makes routed results bit-identical to
    /// single-process sharded execution in the fully-resolved regime.
    ///
    /// Differences from [`QueryEngine::execute_with_budget`]: no result
    /// cache (the shard tier ages independently of the router's epoch),
    /// the NRA seed floor is computed from the router's own copy of the
    /// lists (the floor is only consulted on the exact path, where the
    /// untruncated lists match the memory lists entry for entry — the
    /// value is identical on every node of the same corpus build), and
    /// shards whose every replica failed degrade the response to
    /// [`Completeness::Approximate`] with [`ApproxReason::ShardsMissing`]
    /// instead of erroring — exact over the surviving partitions, honest
    /// about the absent ones.
    ///
    /// # Errors
    /// [`SearchError::DeadlineExceeded`] when the deadline expired before
    /// execution started; [`SearchError::Cancelled`] when the budget's
    /// cancel token fired.
    pub fn execute_routed(
        &self,
        query: Query,
        k: usize,
        options: &SearchOptions,
        budget: &Budget,
        executors: &[&dyn ShardExecutor],
    ) -> Result<SearchResponse, SearchError> {
        let start = Instant::now();
        let obs = &self.inner.obs;
        if let Some(err) = budget.dead_on_arrival() {
            return Err(err);
        }
        let tracer = if options.trace || obs.slow.is_some() {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        };
        let plan_span = tracer.span(StageKind::Plan);
        let n = executors.len().max(1);
        let live = self.live();
        let m = &*live.index.miner;
        let delta_snapshot = if options.use_delta {
            live.delta.clone().filter(|d| !d.is_empty())
        } else {
            None
        };
        let exact_probes = Self::exact_probes(m);
        let image_truncated = matches!(options.backend, BackendChoice::Disk | BackendChoice::Block)
            && self.inner.disk_fraction < 1.0;
        let base = crate::plan::base_completeness(
            options,
            image_truncated,
            delta_snapshot.is_some(),
            exact_probes,
            n,
        );
        plan_span.end();
        let ctx = ExecContext {
            miner: m,
            options,
            image_truncated,
            delta: delta_snapshot.as_deref(),
            exact_probes,
            budget,
            tracer: &tracer,
        };
        let seed = |fetch: usize| {
            let idx = self.sharded_index(&live.index, n);
            let backends: Vec<MemoryBackend<'_>> =
                idx.mem.shards().iter().map(ListShard::backend).collect();
            let refs: Vec<&MemoryBackend<'_>> = backends.iter().collect();
            crate::plan::seed_floor(&ctx, &refs, &query, fetch)
        };
        let exec_span = tracer.span(StageKind::Execute);
        let (hits, stats, report) = run_query_on(&ctx, executors, &seed, &query, k);
        exec_span.end();
        obs.record_execution(options.backend, &stats, None);
        if matches!(budget.trip_cause(), Some(Trip::Cancelled)) {
            return Err(SearchError::Cancelled);
        }
        let completeness = if !report.missing.is_empty() {
            Completeness::Approximate {
                reason: ApproxReason::ShardsMissing {
                    missing: report.missing.len() as u32,
                },
            }
        } else {
            match budget.trip_cause() {
                Some(Trip::Cancelled) => return Err(SearchError::Cancelled),
                Some(trip) => {
                    let kind = trip.budget_kind().expect("non-cancel trip maps to a kind");
                    match kind {
                        crate::budget::BudgetKind::Deadline => obs.trip_deadline.inc(),
                        crate::budget::BudgetKind::Io => obs.trip_io.inc(),
                        crate::budget::BudgetKind::Steps => obs.trip_steps.inc(),
                    }
                    Completeness::Truncated { budget_hit: kind }
                }
                // A shard's own deadline budget tripped even though the
                // router's did not: the merge is an anytime envelope.
                None if report.remote_tripped => Completeness::Truncated {
                    budget_hit: crate::budget::BudgetKind::Deadline,
                },
                None => base,
            }
        };
        if n > 1 {
            // lint-allow: relaxed-ordering — monotone query counter, read only by stats
            self.inner.sharded_queries.fetch_add(1, Ordering::Relaxed);
            obs.sharded_queries.inc();
        }
        // lint-allow: relaxed-ordering — monotone query counter, read only by stats
        self.inner.served.fetch_add(1, Ordering::Relaxed);
        obs.queries_served.inc();
        let text_span = tracer.span(StageKind::TextResolve);
        let hits: Vec<SearchHit> = hits
            .into_iter()
            .map(|hit| SearchHit {
                text: m.phrase_text(hit.phrase),
                interestingness: estimated_interestingness(query.op, hit.score),
                hit,
            })
            .collect();
        text_span.end();
        let elapsed = start.elapsed();
        obs.latency.observe(elapsed);
        let meta = TraceMeta {
            query: query.render(m.corpus()),
            algorithm: options.algorithm.name(),
            backend: options.backend.name(),
            k,
            shards: n,
            epoch: live.epoch,
            served_from_cache: false,
            completeness: completeness_label(&completeness),
            budget_trip: budget.trip_cause().and_then(|t| match t {
                Trip::Cancelled => Some("cancelled"),
                t => t.budget_kind().map(crate::budget::BudgetKind::name),
            }),
        };
        let trace = self.finish_trace(tracer, meta, options);
        Ok(SearchResponse {
            query,
            hits,
            elapsed,
            io: None,
            served_from_cache: false,
            shards: n,
            completeness,
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::MinerConfig;
    use crate::query::Operator;
    use ipm_index::corpus_index::IndexConfig;
    use ipm_index::mining::MiningConfig;

    fn engine() -> QueryEngine {
        let (c, _) = ipm_corpus::synth::generate(&ipm_corpus::synth::tiny());
        QueryEngine::new(PhraseMiner::build(
            &c,
            MinerConfig {
                index: IndexConfig {
                    mining: MiningConfig {
                        min_df: 3,
                        max_len: 4,
                        min_len: 1,
                    },
                },
                ..Default::default()
            },
        ))
    }

    fn query_string(e: &QueryEngine, op: Operator) -> String {
        let miner = e.miner();
        let corpus = miner.corpus();
        let top = ipm_corpus::stats::top_words_by_df(corpus, 2);
        let words: Vec<&str> = top
            .iter()
            .map(|&(w, _)| corpus.words().term(w).unwrap())
            .collect();
        words.join(&format!(" {op} "))
    }

    const ALL_ALGORITHMS: [Algorithm; 4] = [
        Algorithm::Nra,
        Algorithm::Smj,
        Algorithm::Ta,
        Algorithm::Exact,
    ];

    #[test]
    fn search_returns_resolved_hits() {
        let e = engine();
        let q = query_string(&e, Operator::Or);
        let resp = e.search(&q, 5).unwrap();
        assert!(!resp.hits.is_empty());
        for h in &resp.hits {
            assert!(!h.text.is_empty());
            assert!((0.0..=1.0).contains(&h.interestingness));
        }
        assert!(resp.io.is_none());
        assert!(!resp.served_from_cache);
        assert_eq!(e.queries_served(), 1);
    }

    #[test]
    fn malformed_query_is_an_error_not_a_panic() {
        let e = engine();
        assert!(e.search("", 5).is_err());
        assert!(e.search("zzzz_not_a_word_zzzz", 5).is_err());
        assert_eq!(e.queries_served(), 0);
    }

    #[test]
    fn algorithms_agree_through_the_engine() {
        let e = engine();
        let q = query_string(&e, Operator::Or);
        let mut phrases: Vec<Vec<_>> = Vec::new();
        for alg in [Algorithm::Nra, Algorithm::Smj, Algorithm::Ta] {
            let resp = e
                .search_with(
                    &q,
                    5,
                    &SearchOptions {
                        algorithm: alg,
                        ..Default::default()
                    },
                )
                .unwrap();
            phrases.push(resp.hits.iter().map(|h| h.hit.phrase).collect());
        }
        assert_eq!(phrases[0], phrases[1], "NRA vs SMJ");
        assert_eq!(phrases[1], phrases[2], "SMJ vs TA");
    }

    #[test]
    fn disk_backend_matches_memory_for_every_algorithm() {
        let e = engine();
        for op in [Operator::And, Operator::Or] {
            let q = query_string(&e, op);
            for alg in ALL_ALGORITHMS {
                let mem = e
                    .search_with(
                        &q,
                        5,
                        &SearchOptions {
                            algorithm: alg,
                            ..Default::default()
                        },
                    )
                    .unwrap();
                let disk = e
                    .search_with(
                        &q,
                        5,
                        &SearchOptions {
                            algorithm: alg,
                            backend: BackendChoice::Disk,
                            ..Default::default()
                        },
                    )
                    .unwrap();
                assert_eq!(
                    mem.hits.iter().map(|h| h.hit.phrase).collect::<Vec<_>>(),
                    disk.hits.iter().map(|h| h.hit.phrase).collect::<Vec<_>>(),
                    "{alg:?} {op}: memory and disk backends disagree"
                );
                for (a, b) in mem.hits.iter().zip(&disk.hits) {
                    assert_eq!(a.text, b.text, "{alg:?}: text resolution differs");
                }
                let io = disk.io.expect("disk run reports IoStats");
                assert!(io.total_accesses() > 0, "{alg:?} {op}: no IO charged");
                assert!(mem.io.is_none());
            }
        }
    }

    #[test]
    fn block_backend_matches_memory_bit_for_bit() {
        let e = engine();
        for op in [Operator::And, Operator::Or] {
            let q = query_string(&e, op);
            for alg in ALL_ALGORITHMS {
                let mem = e
                    .search_with(
                        &q,
                        5,
                        &SearchOptions {
                            algorithm: alg,
                            ..Default::default()
                        },
                    )
                    .unwrap();
                let block = e
                    .search_with(
                        &q,
                        5,
                        &SearchOptions {
                            algorithm: alg,
                            backend: BackendChoice::Block,
                            ..Default::default()
                        },
                    )
                    .unwrap();
                assert_eq!(
                    mem.hits.iter().map(|h| h.hit.phrase).collect::<Vec<_>>(),
                    block.hits.iter().map(|h| h.hit.phrase).collect::<Vec<_>>(),
                    "{alg:?} {op}: memory and block backends disagree"
                );
                for (a, b) in mem.hits.iter().zip(&block.hits) {
                    assert_eq!(
                        a.hit.score.to_bits(),
                        b.hit.score.to_bits(),
                        "{alg:?} {op}: dequantized scores must be bit-identical"
                    );
                    assert_eq!(a.text, b.text);
                }
                let io = block.io.expect("block run reports IoStats");
                if alg != Algorithm::Exact {
                    // The exact scorer never touches the lists, and the
                    // block image resolves texts in memory — only the
                    // list algorithms charge block fetches.
                    assert!(io.total_accesses() > 0, "{alg:?} {op}: no IO charged");
                }
            }
        }
    }

    #[test]
    fn cache_serves_repeats_and_counts() {
        let e = engine();
        let q = query_string(&e, Operator::Or);
        let cold = e.search(&q, 5).unwrap();
        assert!(!cold.served_from_cache);
        let warm = e.search(&q, 5).unwrap();
        assert!(warm.served_from_cache);
        assert_eq!(cold.hits, warm.hits);
        let stats = e.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(e.queries_served(), 2);
        // Different options are different cache entries.
        let other = e
            .search_with(
                &q,
                5,
                &SearchOptions {
                    algorithm: Algorithm::Smj,
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(!other.served_from_cache);
        // Clearing forgets results but keeps counters.
        e.clear_cache();
        assert!(!e.search(&q, 5).unwrap().served_from_cache);
        assert_eq!(e.cache_stats().hits, 1);
    }

    #[test]
    fn cache_key_ignores_feature_order() {
        let e = engine();
        let miner = e.miner();
        let corpus = miner.corpus();
        let top = ipm_corpus::stats::top_words_by_df(corpus, 2);
        let words: Vec<&str> = top
            .iter()
            .map(|&(w, _)| corpus.words().term(w).unwrap())
            .collect();
        let fwd = format!("{} OR {}", words[0], words[1]);
        let rev = format!("{} OR {}", words[1], words[0]);
        assert!(!e.search(&fwd, 5).unwrap().served_from_cache);
        assert!(
            e.search(&rev, 5).unwrap().served_from_cache,
            "feature order must not fragment the cache"
        );
    }

    #[test]
    fn disk_cache_hit_skips_io() {
        let e = engine();
        let q = query_string(&e, Operator::And);
        let opts = SearchOptions {
            backend: BackendChoice::Disk,
            ..Default::default()
        };
        let cold = e.search_with(&q, 5, &opts).unwrap();
        assert!(cold.io.unwrap().total_accesses() > 0);
        let warm = e.search_with(&q, 5, &opts).unwrap();
        assert!(warm.served_from_cache);
        assert!(warm.io.is_none(), "cache hit performs no simulated IO");
        assert_eq!(cold.hits, warm.hits);
    }

    #[test]
    fn truncated_disk_image_keeps_partial_nra_semantics() {
        // Regression: with `disk_fraction < 1.0` and no run-time
        // `nra_fraction`, disk NRA must use partial-list bounds — its
        // results must match memory NRA at the same fraction, not drop
        // AND candidates whose tail entries were truncated away.
        let (c, _) = ipm_corpus::synth::generate(&ipm_corpus::synth::tiny());
        let e = QueryEngine::with_config(
            PhraseMiner::build(&c, MinerConfig::default()),
            EngineConfig {
                disk_fraction: 0.5,
                cache: None,
                ..Default::default()
            },
        );
        for op in [Operator::And, Operator::Or] {
            let q = query_string(&e, op);
            let disk = e
                .search_with(
                    &q,
                    5,
                    &SearchOptions {
                        backend: BackendChoice::Disk,
                        ..Default::default()
                    },
                )
                .unwrap();
            let mem_partial = e
                .search_with(
                    &q,
                    5,
                    &SearchOptions {
                        nra_fraction: Some(0.5),
                        ..Default::default()
                    },
                )
                .unwrap();
            assert_eq!(
                disk.hits.iter().map(|h| h.hit.phrase).collect::<Vec<_>>(),
                mem_partial
                    .hits
                    .iter()
                    .map(|h| h.hit.phrase)
                    .collect::<Vec<_>>(),
                "{op}: truncated disk image must behave like run-time partial lists"
            );
        }
    }

    #[test]
    fn cache_can_be_disabled() {
        let (c, _) = ipm_corpus::synth::generate(&ipm_corpus::synth::tiny());
        let e = QueryEngine::with_config(
            PhraseMiner::build(&c, MinerConfig::default()),
            EngineConfig {
                cache: None,
                ..Default::default()
            },
        );
        let q = query_string(&e, Operator::Or);
        assert!(!e.search(&q, 5).unwrap().served_from_cache);
        assert!(!e.search(&q, 5).unwrap().served_from_cache);
        assert_eq!(e.cache_stats(), CacheStats::default());
    }

    #[test]
    fn redundancy_option_filters_across_algorithms_and_backends() {
        let e = engine();
        let q = query_string(&e, Operator::Or);
        let red = RedundancyConfig::default();
        for backend in [BackendChoice::Memory, BackendChoice::Disk] {
            for alg in ALL_ALGORITHMS {
                let resp = e
                    .search_with(
                        &q,
                        5,
                        &SearchOptions {
                            algorithm: alg,
                            backend,
                            redundancy: Some(red),
                            ..Default::default()
                        },
                    )
                    .unwrap();
                let query = &resp.query;
                let miner = e.miner();
                for h in &resp.hits {
                    let words = miner.index().dict.words(h.hit.phrase).unwrap();
                    assert!(
                        crate::redundancy::overlap_fraction(words, query) < red.max_overlap,
                        "{alg:?}/{backend:?} leaked redundant phrase {}",
                        h.text
                    );
                }
            }
        }
    }

    #[test]
    fn nra_fraction_composes_with_redundancy() {
        // Regression: the old engine dropped `nra_fraction` whenever a
        // redundancy filter was set. A fraction small enough to change the
        // candidate set must now change the filtered results too.
        let e = engine();
        let q = query_string(&e, Operator::Or);
        let red = RedundancyConfig { max_overlap: 2.0 }; // filter disabled ⇒ pure pass-through
        let filtered = e
            .search_with(
                &q,
                5,
                &SearchOptions {
                    nra_fraction: Some(0.05),
                    redundancy: Some(red),
                    ..Default::default()
                },
            )
            .unwrap();
        let partial_only = e
            .search_with(
                &q,
                5,
                &SearchOptions {
                    nra_fraction: Some(0.05),
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(
            filtered
                .hits
                .iter()
                .map(|h| h.hit.phrase)
                .collect::<Vec<_>>(),
            partial_only
                .hits
                .iter()
                .map(|h| h.hit.phrase)
                .collect::<Vec<_>>(),
            "a no-op filter must not change partial-NRA results"
        );
    }

    #[test]
    fn concurrent_clones_serve_identical_results() {
        let e = engine();
        let q = query_string(&e, Operator::And);
        let baseline: Vec<_> = e
            .search(&q, 5)
            .unwrap()
            .hits
            .iter()
            .map(|h| h.hit.phrase)
            .collect();
        let threads = 8;
        let per_thread = 25;
        std::thread::scope(|s| {
            for t in 0..threads {
                let eng = e.clone();
                let q = q.clone();
                let want = baseline.clone();
                s.spawn(move || {
                    // Half the threads hit the disk backend to exercise the
                    // serialization gate concurrently with memory serving.
                    let opts = if t % 2 == 0 {
                        SearchOptions::default()
                    } else {
                        SearchOptions {
                            backend: BackendChoice::Disk,
                            ..Default::default()
                        }
                    };
                    for _ in 0..per_thread {
                        let got: Vec<_> = eng
                            .search_with(&q, 5, &opts)
                            .unwrap()
                            .hits
                            .iter()
                            .map(|h| h.hit.phrase)
                            .collect();
                        assert_eq!(got, want);
                    }
                });
            }
        });
        assert_eq!(e.queries_served(), 1 + (threads * per_thread) as u64);
        let stats = e.cache_stats();
        assert!(stats.hits > 0, "repeat queries must hit the cache");
    }

    #[test]
    fn attached_delta_corrects_nra_and_clears_cache() {
        let e = engine();
        let q = query_string(&e, Operator::Or);
        let delta_opts = SearchOptions {
            use_delta: true,
            ..Default::default()
        };
        // Without a delta attached the flag is a no-op (and a distinct
        // cache entry).
        let plain: Vec<_> = e
            .search(&q, 5)
            .unwrap()
            .hits
            .iter()
            .map(|h| h.hit.phrase)
            .collect();
        let noop: Vec<_> = e
            .search_with(&q, 5, &delta_opts)
            .unwrap()
            .hits
            .iter()
            .map(|h| h.hit.phrase)
            .collect();
        assert_eq!(plain, noop);

        // Warm the cache, then attach a delta: cached entries must drop.
        assert!(e.search(&q, 5).unwrap().served_from_cache);
        let top = ipm_corpus::stats::top_words_by_df(e.miner().corpus(), 2);
        let mut delta = crate::delta::DeltaIndex::new();
        for _ in 0..20 {
            delta.add_document(e.miner().index(), &[top[0].0], &[]);
        }
        e.attach_delta(delta);
        assert!(
            !e.search(&q, 5).unwrap().served_from_cache,
            "attach_delta must clear the result cache"
        );

        // The engine's delta path matches the miner's reference
        // implementation exactly.
        let query = e.miner().parse_query_str(&q).unwrap();
        let want: Vec<_> = e
            .miner()
            .top_k_nra_with_delta(&query, 5, &e.delta().unwrap())
            .hits
            .iter()
            .map(|h| h.phrase)
            .collect();
        let got: Vec<_> = e
            .search_with(&q, 5, &delta_opts)
            .unwrap()
            .hits
            .iter()
            .map(|h| h.hit.phrase)
            .collect();
        assert_eq!(got, want, "engine delta path must match the miner's");

        // In-place updates and detaching clear the cache too.
        assert!(e.search_with(&q, 5, &delta_opts).unwrap().served_from_cache);
        e.update_delta(|d| d.delete_document(ipm_corpus::DocId(0)));
        assert!(
            !e.search_with(&q, 5, &delta_opts).unwrap().served_from_cache,
            "update_delta must clear the result cache"
        );
        e.detach_delta();
        assert!(e.delta().is_none());
        assert!(!e.search(&q, 5).unwrap().served_from_cache);
    }

    #[test]
    fn io_totals_accumulate_across_disk_queries() {
        let e = engine();
        assert_eq!(e.io_totals(), ipm_storage::IoStats::default());
        let opts = SearchOptions {
            backend: BackendChoice::Disk,
            ..Default::default()
        };
        let q = query_string(&e, Operator::Or);
        let first = e.search_with(&q, 5, &opts).unwrap().io.unwrap();
        assert_eq!(e.io_totals(), first);
        // A cache hit performs no IO and adds nothing.
        assert!(e.search_with(&q, 5, &opts).unwrap().served_from_cache);
        assert_eq!(e.io_totals(), first);
        // A distinct disk query accumulates on top.
        let q2 = query_string(&e, Operator::And);
        let second = e.search_with(&q2, 5, &opts).unwrap().io.unwrap();
        let totals = e.io_totals();
        assert_eq!(
            totals.total_accesses(),
            first.total_accesses() + second.total_accesses()
        );
        // Memory-backed queries never contribute.
        let q3 = format!("{q} "); // same query, same key — cached
        let _ = e.search(&q3, 5).unwrap();
        assert_eq!(e.io_totals(), totals);
    }

    #[test]
    fn clear_cache_races_with_concurrent_searches() {
        let e = engine();
        let q = query_string(&e, Operator::Or);
        let want: Vec<_> = e
            .search(&q, 5)
            .unwrap()
            .hits
            .iter()
            .map(|h| h.hit.phrase)
            .collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let eng = e.clone();
                let q = q.clone();
                let want = want.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        let got: Vec<_> = eng
                            .search(&q, 5)
                            .unwrap()
                            .hits
                            .iter()
                            .map(|h| h.hit.phrase)
                            .collect();
                        assert_eq!(got, want, "a racing clear must never corrupt results");
                    }
                });
            }
            let eng = e.clone();
            s.spawn(move || {
                for _ in 0..100 {
                    eng.clear_cache();
                    std::thread::yield_now();
                }
            });
        });
    }

    #[test]
    fn sharded_execution_matches_unsharded_for_all_algorithms() {
        let e = engine();
        for op in [Operator::And, Operator::Or] {
            let q = query_string(&e, op);
            for backend in [BackendChoice::Memory, BackendChoice::Disk] {
                for alg in ALL_ALGORITHMS {
                    let base = e
                        .search_with(
                            &q,
                            5,
                            &SearchOptions {
                                algorithm: alg,
                                backend,
                                ..Default::default()
                            },
                        )
                        .unwrap();
                    assert_eq!(base.shards, 1);
                    for n in [2usize, 3, 8] {
                        let sharded = e
                            .search_with(
                                &q,
                                5,
                                &SearchOptions {
                                    algorithm: alg,
                                    backend,
                                    shards: Some(n),
                                    ..Default::default()
                                },
                            )
                            .unwrap();
                        assert!(
                            !sharded.served_from_cache,
                            "distinct cache entry per fanout"
                        );
                        assert_eq!(sharded.shards, n);
                        assert_eq!(
                            base.hits.iter().map(|h| h.hit.phrase).collect::<Vec<_>>(),
                            sharded
                                .hits
                                .iter()
                                .map(|h| h.hit.phrase)
                                .collect::<Vec<_>>(),
                            "{alg:?}/{backend:?}/{op} @ {n} shards: phrase drift"
                        );
                        for (a, b) in base.hits.iter().zip(&sharded.hits) {
                            assert!(
                                (a.hit.score - b.hit.score).abs() < 1e-12,
                                "{alg:?}/{backend:?}/{op} @ {n}: score drift"
                            );
                            assert_eq!(a.text, b.text);
                        }
                        if backend == BackendChoice::Disk {
                            let io = sharded.io.expect("sharded disk run reports IO");
                            assert!(io.total_accesses() > 0, "{alg:?}/{op}: no IO charged");
                        }
                    }
                }
            }
        }
        assert!(e.sharded_queries() > 0);
    }

    #[test]
    fn sharded_merge_breaks_ties_deterministically() {
        // Three phrases with byte-identical scores: the merge's total
        // order (score desc, phrase id asc) must produce one canonical
        // sequence regardless of shard count, thread interleaving, or
        // repetition.
        let mut b = ipm_corpus::CorpusBuilder::new(ipm_corpus::TokenizerConfig::default());
        for t in [
            "x aa", "x aa", "x bb", "x bb", "x cc", "x cc", "x dd", "x dd",
        ] {
            b.add_text(t);
        }
        let e = QueryEngine::new(PhraseMiner::build(
            &b.build(),
            MinerConfig {
                index: IndexConfig {
                    mining: MiningConfig {
                        min_df: 2,
                        max_len: 2,
                        min_len: 1,
                    },
                },
                ..Default::default()
            },
        ));
        // Scores live on different scales per algorithm (the exact scorer
        // returns interestingness, the list algorithms return aggregate
        // scores), so each algorithm keeps its own canonical sequence —
        // but phrase *order* must also agree across all of them.
        let mut canonical_order: Option<Vec<ipm_corpus::PhraseId>> = None;
        let mut canonical: [Option<Vec<(ipm_corpus::PhraseId, u64)>>; 4] = Default::default();
        for _ in 0..10 {
            for n in [1usize, 2, 3, 8] {
                for (ai, alg) in ALL_ALGORITHMS.into_iter().enumerate() {
                    let got: Vec<_> = e
                        .search_with(
                            "x",
                            3,
                            &SearchOptions {
                                algorithm: alg,
                                shards: Some(n),
                                ..Default::default()
                            },
                        )
                        .unwrap()
                        .hits
                        .iter()
                        .map(|h| (h.hit.phrase, h.hit.score.to_bits()))
                        .collect();
                    let order: Vec<_> = got.iter().map(|&(p, _)| p).collect();
                    match &canonical_order {
                        None => canonical_order = Some(order),
                        Some(want) => assert_eq!(
                            &order, want,
                            "{alg:?} @ {n} shards: tie order must be canonical"
                        ),
                    }
                    match &canonical[ai] {
                        None => canonical[ai] = Some(got),
                        Some(want) => assert_eq!(
                            &got, want,
                            "{alg:?} @ {n} shards: results must be byte-identical"
                        ),
                    }
                }
            }
        }
    }

    #[test]
    fn engine_default_fanout_applies_when_request_leaves_it_unset() {
        let (c, _) = ipm_corpus::synth::generate(&ipm_corpus::synth::tiny());
        let sharded_engine = QueryEngine::with_config(
            PhraseMiner::build(&c, MinerConfig::default()),
            EngineConfig {
                shards: 4,
                ..Default::default()
            },
        );
        assert_eq!(sharded_engine.default_shards(), 4);
        let q = query_string(&sharded_engine, Operator::Or);
        let resp = sharded_engine.search(&q, 5).unwrap();
        assert_eq!(resp.shards, 4, "default fanout must apply");
        assert_eq!(sharded_engine.sharded_queries(), 1);
        // An explicit single-shard request on the same engine matches it.
        let single = sharded_engine
            .search_with(
                &q,
                5,
                &SearchOptions {
                    shards: Some(1),
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(single.shards, 1);
        assert_eq!(
            resp.hits.iter().map(|h| h.hit.phrase).collect::<Vec<_>>(),
            single.hits.iter().map(|h| h.hit.phrase).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn layout_cache_is_bounded_and_keeps_serving() {
        // A client sweeping fanouts must not pin one full index copy per
        // distinct value: the layout cache evicts LRU entries past its
        // cap, and every fanout keeps serving correct results (a rebuilt
        // layout is identical to the evicted one).
        let e = engine();
        let q = query_string(&e, Operator::Or);
        let want: Vec<_> = e
            .search(&q, 5)
            .unwrap()
            .hits
            .iter()
            .map(|h| h.hit.phrase)
            .collect();
        for n in 2..=12usize {
            let got: Vec<_> = e
                .search_with(
                    &q,
                    5,
                    &SearchOptions {
                        shards: Some(n),
                        ..Default::default()
                    },
                )
                .unwrap()
                .hits
                .iter()
                .map(|h| h.hit.phrase)
                .collect();
            assert_eq!(got, want, "{n} shards after evictions");
            assert!(
                e.cached_layouts() <= 4,
                "layout cache exceeded its bound: {}",
                e.cached_layouts()
            );
        }
        // A re-requested evicted fanout rebuilds and still matches.
        let again: Vec<_> = e
            .search_with(
                &q,
                6, // different k: bypass the result cache
                &SearchOptions {
                    shards: Some(2),
                    ..Default::default()
                },
            )
            .unwrap()
            .hits
            .iter()
            .map(|h| h.hit.phrase)
            .collect();
        assert_eq!(again[..5], want[..]);
    }

    #[test]
    fn cache_key_resolves_fanout_before_keying() {
        // Requests that resolve to the same fanout must share one cache
        // entry: `None` on a default-4 engine equals an explicit 4, and
        // over-clamp values collapse onto MAX_SHARDS.
        let (c, _) = ipm_corpus::synth::generate(&ipm_corpus::synth::tiny());
        let e = QueryEngine::with_config(
            PhraseMiner::build(&c, MinerConfig::default()),
            EngineConfig {
                shards: 4,
                ..Default::default()
            },
        );
        let q = query_string(&e, Operator::Or);
        assert!(!e.search(&q, 5).unwrap().served_from_cache);
        let explicit = e
            .search_with(
                &q,
                5,
                &SearchOptions {
                    shards: Some(4),
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(
            explicit.served_from_cache,
            "explicit default fanout must hit the None-keyed entry"
        );
        let over = |n: usize| SearchOptions {
            shards: Some(n),
            ..Default::default()
        };
        assert!(
            !e.search_with(&q, 5, &over(1_000))
                .unwrap()
                .served_from_cache
        );
        assert!(
            e.search_with(&q, 5, &over(crate::plan::MAX_SHARDS))
                .unwrap()
                .served_from_cache,
            "over-clamp fanouts must share the clamped entry"
        );
    }

    #[test]
    fn redundancy_filter_composes_with_sharding() {
        let e = engine();
        let q = query_string(&e, Operator::Or);
        let red = RedundancyConfig::default();
        for n in [1usize, 3] {
            let resp = e
                .search_with(
                    &q,
                    5,
                    &SearchOptions {
                        redundancy: Some(red),
                        shards: Some(n),
                        ..Default::default()
                    },
                )
                .unwrap();
            let query = &resp.query;
            let miner = e.miner();
            for h in &resp.hits {
                let words = miner.index().dict.words(h.hit.phrase).unwrap();
                assert!(
                    crate::redundancy::overlap_fraction(words, query) < red.max_overlap,
                    "{n} shards leaked redundant phrase {}",
                    h.text
                );
            }
        }
    }

    #[test]
    fn sharded_delta_composes_and_cache_invalidates() {
        // §4.5.1 delta corrections apply per shard on the NRA path. With a
        // k covering every candidate, each shard exhausts its corrected
        // lists, so the merged result is the full corrected candidate set
        // — identical across sharded fanouts, set-equal to the unsharded
        // reference (whose upper-bound ranking may order ties differently),
        // and re-ranked by the deterministic merge order.
        let e = engine();
        let q = query_string(&e, Operator::Or);
        let top = ipm_corpus::stats::top_words_by_df(e.miner().corpus(), 2);
        let mut delta = crate::delta::DeltaIndex::new();
        for _ in 0..25 {
            delta.add_document(e.miner().index(), &[top[0].0], &[]);
        }
        e.attach_delta(delta);
        let k = 200;
        let opts = |n: usize| SearchOptions {
            use_delta: true,
            shards: Some(n),
            ..Default::default()
        };
        let reference = e.search_with(&q, k, &opts(1)).unwrap();
        let mut want: Vec<_> = reference.hits.iter().map(|h| h.hit.phrase).collect();
        want.sort_unstable();
        let mut first: Option<Vec<(ipm_corpus::PhraseId, u64)>> = None;
        for n in [2usize, 3, 8] {
            let resp = e.search_with(&q, k, &opts(n)).unwrap();
            // Deterministic merge order: score desc, ties by id asc.
            for w in resp.hits.windows(2) {
                assert!(
                    w[0].hit.score > w[1].hit.score
                        || (w[0].hit.score == w[1].hit.score && w[0].hit.phrase < w[1].hit.phrase),
                    "sharded delta results must follow the merge total order"
                );
            }
            let mut got: Vec<_> = resp.hits.iter().map(|h| h.hit.phrase).collect();
            let pairs: Vec<_> = resp
                .hits
                .iter()
                .map(|h| (h.hit.phrase, h.hit.score.to_bits()))
                .collect();
            match &first {
                None => first = Some(pairs),
                Some(want) => assert_eq!(&pairs, want, "{n} shards: fanout-dependent results"),
            }
            got.sort_unstable();
            assert_eq!(got, want, "{n} shards: candidate set drift vs unsharded");
        }
        // Mutating the delta must clear sharded cache entries too.
        assert!(e.search_with(&q, k, &opts(3)).unwrap().served_from_cache);
        e.update_delta(|d| d.delete_document(ipm_corpus::DocId(0)));
        assert!(
            !e.search_with(&q, k, &opts(3)).unwrap().served_from_cache,
            "update_delta must clear sharded entries"
        );
        e.detach_delta();
    }

    #[test]
    fn nra_fraction_option_is_honoured() {
        let e = engine();
        let q = query_string(&e, Operator::Or);
        // A tiny fraction still returns *something* (≥1 entry per list) and
        // must not panic.
        let resp = e
            .search_with(
                &q,
                5,
                &SearchOptions {
                    nra_fraction: Some(0.05),
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(!resp.hits.is_empty());
    }

    /// Uncached engine for batch tests: the result cache would otherwise
    /// serve later batch members from earlier items' entries and hide the
    /// execution path under test.
    fn uncached_engine() -> QueryEngine {
        let (c, _) = ipm_corpus::synth::generate(&ipm_corpus::synth::tiny());
        QueryEngine::with_config(
            PhraseMiner::build(
                &c,
                MinerConfig {
                    index: IndexConfig {
                        mining: MiningConfig {
                            min_df: 3,
                            max_len: 4,
                            min_len: 1,
                        },
                    },
                    ..Default::default()
                },
            ),
            EngineConfig {
                cache: None,
                ..Default::default()
            },
        )
    }

    #[test]
    fn batch_matches_serial_execution_and_reuses_decoded_blocks() {
        let e = uncached_engine();
        let q = query_string(&e, Operator::Or);
        let miner = e.miner();
        let opts = SearchOptions {
            backend: BackendChoice::Block,
            algorithm: Algorithm::Smj,
            ..Default::default()
        };
        // Serial baseline first (fresh IO state either way: per-query
        // reset).
        let serial: Vec<SearchResponse> = (0..6)
            .map(|_| e.search_with(&q, 5, &opts).unwrap())
            .collect();
        let items: Vec<BatchItem<'_>> = (0..6)
            .map(|_| BatchItem {
                query: miner.parse_query_str(&q).unwrap(),
                k: 5,
                options: opts.clone(),
                budget: Budget::none(),
            })
            .collect();
        let batched = e.execute_batch(items);
        assert_eq!(batched.len(), serial.len());
        for (b, s) in batched.iter().zip(&serial) {
            let b = b.as_ref().unwrap();
            assert_eq!(b.hits.len(), s.hits.len());
            for (x, y) in b.hits.iter().zip(&s.hits) {
                assert_eq!(x.hit.phrase, y.hit.phrase);
                assert_eq!(x.hit.score.to_bits(), y.hit.score.to_bits());
                assert_eq!(x.text, y.text);
            }
            assert_eq!(
                format!("{:?}", b.completeness),
                format!("{:?}", s.completeness)
            );
            // Fused members report no per-item IO: the shared scan's
            // block traffic is a group quantity (it lands in the engine's
            // IO totals instead).
            assert!(s.io.is_some(), "serial block query reports IO");
            assert!(b.io.is_none(), "fused member IO is a group quantity");
        }
        let (hits, misses) = e.decode_cache_stats();
        assert!(misses > 0, "first member decodes");
        assert!(hits > 0, "later members must reuse decoded blocks");
        // Identical queries share every block: 6 members, 5 reuse passes.
        assert!(hits >= misses * 4, "hits {hits} vs misses {misses}");
    }

    /// The fused shared scan must be bit-identical to serial execution
    /// for *distinct* member queries too: different word pairs sharing a
    /// hot head word, AND and OR mixed in one group, on both fusable
    /// backends.
    #[test]
    fn batch_fuses_distinct_word_sharing_queries_bit_for_bit() {
        let e = uncached_engine();
        let miner = e.miner();
        let words: Vec<String> = {
            let corpus = miner.corpus();
            ipm_corpus::stats::top_words_by_df(corpus, 5)
                .iter()
                .map(|&(w, _)| corpus.words().term(w).unwrap().to_string())
                .collect()
        };
        let queries: Vec<String> = words[1..]
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let op = if i % 2 == 0 { "OR" } else { "AND" };
                format!("{} {op} {w}", words[0])
            })
            .collect();
        for backend in [BackendChoice::Memory, BackendChoice::Block] {
            let opts = SearchOptions {
                backend,
                algorithm: Algorithm::Smj,
                ..Default::default()
            };
            let serial: Vec<SearchResponse> = queries
                .iter()
                .map(|q| e.search_with(q, 4, &opts).unwrap())
                .collect();
            let items: Vec<BatchItem<'_>> = queries
                .iter()
                .map(|q| BatchItem {
                    query: miner.parse_query_str(q).unwrap(),
                    k: 4,
                    options: opts.clone(),
                    budget: Budget::none(),
                })
                .collect();
            let batched = e.execute_batch(items);
            for (qs, (b, s)) in queries.iter().zip(batched.iter().zip(&serial)) {
                let b = b.as_ref().unwrap();
                assert_eq!(b.hits.len(), s.hits.len(), "{backend:?} {qs}");
                for (x, y) in b.hits.iter().zip(&s.hits) {
                    assert_eq!(x.hit.phrase, y.hit.phrase, "{backend:?} {qs}");
                    assert_eq!(
                        x.hit.score.to_bits(),
                        y.hit.score.to_bits(),
                        "{backend:?} {qs}"
                    );
                    assert_eq!(x.text, y.text, "{backend:?} {qs}");
                }
                assert_eq!(
                    format!("{:?}", b.completeness),
                    format!("{:?}", s.completeness),
                    "{backend:?} {qs}"
                );
            }
        }
    }

    #[test]
    fn batch_epoch_bump_invalidates_decoded_blocks() {
        let e = uncached_engine();
        let q = query_string(&e, Operator::Or);
        let miner = e.miner();
        let opts = SearchOptions {
            backend: BackendChoice::Block,
            ..Default::default()
        };
        let run_batch = |n: usize| {
            let items: Vec<BatchItem<'_>> = (0..n)
                .map(|_| BatchItem {
                    query: miner.parse_query_str(&q).unwrap(),
                    k: 5,
                    options: opts.clone(),
                    budget: Budget::none(),
                })
                .collect();
            e.execute_batch(items)
        };
        run_batch(2);
        let (_, misses_before) = e.decode_cache_stats();
        // A delete bumps the epoch: the next batch must re-decode from
        // scratch (old entries are unreachable under the new epoch key).
        e.delete_document(ipm_corpus::DocId(0));
        run_batch(1);
        let (_, misses_after) = e.decode_cache_stats();
        assert!(
            misses_after > misses_before,
            "post-bump batch must miss (stale blocks unreachable)"
        );
    }

    #[test]
    fn batch_honors_per_item_budgets_via_sticky_trips() {
        let e = uncached_engine();
        let q = query_string(&e, Operator::Or);
        let miner = e.miner();
        let opts = SearchOptions {
            backend: BackendChoice::Block,
            ..Default::default()
        };
        let tight = Budget::unlimited().with_io_budget(1);
        let items = vec![
            BatchItem {
                query: miner.parse_query_str(&q).unwrap(),
                k: 5,
                options: opts.clone(),
                budget: Budget::none(),
            },
            BatchItem {
                query: miner.parse_query_str(&q).unwrap(),
                k: 5,
                options: opts.clone(),
                budget: &tight,
            },
            BatchItem {
                query: miner.parse_query_str(&q).unwrap(),
                k: 5,
                options: opts.clone(),
                budget: Budget::none(),
            },
        ];
        let out = e.execute_batch(items);
        assert!(matches!(
            out[1].as_ref().unwrap().completeness,
            Completeness::Truncated { .. }
        ));
        for i in [0, 2] {
            assert!(
                !out[i].as_ref().unwrap().completeness.is_truncated(),
                "item {i}: a neighbour's tripped budget must not leak"
            );
        }
        // The truncated item matches its own serial execution exactly.
        let tight2 = Budget::unlimited().with_io_budget(1);
        let serial = e
            .execute_with_budget(miner.parse_query_str(&q).unwrap(), 5, &opts, &tight2)
            .unwrap();
        let b = out[1].as_ref().unwrap();
        assert_eq!(b.hits.len(), serial.hits.len());
        for (x, y) in b.hits.iter().zip(&serial.hits) {
            assert_eq!(x.hit.phrase, y.hit.phrase);
            assert_eq!(x.hit.score.to_bits(), y.hit.score.to_bits());
        }
    }
}
