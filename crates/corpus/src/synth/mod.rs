//! Synthetic corpus generation.
//!
//! The paper evaluates on Reuters-21578 (21,578 newswire documents, ~15k
//! distinct words) and on PubMed abstracts (655k documents, ~170k distinct
//! words). Neither collection ships with this repository, so this module
//! provides generators that reproduce the *statistical* properties the
//! paper's algorithms and experiments depend on:
//!
//! * Zipfian word frequencies (so postings-list lengths, index sizes and
//!   df-threshold effects are realistic),
//! * topical structure: documents draw most of their words from one to three
//!   topics, so query words are *correlated* with topic phrases — the exact
//!   structure the paper's conditional-independence assumption (§4.1.1)
//!   exploits and the quality experiments stress, and
//! * injected multi-word collocations per topic, which become the frequent
//!   n-grams that the phrase miner admits into the dictionary `P`.
//!
//! Generation is deterministic for a given [`SynthConfig::seed`].

mod presets;
mod randutil;
mod topics;
mod zipf;

pub use presets::{pubmed_like, reuters_like, tiny};
pub use randutil::{lognormal_usize, sample_distinct};
pub use topics::{generate, SynthConfig, TopicModel};
pub use zipf::Zipf;
