//! Figures 5 & 6: result quality of the approximate methods.
//!
//! For every `[partial-list %, operator]` configuration, the top-5 phrases
//! of the list-based method (NRA and SMJ return identical results — paper
//! §5.3 — so NRA runs here) are judged against the paper's correctness
//! criterion and averaged over the query set.

use super::datasets::DatasetBundle;
use super::report::{f3, Report};
use crate::judgments::RelevanceJudgments;
use crate::metrics::QualityScores;
use crate::queryset::to_queries;
use ipm_core::query::Operator;

/// Mean quality of the approximate method at one configuration.
pub fn evaluate(ds: &DatasetBundle, op: Operator, fraction: f64, k: usize) -> QualityScores {
    let queries = to_queries(&ds.queries, op);
    let mut per_query = Vec::with_capacity(queries.len());
    for q in &queries {
        let judge = RelevanceJudgments::compute(ds.miner.index(), q, k);
        let out = ds.miner.top_k_nra_partial(q, k, fraction);
        per_query.push(judge.score(&out.hits, k));
    }
    QualityScores::mean(&per_query)
}

/// Runs the full figure: both operators at the given fractions.
pub fn run(ds: &DatasetBundle, fractions: &[f64], k: usize) -> Report {
    let mut report = Report::new(
        format!("Figures 5/6 — result quality ({})", ds.name),
        &["config", "Precision", "MRR", "MAP", "NDCG"],
    );
    for &fraction in fractions {
        for op in [Operator::And, Operator::Or] {
            let scores = evaluate(ds, op, fraction, k);
            report.push_row(vec![
                format!("{}-{}", (fraction * 100.0).round() as u32, op),
                f3(scores.precision),
                f3(scores.mrr),
                f3(scores.map),
                f3(scores.ndcg),
            ]);
        }
    }
    report.push_note(format!(
        "k = {k}; {} queries; quality vs exact top-k under the paper's correctness criterion",
        ds.num_queries()
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::datasets::shared_test_bundle;

    #[test]
    fn full_lists_or_quality_is_high() {
        let ds = shared_test_bundle();
        let s = evaluate(ds, Operator::Or, 1.0, 5);
        // With full lists the OR scoring is the exact independence score;
        // quality should be near-perfect on the tiny corpus.
        assert!(s.ndcg > 0.6, "NDCG {:?}", s);
        assert!(s.precision > 0.0);
    }

    #[test]
    fn report_has_rows_for_all_configs() {
        let ds = shared_test_bundle();
        let r = run(ds, &[0.2, 0.5], 5);
        assert_eq!(r.rows.len(), 4);
        assert!(r.rows[0][0].contains("20-AND"));
        assert!(r.rows[3][0].contains("50-OR"));
    }

    #[test]
    fn larger_fraction_never_hurts_much() {
        let ds = shared_test_bundle();
        let small = evaluate(ds, Operator::Or, 0.2, 5);
        let full = evaluate(ds, Operator::Or, 1.0, 5);
        assert!(full.ndcg + 1e-9 >= small.ndcg - 0.2);
    }
}
