//! Regenerates Figure 6: result quality on the PubMed-like dataset.

use ipm_bench::{emit, K, QUALITY_FRACTIONS};
use ipm_eval::experiments::{datasets, quality};

fn main() {
    let ds = datasets::build_pubmed();
    emit(&quality::run(&ds, QUALITY_FRACTIONS, K));
}
