//! Structured per-query tracing: timed stages, per-shard execution
//! stats, and a ring-buffer slow-query log.
//!
//! The hot-path contract: a disabled [`Tracer`] is a `None` — every span
//! call is one branch and zero clock reads — and an enabled tracer makes
//! **one** allocation up front (the trace core) plus amortized stage
//! pushes. Shard threads record through a mutex that is only ever
//! contended by the handful of shards of one query.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The stage taxonomy of one query's lifetime.
///
/// `Parse`, `Plan`, `CacheProbe` and `Execute` are *top-level*: they tile
/// the query's wall time without overlapping. `SeedFloor`, `ShardExec`,
/// `Merge` and `TextResolve` nest inside `Execute` (shard stages run
/// concurrently, so their durations sum to more than `Execute` on a
/// fanned-out query — that is the parallelism, not an accounting bug).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageKind {
    /// Query-string parsing (recorded by whoever parses: the request
    /// builder or the server's prepare step).
    Parse,
    /// Planner resolution, head snapshot, cache-key build.
    Plan,
    /// Result-cache lookup.
    CacheProbe,
    /// The whole uncached execution (covers the nested stages below,
    /// including any wait on the disk serialization gate).
    Execute,
    /// TPUT-style threshold seeding before a sharded NRA fan-out.
    SeedFloor,
    /// One shard's algorithm run (carries the shard index).
    ShardExec,
    /// One shard's remote `shard_exec` RPC from the router (carries the
    /// shard index; covers pooling, hedging and failover for that shard).
    ShardRpc,
    /// Per-shard top-k merge, probe resolution and final ordering.
    Merge,
    /// Mapping result phrase ids to display text.
    TextResolve,
}

impl StageKind {
    /// The wire / display name.
    pub fn name(self) -> &'static str {
        match self {
            StageKind::Parse => "parse",
            StageKind::Plan => "plan",
            StageKind::CacheProbe => "cache_probe",
            StageKind::Execute => "execute",
            StageKind::SeedFloor => "seed_floor",
            StageKind::ShardExec => "shard_exec",
            StageKind::ShardRpc => "shard_rpc",
            StageKind::Merge => "merge",
            StageKind::TextResolve => "text_resolve",
        }
    }

    /// Whether this stage tiles the query's wall time (see the type-level
    /// docs); nested stages overlap and must not be summed against it.
    pub fn is_top_level(self) -> bool {
        matches!(
            self,
            StageKind::Parse | StageKind::Plan | StageKind::CacheProbe | StageKind::Execute
        )
    }
}

/// One timed stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageRecord {
    /// Which stage.
    pub kind: StageKind,
    /// Owning shard for [`StageKind::ShardExec`]; `None` elsewhere.
    pub shard: Option<usize>,
    /// Microseconds from trace start to stage start (nested stages carry
    /// offsets inside their parent; `Parse` is injected at offset 0).
    pub started_us: u64,
    /// Stage duration.
    pub duration: Duration,
}

/// Per-shard execution counters of one query (one record per shard per
/// over-fetch round).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index within the fan-out.
    pub shard: usize,
    /// Sorted (sequential list) entry accesses: NRA/TA score-list reads,
    /// SMJ id-list reads.
    pub sorted_accesses: u64,
    /// Random accesses: TA probes plus the merge's NRA score resolution
    /// probes into this shard.
    pub random_probes: u64,
    /// Entries skipped via block-max metadata (NRA on block lists).
    pub entries_skipped: u64,
    /// Algorithm loop progress: NRA prune rounds, SMJ merge steps
    /// (`0` for TA and the exact scorer, which have no round structure).
    pub rounds: u64,
    /// Simulated page fetches charged to this shard's backend during the
    /// round (seeding and probe resolution included; `0` on the memory
    /// backend, which performs no simulated IO).
    pub io_fetches: u64,
}

impl ShardStats {
    /// Bucket-wise addition (for folding rounds or shards together).
    pub fn accumulate(&mut self, other: &ShardStats) {
        self.sorted_accesses += other.sorted_accesses;
        self.random_probes += other.random_probes;
        self.entries_skipped += other.entries_skipped;
        self.rounds += other.rounds;
        self.io_fetches += other.io_fetches;
    }
}

/// The completed trace of one query — the EXPLAIN ANALYZE of this system.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryTrace {
    /// The query as text.
    pub query: String,
    /// Algorithm wire name.
    pub algorithm: &'static str,
    /// Backend wire name.
    pub backend: &'static str,
    /// Requested result count.
    pub k: usize,
    /// Planner-resolved shard fanout.
    pub shards: usize,
    /// Index epoch the query executed against.
    pub epoch: u64,
    /// Whether the result came from the query cache.
    pub served_from_cache: bool,
    /// Completeness label (`exact`, `approximate:<reason>`,
    /// `truncated:<kind>`).
    pub completeness: String,
    /// Which budget dimension tripped, if any (`deadline`/`io`/`steps`).
    pub budget_trip: Option<&'static str>,
    /// Timed stages, ordered by start offset.
    pub stages: Vec<StageRecord>,
    /// Per-shard counters (one record per shard per over-fetch round).
    pub shard_stats: Vec<ShardStats>,
    /// Wall time of the traced request.
    pub total: Duration,
}

impl QueryTrace {
    /// Injects the parse stage at the front (parsing happens before the
    /// engine's trace exists — the parser measures itself and reports in).
    /// Extends `total` accordingly.
    pub fn record_parse(&mut self, d: Duration) {
        self.stages.insert(
            0,
            StageRecord {
                kind: StageKind::Parse,
                shard: None,
                started_us: 0,
                duration: d,
            },
        );
        self.total += d;
    }

    /// Summed duration of every record of `kind`.
    pub fn stage_total(&self, kind: StageKind) -> Duration {
        self.stages
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| s.duration)
            .sum()
    }

    /// Summed duration of the non-overlapping top-level stages — the
    /// accounted share of [`QueryTrace::total`].
    pub fn top_level_total(&self) -> Duration {
        self.stages
            .iter()
            .filter(|s| s.kind.is_top_level())
            .map(|s| s.duration)
            .sum()
    }

    /// Per-shard counters folded across rounds into one record per shard
    /// index, ascending.
    pub fn shard_totals(&self) -> Vec<ShardStats> {
        let mut by_shard: std::collections::BTreeMap<usize, ShardStats> = Default::default();
        for s in &self.shard_stats {
            let slot = by_shard.entry(s.shard).or_insert(ShardStats {
                shard: s.shard,
                ..Default::default()
            });
            slot.accumulate(s);
        }
        by_shard.into_values().collect()
    }
}

impl fmt::Display for QueryTrace {
    /// The slow-query-log dump format: one header line, then indented
    /// stage and shard breakdowns.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "query={:?} alg={} backend={} k={} shards={} epoch={} total={:?} completeness={}{}{}",
            self.query,
            self.algorithm,
            self.backend,
            self.k,
            self.shards,
            self.epoch,
            self.total,
            self.completeness,
            if self.served_from_cache {
                " (cached)"
            } else {
                ""
            },
            match self.budget_trip {
                Some(t) => format!(" budget_trip={t}"),
                None => String::new(),
            },
        )?;
        for s in &self.stages {
            write!(f, "  {:>12}", s.kind.name())?;
            if let Some(shard) = s.shard {
                write!(f, "[{shard}]")?;
            }
            writeln!(f, " +{}us {:?}", s.started_us, s.duration)?;
        }
        for s in &self.shard_totals() {
            writeln!(
                f,
                "  shard {}: sorted={} probes={} skipped={} rounds={} io_fetches={}",
                s.shard,
                s.sorted_accesses,
                s.random_probes,
                s.entries_skipped,
                s.rounds,
                s.io_fetches
            )?;
        }
        Ok(())
    }
}

/// Everything [`Tracer::finish`] needs beyond the collected records.
#[derive(Debug, Clone, Default)]
pub struct TraceMeta {
    /// See [`QueryTrace::query`].
    pub query: String,
    /// See [`QueryTrace::algorithm`].
    pub algorithm: &'static str,
    /// See [`QueryTrace::backend`].
    pub backend: &'static str,
    /// See [`QueryTrace::k`].
    pub k: usize,
    /// See [`QueryTrace::shards`].
    pub shards: usize,
    /// See [`QueryTrace::epoch`].
    pub epoch: u64,
    /// See [`QueryTrace::served_from_cache`].
    pub served_from_cache: bool,
    /// See [`QueryTrace::completeness`].
    pub completeness: String,
    /// See [`QueryTrace::budget_trip`].
    pub budget_trip: Option<&'static str>,
}

#[derive(Debug)]
struct TraceCore {
    start: Instant,
    stages: Mutex<Vec<StageRecord>>,
    shards: Mutex<Vec<ShardStats>>,
}

/// A cheap, cloneable trace collector threaded down the execution path.
///
/// Disabled tracers no-op everywhere (one branch per call site); enabled
/// tracers share one [`Arc`]'d core across the shard threads of a query.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    core: Option<Arc<TraceCore>>,
}

impl Tracer {
    /// A no-op tracer for untraced queries.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A live tracer; the clock starts now.
    pub fn enabled() -> Self {
        Self {
            core: Some(Arc::new(TraceCore {
                start: Instant::now(),
                stages: Mutex::new(Vec::with_capacity(8)),
                shards: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Whether spans will actually record.
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Opens a timed stage; the returned guard records on drop.
    pub fn span(&self, kind: StageKind) -> Span {
        self.span_inner(kind, None)
    }

    /// Opens a timed per-shard stage.
    pub fn shard_span(&self, kind: StageKind, shard: usize) -> Span {
        self.span_inner(kind, Some(shard))
    }

    fn span_inner(&self, kind: StageKind, shard: Option<usize>) -> Span {
        Span {
            rec: self
                .core
                .as_ref()
                .map(|core| (core.clone(), kind, shard, Instant::now())),
        }
    }

    /// Records one shard's counters (called from shard fan-out code).
    pub fn record_shard(&self, stats: ShardStats) {
        if let Some(core) = &self.core {
            core.shards.lock().unwrap().push(stats);
        }
    }

    /// Closes the trace: collects the recorded stages (sorted by start
    /// offset) and shard stats under `meta`. `None` for a disabled
    /// tracer.
    pub fn finish(self, meta: TraceMeta) -> Option<QueryTrace> {
        let core = self.core?;
        let total = core.start.elapsed();
        // Spans hold Arc clones; by finish time every span guard has
        // dropped, but lock-and-take stays correct even if one leaked.
        let mut stages = std::mem::take(&mut *core.stages.lock().unwrap());
        // Ties (a nested span opened in the same microsecond as its
        // parent) order the longer span first, so parents precede
        // children in the dump.
        stages.sort_by(|a, b| {
            a.started_us
                .cmp(&b.started_us)
                .then(b.duration.cmp(&a.duration))
        });
        let shard_stats = std::mem::take(&mut *core.shards.lock().unwrap());
        Some(QueryTrace {
            query: meta.query,
            algorithm: meta.algorithm,
            backend: meta.backend,
            k: meta.k,
            shards: meta.shards,
            epoch: meta.epoch,
            served_from_cache: meta.served_from_cache,
            completeness: meta.completeness,
            budget_trip: meta.budget_trip,
            stages,
            shard_stats,
            total,
        })
    }
}

/// A drop guard timing one stage. Obtain via [`Tracer::span`].
#[derive(Debug)]
#[must_use = "a span records its stage when dropped"]
pub struct Span {
    rec: Option<(Arc<TraceCore>, StageKind, Option<usize>, Instant)>,
}

impl Span {
    /// Ends the stage now (sugar over `drop`).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((core, kind, shard, started)) = self.rec.take() {
            let record = StageRecord {
                kind,
                shard,
                started_us: started.duration_since(core.start).as_micros() as u64,
                duration: started.elapsed(),
            };
            core.stages.lock().unwrap().push(record);
        }
    }
}

/// A consumer of completed traces.
pub trait TraceSink: Send + Sync {
    /// Called once per completed trace (the trace is shared — clone what
    /// you keep).
    fn record(&self, trace: &QueryTrace);
}

/// Slow-query log configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlowQueryConfig {
    /// Queries at or above this wall time are kept.
    pub threshold: Duration,
    /// Ring capacity: the most recent `capacity` slow traces are kept.
    pub capacity: usize,
}

impl Default for SlowQueryConfig {
    /// 100 ms threshold, last 32 traces.
    fn default() -> Self {
        Self {
            threshold: Duration::from_millis(100),
            capacity: 32,
        }
    }
}

/// A bounded ring of the most recent slow queries' traces.
#[derive(Debug)]
pub struct SlowQueryLog {
    config: SlowQueryConfig,
    ring: Mutex<VecDeque<QueryTrace>>,
    recorded: AtomicU64,
}

impl SlowQueryLog {
    /// An empty log.
    pub fn new(config: SlowQueryConfig) -> Self {
        Self {
            config,
            ring: Mutex::new(VecDeque::with_capacity(config.capacity.min(64))),
            recorded: AtomicU64::new(0),
        }
    }

    /// The configured threshold.
    pub fn threshold(&self) -> Duration {
        self.config.threshold
    }

    /// Offers a trace; keeps it when at or above the threshold. Returns
    /// whether it was kept.
    pub fn offer(&self, trace: &QueryTrace) -> bool {
        if trace.total < self.config.threshold {
            return false;
        }
        // lint-allow: relaxed-ordering — advisory total; the traces themselves travel under the ring mutex
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.config.capacity {
            ring.pop_front();
        }
        ring.push_back(trace.clone());
        true
    }

    /// Slow queries recorded since construction (evicted ones included).
    pub fn recorded(&self) -> u64 {
        // lint-allow: relaxed-ordering — advisory total read for exposition
        self.recorded.load(Ordering::Relaxed)
    }

    /// Currently retained traces, oldest first.
    pub fn snapshot(&self) -> Vec<QueryTrace> {
        self.ring.lock().unwrap().iter().cloned().collect()
    }
}

impl TraceSink for SlowQueryLog {
    fn record(&self, trace: &QueryTrace) {
        self.offer(trace);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> TraceMeta {
        TraceMeta {
            query: "a OR b".into(),
            algorithm: "nra",
            backend: "block",
            k: 5,
            shards: 2,
            epoch: 3,
            completeness: "exact".into(),
            ..Default::default()
        }
    }

    #[test]
    fn disabled_tracer_is_free_and_yields_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        let span = t.span(StageKind::Plan);
        drop(span);
        t.record_shard(ShardStats::default());
        assert!(t.finish(meta()).is_none());
    }

    #[test]
    fn spans_record_in_start_order() {
        let t = Tracer::enabled();
        {
            let _plan = t.span(StageKind::Plan);
            std::thread::sleep(Duration::from_millis(1));
        }
        {
            let exec = t.span(StageKind::Execute);
            let shard = t.shard_span(StageKind::ShardExec, 1);
            std::thread::sleep(Duration::from_millis(1));
            drop(shard);
            exec.end();
        }
        t.record_shard(ShardStats {
            shard: 1,
            sorted_accesses: 10,
            ..Default::default()
        });
        let trace = t.finish(meta()).unwrap();
        let kinds: Vec<StageKind> = trace.stages.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![StageKind::Plan, StageKind::Execute, StageKind::ShardExec]
        );
        assert_eq!(trace.stages[2].shard, Some(1));
        assert!(trace.total >= trace.stage_total(StageKind::Plan));
        assert!(trace.top_level_total() <= trace.total);
        assert_eq!(trace.shard_stats.len(), 1);
        assert_eq!(trace.shard_totals()[0].sorted_accesses, 10);
    }

    #[test]
    fn record_parse_prepends_and_extends_total() {
        let t = Tracer::enabled();
        drop(t.span(StageKind::Plan));
        let mut trace = t.finish(meta()).unwrap();
        let before = trace.total;
        trace.record_parse(Duration::from_micros(250));
        assert_eq!(trace.stages[0].kind, StageKind::Parse);
        assert_eq!(trace.total, before + Duration::from_micros(250));
        assert!(trace.top_level_total() >= Duration::from_micros(250));
    }

    #[test]
    fn shard_totals_fold_rounds() {
        let t = Tracer::enabled();
        for round in 0..2 {
            for shard in 0..2 {
                t.record_shard(ShardStats {
                    shard,
                    sorted_accesses: 10 * (round + 1),
                    rounds: 1,
                    ..Default::default()
                });
            }
        }
        let trace = t.finish(meta()).unwrap();
        let totals = trace.shard_totals();
        assert_eq!(totals.len(), 2);
        assert_eq!(totals[0].sorted_accesses, 30);
        assert_eq!(totals[1].rounds, 2);
    }

    #[test]
    fn slow_log_keeps_a_bounded_ring_of_slow_traces() {
        let log = SlowQueryLog::new(SlowQueryConfig {
            threshold: Duration::from_millis(10),
            capacity: 2,
        });
        let mut fast = QueryTrace {
            total: Duration::from_millis(1),
            ..Default::default()
        };
        assert!(!log.offer(&fast));
        fast.total = Duration::from_millis(10);
        for i in 0..3 {
            fast.query = format!("q{i}");
            assert!(log.offer(&fast));
        }
        assert_eq!(log.recorded(), 3);
        let kept = log.snapshot();
        assert_eq!(kept.len(), 2, "ring capacity bounds retention");
        assert_eq!(kept[0].query, "q1");
        assert_eq!(kept[1].query, "q2");
    }

    #[test]
    fn display_dumps_stages_and_shards() {
        let t = Tracer::enabled();
        drop(t.span(StageKind::Plan));
        t.record_shard(ShardStats {
            shard: 0,
            sorted_accesses: 4,
            io_fetches: 2,
            ..Default::default()
        });
        let trace = t.finish(meta()).unwrap();
        let text = format!("{trace}");
        assert!(text.contains("alg=nra"), "{text}");
        assert!(text.contains("plan"), "{text}");
        assert!(text.contains("shard 0: sorted=4"), "{text}");
    }
}
