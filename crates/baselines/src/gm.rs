//! GM: improved sequential-pattern indexing (Gao & Michel, EDBT 2012).
//!
//! The paper's headline baseline. GM refines the forward-index family with
//! a compacted list organization: since "the presence of a phrase in a
//! document implies the presence of its prefix" (paper §2), a document's
//! forward list need only store phrases that are not the prefix of another
//! stored phrase of that document; prefixes are reconstructed at query
//! time. (Gao & Michel additionally share common *subsequences* between
//! stored patterns; the prefix form implemented here captures the same
//! space/time trade-off on contiguous n-grams, where every sub-pattern of a
//! dictionary phrase is itself a dictionary phrase.)
//!
//! Query processing stays exact and linear in `|D'|`: materialize `D'`,
//! expand each document's compacted list through the prefix chain, count
//! distinct phrases per document, score by `freq(p, D')/freq(p, D)`.

use crate::TopKBaseline;
use ipm_core::exact::materialize_subset;
use ipm_core::query::Query;
use ipm_core::result::{truncate_top_k, PhraseHit};
use ipm_corpus::hash::FxHashMap;
use ipm_corpus::{DocId, PhraseId};
use ipm_index::corpus_index::CorpusIndex;

/// The GM baseline with its compacted per-document lists.
#[derive(Debug, Clone)]
pub struct GmBaseline {
    /// CSR offsets into `compacted`.
    offsets: Vec<u64>,
    /// Per document: phrases that are not a prefix of another phrase of the
    /// same document (sorted by id).
    compacted: Vec<PhraseId>,
    /// For every phrase: its immediate (length − 1) prefix, if any.
    prefix_of: Vec<Option<PhraseId>>,
    /// Uncompacted entry count, for the compression statistics.
    raw_entries: usize,
}

impl GmBaseline {
    /// Builds the compacted index from the shared corpus index.
    pub fn build(index: &CorpusIndex) -> Self {
        // Immediate-prefix table (phrases are prefix-closed by mining).
        let mut prefix_of: Vec<Option<PhraseId>> = vec![None; index.dict.len()];
        for (id, words, _) in index.dict.iter() {
            if words.len() >= 2 {
                prefix_of[id.index()] = index.dict.get(&words[..words.len() - 1]);
            }
        }

        let num_docs = index.forward.num_docs();
        let mut offsets = Vec::with_capacity(num_docs + 1);
        let mut compacted: Vec<PhraseId> = Vec::new();
        let mut raw_entries = 0usize;
        let mut is_prefix: Vec<bool> = Vec::new();
        offsets.push(0u64);
        for d in 0..num_docs {
            let list = index.forward.doc(DocId(d as u32));
            raw_entries += list.len();
            // Mark entries that are the immediate prefix of another entry.
            is_prefix.clear();
            is_prefix.resize(list.len(), false);
            for &p in list {
                if let Some(pre) = prefix_of[p.index()] {
                    if let Ok(pos) = list.binary_search(&pre) {
                        is_prefix[pos] = true;
                    }
                }
            }
            for (i, &p) in list.iter().enumerate() {
                if !is_prefix[i] {
                    compacted.push(p);
                }
            }
            offsets.push(compacted.len() as u64);
        }

        Self {
            offsets,
            compacted,
            prefix_of,
            raw_entries,
        }
    }

    /// The compacted list of a document.
    pub fn doc(&self, id: DocId) -> &[PhraseId] {
        let i = id.index();
        if i + 1 >= self.offsets.len() {
            return &[];
        }
        &self.compacted[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Entries stored after compaction.
    pub fn compacted_entries(&self) -> usize {
        self.compacted.len()
    }

    /// Entries the plain forward index stores.
    pub fn raw_entries(&self) -> usize {
        self.raw_entries
    }

    /// Space saving of the compaction, in `[0, 1)`.
    pub fn compression_ratio(&self) -> f64 {
        if self.raw_entries == 0 {
            0.0
        } else {
            1.0 - self.compacted_entries() as f64 / self.raw_entries as f64
        }
    }

    /// Expands a compacted list back to the full distinct phrase set of the
    /// document, walking prefix chains (used by scoring; public for tests).
    pub fn expand_into(&self, compacted: &[PhraseId], out: &mut Vec<PhraseId>) {
        out.clear();
        for &p in compacted {
            let mut cur = Some(p);
            while let Some(id) = cur {
                out.push(id);
                cur = self.prefix_of[id.index()];
            }
        }
        out.sort_unstable();
        out.dedup();
    }
}

impl TopKBaseline for GmBaseline {
    fn name(&self) -> &'static str {
        "GM"
    }

    fn top_k(&self, index: &CorpusIndex, query: &Query, k: usize) -> Vec<PhraseHit> {
        let subset = materialize_subset(index, query);
        let mut counts: FxHashMap<PhraseId, u32> = FxHashMap::default();
        let mut scratch: Vec<PhraseId> = Vec::new();
        for doc in subset.iter() {
            self.expand_into(self.doc(doc), &mut scratch);
            for &p in &scratch {
                *counts.entry(p).or_insert(0) += 1;
            }
        }
        let mut hits: Vec<PhraseHit> = counts
            .into_iter()
            .map(|(p, c)| PhraseHit::exact(p, c as f64 / index.phrases.df(p) as f64))
            .collect();
        truncate_top_k(&mut hits, k);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{frequent_query, tiny_indexed};
    use ipm_core::exact::exact_top_k;
    use ipm_core::query::Operator;

    #[test]
    fn expansion_reconstructs_forward_lists() {
        let (_, index) = tiny_indexed();
        let gm = GmBaseline::build(&index);
        let mut out = Vec::new();
        for d in 0..index.forward.num_docs() {
            let doc = DocId(d as u32);
            gm.expand_into(gm.doc(doc), &mut out);
            assert_eq!(
                out.as_slice(),
                index.forward.doc(doc),
                "doc {d} expansion mismatch"
            );
        }
    }

    #[test]
    fn compaction_actually_saves_space() {
        let (_, index) = tiny_indexed();
        let gm = GmBaseline::build(&index);
        assert!(gm.compacted_entries() < gm.raw_entries());
        assert!(gm.compression_ratio() > 0.0);
    }

    #[test]
    fn gm_is_exact_for_both_operators() {
        let (c, index) = tiny_indexed();
        let gm = GmBaseline::build(&index);
        for op in [Operator::And, Operator::Or] {
            let q = frequent_query(&c, op);
            let got = gm.top_k(&index, &q, 5);
            let truth = exact_top_k(&index, &q, 5);
            assert_eq!(
                got.iter().map(|h| h.phrase).collect::<Vec<_>>(),
                truth.iter().map(|h| h.phrase).collect::<Vec<_>>(),
                "op {op}"
            );
            for (a, b) in got.iter().zip(&truth) {
                assert!((a.score - b.score).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn out_of_range_doc_is_empty() {
        let (_, index) = tiny_indexed();
        let gm = GmBaseline::build(&index);
        assert!(gm.doc(DocId(1_000_000)).is_empty());
    }

    #[test]
    fn compacted_lists_contain_no_internal_prefixes() {
        let (_, index) = tiny_indexed();
        let gm = GmBaseline::build(&index);
        for d in 0..index.forward.num_docs() {
            let list = gm.doc(DocId(d as u32));
            for &p in list {
                if let Some(pre) = gm.prefix_of[p.index()] {
                    assert!(
                        list.binary_search(&pre).is_err(),
                        "doc {d}: stored phrase {p:?} alongside its prefix {pre:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn name_is_gm() {
        let (_, index) = tiny_indexed();
        assert_eq!(GmBaseline::build(&index).name(), "GM");
    }
}
