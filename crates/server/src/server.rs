//! The serving loop: TCP accept → per-connection reader → bounded job
//! queue → fixed worker pool over one shared [`QueryEngine`].
//!
//! Concurrency control, in order of engagement:
//!
//! 1. **Single-flight coalescing** ([`crate::singleflight`]) keyed by the
//!    engine's [`CacheKey`]: concurrent identical requests ride one
//!    execution and each receive a cache-consistent response.
//! 2. **Bounded admission** ([`crate::queue`]): each flight's leader
//!    enqueues exactly one job; when the queue is full the request (and
//!    every follower coalesced behind it) is shed with a structured
//!    `overloaded` error instead of queueing unboundedly.
//! 3. **Fixed workers**: `workers` threads execute jobs against the
//!    engine, so engine concurrency is capped regardless of connection
//!    count.
//!
//! Graceful shutdown (protocol `{"cmd":"shutdown"}` or
//! [`ServerHandle::shutdown`]) stops admission, drains the queue, answers
//! every in-flight request, then joins all threads.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ipm_core::{
    CacheKey, CacheStats, Query, QueryEngine, QueryPlan, SearchOptions, SearchResponse,
};
use ipm_storage::IoStats;
use serde_json::Value;

use crate::queue::{BoundedQueue, PushError};
use crate::singleflight::{Join, SingleFlight};
use crate::wire::{self, ErrorKind, SearchRequest, WireRequest};

/// Server construction options.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port (tests).
    pub addr: String,
    /// Worker threads executing queries (clamped to ≥ 1).
    pub workers: usize,
    /// Bounded queue depth — the admission-control limit (clamped to ≥ 1).
    pub queue_depth: usize,
}

impl Default for ServerConfig {
    /// Loopback ephemeral port, 4 workers, depth 64.
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            queue_depth: 64,
        }
    }
}

/// A snapshot of the serving counters (the `stats` verb's payload).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Successful search responses delivered (coalesced ones included).
    pub served: u64,
    /// Responses delivered by riding another request's execution.
    pub coalesced: u64,
    /// Requests shed by admission control (`overloaded` errors).
    pub shed: u64,
    /// Malformed or unparseable requests answered with an error.
    pub protocol_errors: u64,
    /// Well-formed requests that failed anyway: raced a graceful
    /// shutdown (`shutting_down`) or hit a contained execution failure
    /// (`internal`).
    pub failed: u64,
    /// Engine-level queries executed or answered from cache.
    pub queries_served: u64,
    /// The engine's default intra-query shard fanout.
    pub default_shards: usize,
    /// Engine-level uncached executions that fanned out across more than
    /// one shard.
    pub sharded_queries: u64,
    /// Engine result-cache counters.
    pub cache: CacheStats,
    /// Aggregate simulated IO of all disk-backed queries.
    pub disk_io: IoStats,
    /// Jobs waiting in the queue right now.
    pub queue_depth: usize,
    /// Worker-pool size.
    pub workers: usize,
}

/// Upper bound on the wire `delay_ms` knob. Workers sleep the delay while
/// holding a pool slot, so an unclamped value from an untrusted client
/// could stall the whole pool and block graceful shutdown forever.
const MAX_DELAY_MS: u64 = 5_000;

type FlightResult = Result<Arc<SearchResponse>, ErrorKind>;

/// One admitted unit of work.
struct Job {
    key: CacheKey,
    query: Query,
    k: usize,
    options: SearchOptions,
    /// Artificial service time (load-testing knob; see
    /// [`SearchRequest::delay_ms`]).
    delay: Duration,
    slot: Arc<crate::singleflight::Slot<FlightResult>>,
}

struct Counters {
    served: AtomicU64,
    coalesced: AtomicU64,
    shed: AtomicU64,
    protocol_errors: AtomicU64,
    failed: AtomicU64,
}

struct Shared {
    engine: QueryEngine,
    queue: BoundedQueue<Job>,
    flights: SingleFlight<CacheKey, FlightResult>,
    counters: Counters,
    shutdown: AtomicBool,
    addr: SocketAddr,
    workers: usize,
    started: Instant,
    connections: Mutex<Vec<JoinHandle<()>>>,
}

/// A running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Namespace for spawning [`ServerHandle`]s.
pub struct Server;

impl Server {
    /// Binds, spawns the accept loop and the worker pool, and returns
    /// immediately.
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn spawn(engine: QueryEngine, config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            engine,
            queue: BoundedQueue::new(config.queue_depth),
            flights: SingleFlight::new(),
            counters: Counters {
                served: AtomicU64::new(0),
                coalesced: AtomicU64::new(0),
                shed: AtomicU64::new(0),
                protocol_errors: AtomicU64::new(0),
                failed: AtomicU64::new(0),
            },
            shutdown: AtomicBool::new(false),
            addr,
            workers,
            started: Instant::now(),
            connections: Mutex::new(Vec::new()),
        });

        let worker_threads = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("ipm-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        let accept = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("ipm-accept".to_owned())
                .spawn(move || accept_loop(&shared, listener))
                .expect("spawn acceptor")
        };

        Ok(ServerHandle {
            shared,
            accept: Some(accept),
            workers: worker_threads,
        })
    }
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The served engine (shared with every worker).
    pub fn engine(&self) -> &QueryEngine {
        &self.shared.engine
    }

    /// Counter snapshot (same numbers the `stats` verb reports).
    pub fn stats(&self) -> ServerStats {
        snapshot(&self.shared)
    }

    /// Whether shutdown has begun (requested by the protocol verb or a
    /// previous [`ServerHandle::shutdown`] call).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Begins (idempotently) and completes a graceful shutdown: stops
    /// admission, drains queued work, answers in-flight requests, joins
    /// every thread.
    pub fn shutdown(&mut self) {
        begin_shutdown(&self.shared);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let conns: Vec<_> = std::mem::take(&mut *self.shared.connections.lock().unwrap());
        for c in conns {
            let _ = c.join();
        }
    }

    /// Blocks until a shutdown is requested (e.g. by the protocol verb),
    /// then completes it.
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.shutdown();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Flips the shutdown flag once: closes admission and wakes the acceptor.
fn begin_shutdown(shared: &Arc<Shared>) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    shared.queue.close();
    // Wake the blocking accept() with a throwaway connection.
    let _ = TcpStream::connect(shared.addr);
}

fn snapshot(shared: &Shared) -> ServerStats {
    ServerStats {
        served: shared.counters.served.load(Ordering::Relaxed),
        coalesced: shared.counters.coalesced.load(Ordering::Relaxed),
        shed: shared.counters.shed.load(Ordering::Relaxed),
        protocol_errors: shared.counters.protocol_errors.load(Ordering::Relaxed),
        failed: shared.counters.failed.load(Ordering::Relaxed),
        queries_served: shared.engine.queries_served(),
        default_shards: shared.engine.default_shards(),
        sharded_queries: shared.engine.sharded_queries(),
        cache: shared.engine.cache_stats(),
        disk_io: shared.engine.io_totals(),
        queue_depth: shared.queue.depth(),
        workers: shared.workers,
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_shared = shared.clone();
        let handle = std::thread::Builder::new()
            .name("ipm-conn".to_owned())
            .spawn(move || connection_loop(&conn_shared, stream))
            .expect("spawn connection thread");
        let mut conns = shared.connections.lock().unwrap();
        // Reap finished connection threads as we go: a long-lived server
        // handling many short-lived connections must not accumulate
        // handles (and their thread resources) until shutdown.
        let mut i = 0;
        while i < conns.len() {
            if conns[i].is_finished() {
                let _ = conns.swap_remove(i).join();
            } else {
                i += 1;
            }
        }
        conns.push(handle);
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        let Job {
            key,
            query,
            k,
            options,
            delay,
            slot,
        } = job;
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        let engine = &shared.engine;
        let outcome = catch_unwind(AssertUnwindSafe(|| engine.execute(query, k, &options)));
        let value: FlightResult = match outcome {
            Ok(resp) => Ok(Arc::new(resp)),
            Err(_) => Err(ErrorKind::Internal),
        };
        shared.flights.complete(&key, &slot, value);
    }
}

/// Per-request outcome for the connection loop.
enum ConnAction {
    Continue,
    Close,
}

/// Longest request line the server buffers before giving up on the
/// connection — without a cap, a peer that never sends `\n` would grow
/// the per-connection buffer until the process OOMs.
const MAX_LINE_BYTES: usize = 256 * 1024;

fn connection_loop(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    // A short read timeout lets the loop observe shutdown without a
    // dedicated wakeup channel per connection.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = stream;
    let mut pending: Vec<u8> = Vec::new();
    let mut buf = [0u8; 4096];
    'conn: loop {
        // Serve every complete line already buffered.
        while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
            let raw: Vec<u8> = pending.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&raw);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (response, action) = serve_line(shared, line);
            if writer.write_all(response.as_bytes()).is_err() || writer.flush().is_err() {
                break 'conn;
            }
            if matches!(action, ConnAction::Close) {
                break 'conn;
            }
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match reader.read(&mut buf) {
            Ok(0) => break, // EOF
            Ok(n) => {
                pending.extend_from_slice(&buf[..n]);
                if pending.len() > MAX_LINE_BYTES && !pending.contains(&b'\n') {
                    shared
                        .counters
                        .protocol_errors
                        .fetch_add(1, Ordering::Relaxed);
                    let err = wire::error_line(
                        ErrorKind::Parse,
                        &format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                    );
                    let _ = writer.write_all(err.as_bytes());
                    let _ = writer.flush();
                    break;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
}

fn serve_line(shared: &Arc<Shared>, line: &str) -> (String, ConnAction) {
    match wire::parse_request(line) {
        Err(msg) => {
            shared
                .counters
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            (
                wire::error_line(ErrorKind::Parse, &msg),
                ConnAction::Continue,
            )
        }
        Ok(WireRequest::Ping) => (
            wire::ok_line(vec![("pong", Value::from(true))]),
            ConnAction::Continue,
        ),
        Ok(WireRequest::Stats) => (stats_line(shared), ConnAction::Continue),
        Ok(WireRequest::Shutdown) => {
            begin_shutdown(shared);
            (
                wire::ok_line(vec![("bye", Value::from(true))]),
                ConnAction::Close,
            )
        }
        Ok(WireRequest::Search(req)) => (serve_search(shared, req), ConnAction::Continue),
    }
}

fn serve_search(shared: &Arc<Shared>, req: SearchRequest) -> String {
    let query = match shared.engine.miner().parse_query_str(&req.query) {
        Ok(q) => q,
        Err(e) => {
            shared
                .counters
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            return wire::error_line(ErrorKind::Query, &e.to_string());
        }
    };
    let options = req.options();
    let plan = QueryPlan::resolve(&options, shared.engine.default_shards());
    let key = CacheKey::new(&query, req.k, &options, plan.shards);
    let started = Instant::now();

    let (result, coalesced) = match shared.flights.join(&key) {
        Join::Follower(slot) => (slot.wait(), true),
        Join::Leader(slot) => {
            let job = Job {
                key: key.clone(),
                query,
                k: req.k,
                options,
                // Clamped: the knob simulates service time, it must not
                // let one request park a worker (and stall shutdown)
                // indefinitely.
                delay: Duration::from_millis(req.delay_ms.min(MAX_DELAY_MS)),
                slot: slot.clone(),
            };
            match shared.queue.try_push(job) {
                // The leader waits like any follower; the worker
                // publishes through the shared slot.
                Ok(()) => (slot.wait(), false),
                Err(PushError::Full) => {
                    // Shed the whole flight: the leader and every
                    // follower that already attached get `overloaded`.
                    shared
                        .flights
                        .complete(&key, &slot, Err(ErrorKind::Overloaded));
                    (Err(ErrorKind::Overloaded), false)
                }
                Err(PushError::Closed) => {
                    shared
                        .flights
                        .complete(&key, &slot, Err(ErrorKind::ShuttingDown));
                    (Err(ErrorKind::ShuttingDown), false)
                }
            }
        }
    };
    let waited = started.elapsed();

    match result {
        Ok(resp) => {
            shared.counters.served.fetch_add(1, Ordering::Relaxed);
            if coalesced {
                shared.counters.coalesced.fetch_add(1, Ordering::Relaxed);
            }
            let mut server = std::collections::BTreeMap::new();
            server.insert("wait_us".to_owned(), Value::from(waited.as_micros() as u64));
            server.insert("coalesced".to_owned(), Value::from(coalesced));
            wire::ok_line(vec![
                (
                    "result",
                    wire::response_value(&resp, shared.engine.miner().corpus()),
                ),
                ("server", Value::Object(server)),
            ])
        }
        Err(kind) => {
            match kind {
                ErrorKind::Overloaded => {
                    shared.counters.shed.fetch_add(1, Ordering::Relaxed);
                }
                // Well-formed requests that raced shutdown or hit a
                // contained execution failure are not protocol errors.
                _ => {
                    shared.counters.failed.fetch_add(1, Ordering::Relaxed);
                }
            }
            let message = match kind {
                ErrorKind::Overloaded => {
                    format!(
                        "queue full ({} pending); request shed",
                        shared.queue.capacity()
                    )
                }
                ErrorKind::ShuttingDown => "server is draining".to_owned(),
                _ => "execution failed".to_owned(),
            };
            wire::error_line(kind, &message)
        }
    }
}

fn stats_line(shared: &Arc<Shared>) -> String {
    let s = snapshot(shared);
    let mut cache = std::collections::BTreeMap::new();
    cache.insert("hits".to_owned(), Value::from(s.cache.hits));
    cache.insert("misses".to_owned(), Value::from(s.cache.misses));
    cache.insert("hit_rate".to_owned(), Value::from(s.cache.hit_rate()));
    // Per-backend aggregate IO. The memory backend performs no simulated
    // IO by construction; its all-zero entry keeps the schema uniform.
    let mut io = std::collections::BTreeMap::new();
    io.insert("memory".to_owned(), wire::io_value(&IoStats::default()));
    io.insert("disk".to_owned(), wire::io_value(&s.disk_io));
    let mut stats = std::collections::BTreeMap::new();
    stats.insert("served".to_owned(), Value::from(s.served));
    stats.insert("coalesced".to_owned(), Value::from(s.coalesced));
    stats.insert("shed".to_owned(), Value::from(s.shed));
    stats.insert("protocol_errors".to_owned(), Value::from(s.protocol_errors));
    stats.insert("failed".to_owned(), Value::from(s.failed));
    stats.insert("queries_served".to_owned(), Value::from(s.queries_served));
    // Shard-fanout surface: the engine default plus how many executions
    // actually ran partitioned.
    let mut shards = std::collections::BTreeMap::new();
    shards.insert("default".to_owned(), Value::from(s.default_shards as u64));
    shards.insert("sharded_queries".to_owned(), Value::from(s.sharded_queries));
    stats.insert("shards".to_owned(), Value::Object(shards));
    stats.insert("cache".to_owned(), Value::Object(cache));
    stats.insert("io".to_owned(), Value::Object(io));
    stats.insert("queue_depth".to_owned(), Value::from(s.queue_depth));
    stats.insert("workers".to_owned(), Value::from(s.workers));
    stats.insert(
        "uptime_us".to_owned(),
        Value::from(shared.started.elapsed().as_micros() as u64),
    );
    wire::ok_line(vec![("stats", Value::Object(stats))])
}
