//! A blocking protocol client plus closed- and open-loop load generators.
//!
//! The client speaks exactly the wire format of [`crate::wire`]; the
//! closed-loop generator drives N threads of synchronous request/response
//! traffic (each thread has one request in flight at a time), which is
//! what the serving benchmark and the CI smoke job run. The open-loop
//! generator ([`run_open_loop`]) instead schedules arrivals on a fixed
//! clock regardless of completions — the honest way to measure tail
//! latency, because a slow server cannot slow the arrival process down
//! (coordinated omission).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::Value;

use crate::queue::{BoundedQueue, PushError};
use crate::wire::{ErrorKind, SearchRequest};

/// A blocking line-protocol client over one TCP connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects once.
    ///
    /// # Errors
    /// Propagates connect failures.
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Connects with retries (for freshly spawned servers).
    ///
    /// # Errors
    /// The last connect failure after `attempts` tries.
    pub fn connect_with_retries(
        addr: &str,
        attempts: usize,
        delay: Duration,
    ) -> std::io::Result<Self> {
        let mut last = None;
        for _ in 0..attempts.max(1) {
            match Self::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) => last = Some(e),
            }
            std::thread::sleep(delay);
        }
        // lint-allow: server-unwrap — the retry loop above runs at least once, so last is always Some
        Err(last.expect("at least one attempt"))
    }

    /// Sends one raw line and reads one response line, parsed as JSON.
    ///
    /// # Errors
    /// Transport failures, EOF, or an unparseable response line.
    pub fn roundtrip(&mut self, line: &str) -> std::io::Result<Value> {
        self.writer.write_all(line.as_bytes())?;
        if !line.ends_with('\n') {
            self.writer.write_all(b"\n")?;
        }
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        serde_json::from_str(&response)
            .map_err(|e| std::io::Error::other(format!("bad response line: {e}")))
    }

    /// Executes a search request.
    ///
    /// # Errors
    /// See [`Client::roundtrip`].
    pub fn search(&mut self, req: &SearchRequest) -> std::io::Result<Value> {
        self.roundtrip(&req.to_line())
    }

    /// Executes `req` under a server-side deadline: the clock starts when
    /// the server *receives* the request (queue wait counts), an expired
    /// deadline comes back as a structured `deadline_exceeded` error, and
    /// a mid-execution expiry returns the anytime result marked
    /// `completeness: truncated`.
    ///
    /// # Errors
    /// See [`Client::roundtrip`].
    pub fn search_with_deadline(
        &mut self,
        req: &SearchRequest,
        deadline: Duration,
    ) -> std::io::Result<Value> {
        let mut req = req.clone();
        req.deadline_ms = Some(deadline.as_millis().min(u128::from(u64::MAX)) as u64);
        self.search(&req)
    }

    /// Executes several searches as one `{"batch": [...]}` request: the
    /// batch shares a single server admission slot and the response's
    /// `batch` array carries one `{ok, result|error}` object per item, in
    /// order.
    ///
    /// # Errors
    /// See [`Client::roundtrip`].
    pub fn search_batch(&mut self, reqs: &[SearchRequest]) -> std::io::Result<Value> {
        self.roundtrip(&crate::wire::batch_line(reqs))
    }

    /// Ingests one document over the wire (protocol v3): tokens are plain
    /// term strings, facets are `key:value` strings. The response carries
    /// the new `epoch`, the live `delta_docs` count, and how many terms
    /// were outside the serving vocabulary (`unknown_tokens`).
    ///
    /// # Errors
    /// See [`Client::roundtrip`].
    pub fn ingest(&mut self, tokens: &[String], facets: &[String]) -> std::io::Result<Value> {
        self.roundtrip(&crate::wire::ingest_line(tokens, facets))
    }

    /// Marks a document of the serving corpus deleted (protocol v3).
    ///
    /// # Errors
    /// See [`Client::roundtrip`].
    pub fn delete_doc(&mut self, doc: u64) -> std::io::Result<Value> {
        self.roundtrip(&crate::wire::delete_line(doc))
    }

    /// Asks the server to compact: flush the delta into a full offline
    /// rebuild and atomically swap it in (protocol v3). Blocks until the
    /// rebuild completes; queries issued on other connections keep being
    /// served from the pre-swap index throughout.
    ///
    /// # Errors
    /// See [`Client::roundtrip`].
    pub fn compact(&mut self) -> std::io::Result<Value> {
        self.roundtrip("{\"cmd\":\"compact\"}\n")
    }

    /// Fetches the server counters.
    ///
    /// # Errors
    /// See [`Client::roundtrip`].
    pub fn stats(&mut self) -> std::io::Result<Value> {
        self.roundtrip("{\"cmd\":\"stats\"}\n")
    }

    /// Fetches the metrics exposition (protocol v4): the response's
    /// `metrics` field is one Prometheus-text string covering the engine
    /// and the serving layer.
    ///
    /// # Errors
    /// See [`Client::roundtrip`], plus a protocol error when the
    /// `metrics` field is missing from an ok response.
    pub fn metrics(&mut self) -> std::io::Result<String> {
        let v = self.roundtrip("{\"cmd\":\"metrics\"}\n")?;
        v["metrics"]
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| std::io::Error::other("response carries no metrics field"))
    }

    /// Liveness check.
    ///
    /// # Errors
    /// See [`Client::roundtrip`].
    pub fn ping(&mut self) -> std::io::Result<Value> {
        self.roundtrip("{\"cmd\":\"ping\"}\n")
    }

    /// Asks the server to shut down gracefully.
    ///
    /// # Errors
    /// See [`Client::roundtrip`].
    pub fn shutdown_server(&mut self) -> std::io::Result<Value> {
        self.roundtrip("{\"cmd\":\"shutdown\"}\n")
    }
}

/// Aggregated outcome of a load run.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadReport {
    /// Requests sent.
    pub sent: u64,
    /// Successful responses.
    pub ok: u64,
    /// Successful responses that rode another request's execution.
    pub coalesced: u64,
    /// Requests shed by admission control.
    pub overloaded: u64,
    /// Everything else: transport failures, parse/query/internal errors.
    pub errors: u64,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
}

impl LoadReport {
    /// Completed requests (ok + shed) per wall-clock second.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            (self.ok + self.overloaded) as f64 / secs
        }
    }
}

impl std::fmt::Display for LoadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sent={} ok={} coalesced={} overloaded={} errors={} elapsed_ms={:.1} qps={:.0}",
            self.sent,
            self.ok,
            self.coalesced,
            self.overloaded,
            self.errors,
            self.elapsed.as_secs_f64() * 1e3,
            self.throughput(),
        )
    }
}

/// Runs `threads` closed-loop clients, each sending `requests_per_thread`
/// copies of `request` over its own connection. All threads start on a
/// barrier, so the first wave of identical requests arrives as one
/// concurrent burst — the single-flight path, not just the result cache,
/// is exercised.
///
/// # Errors
/// Only connection setup errors; per-request failures are counted in the
/// report instead.
pub fn run_load(
    addr: &str,
    threads: usize,
    requests_per_thread: usize,
    request: &SearchRequest,
) -> std::io::Result<LoadReport> {
    let threads = threads.max(1);
    let mut clients = Vec::with_capacity(threads);
    for _ in 0..threads {
        clients.push(Client::connect_with_retries(
            addr,
            25,
            Duration::from_millis(200),
        )?);
    }
    let ok = Arc::new(AtomicU64::new(0));
    let coalesced = Arc::new(AtomicU64::new(0));
    let overloaded = Arc::new(AtomicU64::new(0));
    let errors = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(threads));
    let started = Instant::now();
    std::thread::scope(|s| {
        for mut client in clients {
            let req = request.clone();
            let (ok, coalesced, overloaded, errors) = (
                ok.clone(),
                coalesced.clone(),
                overloaded.clone(),
                errors.clone(),
            );
            let barrier = barrier.clone();
            s.spawn(move || {
                barrier.wait();
                for _ in 0..requests_per_thread {
                    match client.search(&req) {
                        Ok(v) if v["ok"].as_bool() == Some(true) => {
                            ok.fetch_add(1, Ordering::Relaxed);
                            if v["server"]["coalesced"].as_bool() == Some(true) {
                                coalesced.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Ok(v) => {
                            let kind = v["error"]["kind"].as_str().and_then(ErrorKind::from_name);
                            if kind == Some(ErrorKind::Overloaded) {
                                overloaded.fetch_add(1, Ordering::Relaxed);
                            } else {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    Ok(LoadReport {
        sent: (threads * requests_per_thread) as u64,
        ok: ok.load(Ordering::Relaxed),
        coalesced: coalesced.load(Ordering::Relaxed),
        overloaded: overloaded.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
        elapsed: started.elapsed(),
    })
}

/// Configuration of one open-loop run ([`run_open_loop`]).
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Target arrival rate, operations per second. Arrivals are scheduled
    /// deterministically at `start + i/rate` — a slow server makes
    /// operations *late*, it never thins the schedule.
    pub rate: f64,
    /// Wall-clock length of the arrival schedule.
    pub duration: Duration,
    /// Zipf exponent over the word pool: queries draw their two words
    /// rank-proportionally to `1/(rank+1)^s`, so hot words repeat across
    /// concurrent requests — the shared-scan case batching exists for.
    pub zipf_s: f64,
    /// Worker connections draining the pending queue (each synchronous).
    pub conns: usize,
    /// Every `ingest_every`-th operation is a wire ingest of zipfian
    /// tokens instead of a query; `0` disables the write mix.
    pub ingest_every: u64,
    /// Words the sampler draws from, hottest first. Rank 0 is the most
    /// likely word.
    pub word_pool: Vec<String>,
    /// Request template: `k`, algorithm, backend, budgets and the trace
    /// flag are taken from here; the query string is replaced per sample.
    pub template: SearchRequest,
    /// Client-side pending-queue bound: when the workers fall this many
    /// operations behind, further arrivals are shed at the client (the
    /// open-loop analogue of server admission control).
    pub queue_depth: usize,
    /// RNG seed: same seed + pool + schedule → same operation sequence.
    pub seed: u64,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        Self {
            rate: 200.0,
            duration: Duration::from_secs(5),
            zipf_s: 1.1,
            conns: 4,
            ingest_every: 0,
            word_pool: Vec::new(),
            template: SearchRequest::new(String::new()),
            queue_depth: 512,
            seed: 42,
        }
    }
}

/// Aggregated outcome of an open-loop run. Latency is measured from the
/// *scheduled* arrival (not the send) to completion, so client-side queue
/// wait counts — the coordinated-omission-free number.
#[derive(Debug, Clone, Default)]
pub struct OpenLoopReport {
    /// Arrivals the schedule produced.
    pub scheduled: u64,
    /// Successful responses (queries + ingests).
    pub ok: u64,
    /// Ingest operations among `ok`.
    pub ingests: u64,
    /// Shed operations: client-side queue overflow plus server-side
    /// `overloaded` rejections.
    pub shed: u64,
    /// Transport or structured non-overload errors.
    pub errors: u64,
    /// Completion − scheduled arrival, in milliseconds.
    pub p50_ms: f64,
    /// See `p50_ms`.
    pub p95_ms: f64,
    /// See `p50_ms`.
    pub p99_ms: f64,
    /// Client-side queue wait (worker pickup − scheduled arrival), p95 ms.
    pub queue_wait_p95_ms: f64,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
}

impl std::fmt::Display for OpenLoopReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scheduled={} ok={} ingests={} shed={} errors={} \
             p50_ms={:.2} p95_ms={:.2} p99_ms={:.2} queue_wait_p95_ms={:.2} elapsed_ms={:.1}",
            self.scheduled,
            self.ok,
            self.ingests,
            self.shed,
            self.errors,
            self.p50_ms,
            self.p95_ms,
            self.p99_ms,
            self.queue_wait_p95_ms,
            self.elapsed.as_secs_f64() * 1e3,
        )
    }
}

/// Nearest-rank percentile of an unsorted sample, in milliseconds.
fn percentile_ms(samples: &mut [Duration], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_unstable();
    let rank = ((p * samples.len() as f64).ceil() as usize).clamp(1, samples.len()) - 1;
    samples[rank].as_secs_f64() * 1e3
}

/// One scheduled operation handed from the arrival thread to a worker.
struct OpenLoopOp {
    scheduled: Instant,
    line: String,
    is_ingest: bool,
}

/// Runs an open-loop zipfian workload against a serving process.
///
/// The arrival thread walks a deterministic schedule at `config.rate`,
/// sampling two-word `OR` queries (and, when configured, ingests) from a
/// zipfian word distribution, and pushes each operation into a bounded
/// queue; `config.conns` worker connections drain it synchronously.
/// Because arrivals never wait for completions, the reported p99 reflects
/// what a real open client population would observe.
///
/// # Errors
/// Connection setup and empty-word-pool configuration errors; per-request
/// failures are counted in the report instead.
pub fn run_open_loop(addr: &str, config: &OpenLoopConfig) -> std::io::Result<OpenLoopReport> {
    if config.word_pool.is_empty() {
        return Err(std::io::Error::other("open-loop word pool is empty"));
    }
    if !(config.rate.is_finite() && config.rate > 0.0) {
        return Err(std::io::Error::other("open-loop rate must be positive"));
    }
    let conns = config.conns.max(1);
    let mut clients = Vec::with_capacity(conns);
    for _ in 0..conns {
        clients.push(Client::connect_with_retries(
            addr,
            25,
            Duration::from_millis(200),
        )?);
    }

    let zipf = ipm_corpus::synth::Zipf::new(config.word_pool.len(), config.zipf_s);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let queue: BoundedQueue<OpenLoopOp> = BoundedQueue::new(config.queue_depth);

    let scheduled = AtomicU64::new(0);
    let ok = AtomicU64::new(0);
    let ingests = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let latencies: Mutex<Vec<Duration>> = Mutex::new(Vec::new());
    let queue_waits: Mutex<Vec<Duration>> = Mutex::new(Vec::new());

    let started = Instant::now();
    std::thread::scope(|s| {
        let (queue, ok, ingests, shed, errors) = (&queue, &ok, &ingests, &shed, &errors);
        let (latencies, queue_waits) = (&latencies, &queue_waits);
        for mut client in clients {
            s.spawn(move || {
                let mut my_lat = Vec::new();
                let mut my_wait = Vec::new();
                while let Some(op) = queue.pop() {
                    my_wait.push(op.scheduled.elapsed());
                    match client.roundtrip(&op.line) {
                        Ok(v) if v["ok"].as_bool() == Some(true) => {
                            ok.fetch_add(1, Ordering::Relaxed);
                            if op.is_ingest {
                                ingests.fetch_add(1, Ordering::Relaxed);
                            }
                            my_lat.push(op.scheduled.elapsed());
                        }
                        Ok(v) => {
                            let kind = v["error"]["kind"].as_str().and_then(ErrorKind::from_name);
                            if kind == Some(ErrorKind::Overloaded) {
                                shed.fetch_add(1, Ordering::Relaxed);
                            } else {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                latencies.lock().unwrap().extend(my_lat);
                queue_waits.lock().unwrap().extend(my_wait);
            });
        }

        // The arrival process: fixed schedule, never blocked by workers.
        let interval = Duration::from_secs_f64(1.0 / config.rate);
        let mut i: u64 = 0;
        loop {
            let due = started + interval * (i.min(u64::from(u32::MAX)) as u32);
            let now = Instant::now();
            if now.duration_since(started) >= config.duration {
                break;
            }
            if due > now {
                std::thread::sleep(due - now);
            }
            scheduled.fetch_add(1, Ordering::Relaxed);
            let is_ingest = config.ingest_every > 0 && (i + 1).is_multiple_of(config.ingest_every);
            let line = if is_ingest {
                // A short zipfian document: hot words dominate writes
                // just like reads, so the delta overlay stays relevant
                // to the queries in flight.
                let tokens: Vec<String> = (0..6)
                    .map(|_| config.word_pool[zipf.sample(&mut rng)].clone())
                    .collect();
                crate::wire::ingest_line(&tokens, &[])
            } else {
                let a = zipf.sample(&mut rng);
                let b = zipf.sample(&mut rng);
                let mut req = config.template.clone();
                req.query = format!("{} OR {}", config.word_pool[a], config.word_pool[b]);
                req.to_line()
            };
            match queue.try_push(OpenLoopOp {
                scheduled: due.max(started),
                line,
                is_ingest,
            }) {
                Ok(()) => {}
                Err(PushError::Full) => {
                    shed.fetch_add(1, Ordering::Relaxed);
                }
                Err(PushError::Closed) => break,
            }
            i += 1;
        }
        queue.close();
    });

    // lint-allow: server-unwrap — client-side report assembly after every scope thread joined (a worker panic already propagated through the scope), not a serving connection path
    let mut lat = latencies.into_inner().unwrap();
    // lint-allow: server-unwrap — same: post-join client-side mutex teardown, no connection to disconnect
    let mut waits = queue_waits.into_inner().unwrap();
    Ok(OpenLoopReport {
        scheduled: scheduled.load(Ordering::Relaxed),
        ok: ok.load(Ordering::Relaxed),
        ingests: ingests.load(Ordering::Relaxed),
        shed: shed.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
        p50_ms: percentile_ms(&mut lat, 0.50),
        p95_ms: percentile_ms(&mut lat, 0.95),
        p99_ms: percentile_ms(&mut lat, 0.99),
        queue_wait_p95_ms: percentile_ms(&mut waits, 0.95),
        elapsed: started.elapsed(),
    })
}
