//! String interning for words and facet values.
//!
//! A [`Vocabulary`] maps strings to dense [`WordId`]s (or [`FacetId`]s via
//! [`FacetVocabulary`]) and back. Interning happens once at corpus build
//! time; afterwards every layer of the system works purely with `u32` IDs.

use crate::hash::FxHashMap;
use crate::ids::{FacetId, WordId};
use serde::{Deserialize, Serialize};

/// An interned, append-only string table with O(1) lookup in both directions.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Vocabulary {
    terms: Vec<String>,
    #[serde(skip)]
    lookup: FxHashMap<String, u32>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty vocabulary sized for `cap` terms.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            terms: Vec::with_capacity(cap),
            lookup: crate::hash::fx_map_with_capacity(cap),
        }
    }

    /// Interns `term`, returning its id (existing or newly assigned).
    pub fn intern(&mut self, term: &str) -> WordId {
        if let Some(&id) = self.lookup.get(term) {
            return WordId(id);
        }
        let id = self.terms.len() as u32;
        self.terms.push(term.to_owned());
        self.lookup.insert(term.to_owned(), id);
        WordId(id)
    }

    /// Looks up an already-interned term.
    pub fn get(&self, term: &str) -> Option<WordId> {
        self.lookup.get(term).copied().map(WordId)
    }

    /// Returns the string for `id`, if in range.
    pub fn term(&self, id: WordId) -> Option<&str> {
        self.terms.get(id.index()).map(String::as_str)
    }

    /// Returns the string for `id`, panicking if out of range.
    ///
    /// Use when the id provably came from this vocabulary.
    pub fn term_unchecked(&self, id: WordId) -> &str {
        &self.terms[id.index()]
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates `(WordId, &str)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (WordId, &str)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (WordId(i as u32), t.as_str()))
    }

    /// Rebuilds the reverse lookup table. Needed after deserialization
    /// because the lookup map is not serialized (it is derivable).
    pub fn rebuild_lookup(&mut self) {
        self.lookup = crate::hash::fx_map_with_capacity(self.terms.len());
        for (i, t) in self.terms.iter().enumerate() {
            self.lookup.insert(t.clone(), i as u32);
        }
    }
}

/// Interned table of metadata facet values such as `venue:sigmod`.
///
/// Facet values are conventionally written `key:value`; the vocabulary does
/// not enforce the convention but [`FacetVocabulary::intern_kv`] builds it.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct FacetVocabulary {
    inner: Vocabulary,
}

impl FacetVocabulary {
    /// Creates an empty facet vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a raw facet string (already in `key:value` form).
    pub fn intern(&mut self, facet: &str) -> FacetId {
        FacetId(self.inner.intern(facet).raw())
    }

    /// Interns a facet from its key and value parts.
    pub fn intern_kv(&mut self, key: &str, value: &str) -> FacetId {
        let mut s = String::with_capacity(key.len() + 1 + value.len());
        s.push_str(key);
        s.push(':');
        s.push_str(value);
        self.intern(&s)
    }

    /// Looks up an existing facet value.
    pub fn get(&self, facet: &str) -> Option<FacetId> {
        self.inner.get(facet).map(|w| FacetId(w.raw()))
    }

    /// Returns the string form of `id`.
    pub fn value(&self, id: FacetId) -> Option<&str> {
        self.inner.term(WordId(id.raw()))
    }

    /// Number of distinct facet values.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether no facet values have been interned.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Iterates `(FacetId, &str)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (FacetId, &str)> {
        self.inner.iter().map(|(w, s)| (FacetId(w.raw()), s))
    }

    /// Rebuilds the reverse lookup after deserialization.
    pub fn rebuild_lookup(&mut self) {
        self.inner.rebuild_lookup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("trade");
        let b = v.intern("trade");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered_by_first_appearance() {
        let mut v = Vocabulary::new();
        assert_eq!(v.intern("a"), WordId(0));
        assert_eq!(v.intern("b"), WordId(1));
        assert_eq!(v.intern("a"), WordId(0));
        assert_eq!(v.intern("c"), WordId(2));
    }

    #[test]
    fn bidirectional_lookup() {
        let mut v = Vocabulary::new();
        let id = v.intern("reserves");
        assert_eq!(v.get("reserves"), Some(id));
        assert_eq!(v.term(id), Some("reserves"));
        assert_eq!(v.term_unchecked(id), "reserves");
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.term(WordId(99)), None);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut v = Vocabulary::new();
        v.intern("x");
        v.intern("y");
        let pairs: Vec<_> = v.iter().collect();
        assert_eq!(pairs, vec![(WordId(0), "x"), (WordId(1), "y")]);
    }

    #[test]
    fn rebuild_lookup_restores_get() {
        let mut v = Vocabulary::new();
        v.intern("alpha");
        v.intern("beta");
        // Simulate a post-deserialization state with an empty lookup.
        let mut restored = Vocabulary {
            terms: v.terms.clone(),
            lookup: Default::default(),
        };
        assert_eq!(restored.get("alpha"), None);
        restored.rebuild_lookup();
        assert_eq!(restored.get("alpha"), Some(WordId(0)));
        assert_eq!(restored.get("beta"), Some(WordId(1)));
    }

    #[test]
    fn facet_kv_interning() {
        let mut f = FacetVocabulary::new();
        let id = f.intern_kv("venue", "sigmod");
        assert_eq!(f.value(id), Some("venue:sigmod"));
        assert_eq!(f.get("venue:sigmod"), Some(id));
        assert_eq!(f.intern("venue:sigmod"), id);
        assert_eq!(f.len(), 1);
        assert!(!f.is_empty());
    }

    #[test]
    fn with_capacity_preallocates() {
        let v = Vocabulary::with_capacity(100);
        assert!(v.terms.capacity() >= 100);
        assert!(v.is_empty());
    }
}
