//! A fast, non-cryptographic hasher for integer-keyed hot maps.
//!
//! The phrase-mining and index-building passes hash billions of small integer
//! keys; SipHash (the `std` default) is a measurable bottleneck there. This
//! is the FxHash multiply-rotate scheme used by rustc, implemented locally so
//! the workspace does not need an extra dependency (only `rand`, `proptest`,
//! `criterion`, `crossbeam`, `parking_lot`, `bytes`, `serde` are permitted —
//! see `DESIGN.md` §5).
//!
//! Do **not** use this for attacker-controlled keys; it has no HashDoS
//! resistance. All uses in this workspace hash internally-assigned dense IDs.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from FxHash (derived from the golden ratio).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style hasher: `state = (state.rotate_left(5) ^ word) * SEED`.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Consume 8-byte chunks, then the tail. This path is only taken for
        // non-integer keys (rare in this workspace).
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_word(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add_word(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_word(n as u64);
    }
}

/// `HashMap` with the fast [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` with the fast [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Creates an empty [`FxHashMap`] with at least `cap` capacity.
pub fn fx_map_with_capacity<K, V>(cap: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(cap, BuildHasherDefault::default())
}

/// Creates an empty [`FxHashSet`] with at least `cap` capacity.
pub fn fx_set_with_capacity<T>(cap: usize) -> FxHashSet<T> {
    FxHashSet::with_capacity_and_hasher(cap, BuildHasherDefault::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, BuildHasherDefault};

    fn hash_of<T: std::hash::Hash + ?Sized>(v: &T) -> u64 {
        BuildHasherDefault::<FxHasher>::default().hash_one(v)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&12345u64), hash_of(&12345u64));
        assert_eq!(hash_of(&"phrase"), hash_of(&"phrase"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Not a statistical test, just a sanity check that consecutive keys
        // do not collide (they are the common access pattern for dense IDs).
        let hashes: Vec<u64> = (0u64..1000).map(|i| hash_of(&i)).collect();
        let distinct: std::collections::HashSet<_> = hashes.iter().collect();
        assert_eq!(distinct.len(), hashes.len());
    }

    #[test]
    fn byte_stream_tail_handling() {
        // write() must not ignore trailing bytes shorter than a word.
        assert_ne!(hash_of(&[1u8, 2, 3][..]), hash_of(&[1u8, 2, 4][..]));
        assert_ne!(
            hash_of(&[1u8, 2, 3, 4, 5, 6, 7, 8, 9][..]),
            hash_of(&[1u8, 2, 3, 4, 5, 6, 7, 8, 10][..])
        );
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, u32> = fx_map_with_capacity(16);
        m.insert(7, 1);
        m.insert(7, 2);
        assert_eq!(m.get(&7), Some(&2));
        assert!(m.capacity() >= 16);

        let mut s: FxHashSet<u32> = fx_set_with_capacity(4);
        assert!(s.insert(3));
        assert!(!s.insert(3));
    }
}
