//! Tokenization of raw document text.
//!
//! The paper operates on word n-grams, so tokenization is deliberately
//! simple and deterministic: lowercase, split on non-alphanumeric runs,
//! optionally drop very short tokens and stopwords.
//!
//! Stopwords are *kept* by default: the paper's interestingness measure
//! (Eq. 1) normalizes by corpus-wide frequency precisely so that
//! stopword-heavy phrases are de-prioritized without filtering ("a purely
//! frequency based scoring is likely to score phrases composed of stopwords
//! highly... this is easily overcome by normalizing", §1).

/// Configuration for [`tokenize`].
#[derive(Debug, Clone)]
pub struct TokenizerConfig {
    /// Minimum token length in characters; shorter tokens are dropped.
    pub min_token_len: usize,
    /// Whether to drop tokens consisting only of digits.
    pub drop_numeric: bool,
    /// Explicit stopword list; tokens in this list are dropped.
    /// Empty by default (see module docs).
    pub stopwords: Vec<String>,
}

impl Default for TokenizerConfig {
    fn default() -> Self {
        Self {
            min_token_len: 1,
            drop_numeric: false,
            stopwords: Vec::new(),
        }
    }
}

impl TokenizerConfig {
    /// A config that removes a small English stopword list and numerals;
    /// useful when building demo tag clouds, not for the paper pipeline.
    pub fn aggressive() -> Self {
        Self {
            min_token_len: 2,
            drop_numeric: true,
            stopwords: ENGLISH_STOPWORDS.iter().map(|s| (*s).to_owned()).collect(),
        }
    }
}

/// A minimal English stopword list for [`TokenizerConfig::aggressive`].
pub const ENGLISH_STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "from", "has", "have", "in",
    "is", "it", "its", "of", "on", "or", "that", "the", "this", "to", "was", "were", "will",
    "with",
];

/// Splits `text` into lowercase alphanumeric tokens according to `config`.
///
/// Unicode alphanumerics are preserved (`char::is_alphanumeric`); everything
/// else is a separator. The output order follows the input order, which the
/// phrase miner relies on for n-gram extraction.
pub fn tokenize(text: &str, config: &TokenizerConfig) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            for lc in ch.to_lowercase() {
                current.push(lc);
            }
        } else if !current.is_empty() {
            push_token(&mut out, std::mem::take(&mut current), config);
        }
    }
    if !current.is_empty() {
        push_token(&mut out, current, config);
    }
    out
}

fn push_token(out: &mut Vec<String>, token: String, config: &TokenizerConfig) {
    if token.chars().count() < config.min_token_len {
        return;
    }
    if config.drop_numeric && token.chars().all(|c| c.is_ascii_digit()) {
        return;
    }
    if config.stopwords.iter().any(|s| s == &token) {
        return;
    }
    out.push(token);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn default_tokens(text: &str) -> Vec<String> {
        tokenize(text, &TokenizerConfig::default())
    }

    #[test]
    fn splits_on_punctuation_and_whitespace() {
        assert_eq!(
            default_tokens("Trade reserves, economic-minister!"),
            vec!["trade", "reserves", "economic", "minister"]
        );
    }

    #[test]
    fn lowercases() {
        assert_eq!(default_tokens("SIGMOD Papers"), vec!["sigmod", "papers"]);
    }

    #[test]
    fn keeps_digits_by_default() {
        assert_eq!(default_tokens("year 1997"), vec!["year", "1997"]);
    }

    #[test]
    fn empty_and_symbol_only_input() {
        assert!(default_tokens("").is_empty());
        assert!(default_tokens("... --- !!!").is_empty());
    }

    #[test]
    fn preserves_order_and_duplicates() {
        assert_eq!(
            default_tokens("the cat the cat"),
            vec!["the", "cat", "the", "cat"]
        );
    }

    #[test]
    fn min_token_len_filters() {
        let cfg = TokenizerConfig {
            min_token_len: 3,
            ..Default::default()
        };
        assert_eq!(tokenize("a an the query", &cfg), vec!["the", "query"]);
    }

    #[test]
    fn drop_numeric_filters_pure_numbers_only() {
        let cfg = TokenizerConfig {
            drop_numeric: true,
            ..Default::default()
        };
        assert_eq!(tokenize("1997 b2b 42", &cfg), vec!["b2b"]);
    }

    #[test]
    fn stopword_removal() {
        let cfg = TokenizerConfig::aggressive();
        assert_eq!(
            tokenize("the query optimization of a database", &cfg),
            vec!["query", "optimization", "database"]
        );
    }

    #[test]
    fn unicode_tokens_survive() {
        assert_eq!(
            default_tokens("naïve Bayes café"),
            vec!["naïve", "bayes", "café"]
        );
    }
}
