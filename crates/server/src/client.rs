//! A blocking protocol client plus a closed-loop load generator.
//!
//! The client speaks exactly the wire format of [`crate::wire`]; the load
//! generator drives N threads of synchronous request/response traffic
//! (closed loop: each thread has one request in flight at a time), which
//! is also what the serving benchmark and the CI smoke job run.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use serde_json::Value;

use crate::wire::{ErrorKind, SearchRequest};

/// A blocking line-protocol client over one TCP connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects once.
    ///
    /// # Errors
    /// Propagates connect failures.
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Connects with retries (for freshly spawned servers).
    ///
    /// # Errors
    /// The last connect failure after `attempts` tries.
    pub fn connect_with_retries(
        addr: &str,
        attempts: usize,
        delay: Duration,
    ) -> std::io::Result<Self> {
        let mut last = None;
        for _ in 0..attempts.max(1) {
            match Self::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) => last = Some(e),
            }
            std::thread::sleep(delay);
        }
        // lint-allow: server-unwrap — the retry loop above runs at least once, so last is always Some
        Err(last.expect("at least one attempt"))
    }

    /// Sends one raw line and reads one response line, parsed as JSON.
    ///
    /// # Errors
    /// Transport failures, EOF, or an unparseable response line.
    pub fn roundtrip(&mut self, line: &str) -> std::io::Result<Value> {
        self.writer.write_all(line.as_bytes())?;
        if !line.ends_with('\n') {
            self.writer.write_all(b"\n")?;
        }
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        serde_json::from_str(&response)
            .map_err(|e| std::io::Error::other(format!("bad response line: {e}")))
    }

    /// Executes a search request.
    ///
    /// # Errors
    /// See [`Client::roundtrip`].
    pub fn search(&mut self, req: &SearchRequest) -> std::io::Result<Value> {
        self.roundtrip(&req.to_line())
    }

    /// Executes `req` under a server-side deadline: the clock starts when
    /// the server *receives* the request (queue wait counts), an expired
    /// deadline comes back as a structured `deadline_exceeded` error, and
    /// a mid-execution expiry returns the anytime result marked
    /// `completeness: truncated`.
    ///
    /// # Errors
    /// See [`Client::roundtrip`].
    pub fn search_with_deadline(
        &mut self,
        req: &SearchRequest,
        deadline: Duration,
    ) -> std::io::Result<Value> {
        let mut req = req.clone();
        req.deadline_ms = Some(deadline.as_millis().min(u128::from(u64::MAX)) as u64);
        self.search(&req)
    }

    /// Executes several searches as one `{"batch": [...]}` request: the
    /// batch shares a single server admission slot and the response's
    /// `batch` array carries one `{ok, result|error}` object per item, in
    /// order.
    ///
    /// # Errors
    /// See [`Client::roundtrip`].
    pub fn search_batch(&mut self, reqs: &[SearchRequest]) -> std::io::Result<Value> {
        self.roundtrip(&crate::wire::batch_line(reqs))
    }

    /// Ingests one document over the wire (protocol v3): tokens are plain
    /// term strings, facets are `key:value` strings. The response carries
    /// the new `epoch`, the live `delta_docs` count, and how many terms
    /// were outside the serving vocabulary (`unknown_tokens`).
    ///
    /// # Errors
    /// See [`Client::roundtrip`].
    pub fn ingest(&mut self, tokens: &[String], facets: &[String]) -> std::io::Result<Value> {
        self.roundtrip(&crate::wire::ingest_line(tokens, facets))
    }

    /// Marks a document of the serving corpus deleted (protocol v3).
    ///
    /// # Errors
    /// See [`Client::roundtrip`].
    pub fn delete_doc(&mut self, doc: u64) -> std::io::Result<Value> {
        self.roundtrip(&crate::wire::delete_line(doc))
    }

    /// Asks the server to compact: flush the delta into a full offline
    /// rebuild and atomically swap it in (protocol v3). Blocks until the
    /// rebuild completes; queries issued on other connections keep being
    /// served from the pre-swap index throughout.
    ///
    /// # Errors
    /// See [`Client::roundtrip`].
    pub fn compact(&mut self) -> std::io::Result<Value> {
        self.roundtrip("{\"cmd\":\"compact\"}\n")
    }

    /// Fetches the server counters.
    ///
    /// # Errors
    /// See [`Client::roundtrip`].
    pub fn stats(&mut self) -> std::io::Result<Value> {
        self.roundtrip("{\"cmd\":\"stats\"}\n")
    }

    /// Fetches the metrics exposition (protocol v4): the response's
    /// `metrics` field is one Prometheus-text string covering the engine
    /// and the serving layer.
    ///
    /// # Errors
    /// See [`Client::roundtrip`], plus a protocol error when the
    /// `metrics` field is missing from an ok response.
    pub fn metrics(&mut self) -> std::io::Result<String> {
        let v = self.roundtrip("{\"cmd\":\"metrics\"}\n")?;
        v["metrics"]
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| std::io::Error::other("response carries no metrics field"))
    }

    /// Liveness check.
    ///
    /// # Errors
    /// See [`Client::roundtrip`].
    pub fn ping(&mut self) -> std::io::Result<Value> {
        self.roundtrip("{\"cmd\":\"ping\"}\n")
    }

    /// Asks the server to shut down gracefully.
    ///
    /// # Errors
    /// See [`Client::roundtrip`].
    pub fn shutdown_server(&mut self) -> std::io::Result<Value> {
        self.roundtrip("{\"cmd\":\"shutdown\"}\n")
    }
}

/// Aggregated outcome of a load run.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadReport {
    /// Requests sent.
    pub sent: u64,
    /// Successful responses.
    pub ok: u64,
    /// Successful responses that rode another request's execution.
    pub coalesced: u64,
    /// Requests shed by admission control.
    pub overloaded: u64,
    /// Everything else: transport failures, parse/query/internal errors.
    pub errors: u64,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
}

impl LoadReport {
    /// Completed requests (ok + shed) per wall-clock second.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            (self.ok + self.overloaded) as f64 / secs
        }
    }
}

impl std::fmt::Display for LoadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sent={} ok={} coalesced={} overloaded={} errors={} elapsed_ms={:.1} qps={:.0}",
            self.sent,
            self.ok,
            self.coalesced,
            self.overloaded,
            self.errors,
            self.elapsed.as_secs_f64() * 1e3,
            self.throughput(),
        )
    }
}

/// Runs `threads` closed-loop clients, each sending `requests_per_thread`
/// copies of `request` over its own connection. All threads start on a
/// barrier, so the first wave of identical requests arrives as one
/// concurrent burst — the single-flight path, not just the result cache,
/// is exercised.
///
/// # Errors
/// Only connection setup errors; per-request failures are counted in the
/// report instead.
pub fn run_load(
    addr: &str,
    threads: usize,
    requests_per_thread: usize,
    request: &SearchRequest,
) -> std::io::Result<LoadReport> {
    let threads = threads.max(1);
    let mut clients = Vec::with_capacity(threads);
    for _ in 0..threads {
        clients.push(Client::connect_with_retries(
            addr,
            25,
            Duration::from_millis(200),
        )?);
    }
    let ok = Arc::new(AtomicU64::new(0));
    let coalesced = Arc::new(AtomicU64::new(0));
    let overloaded = Arc::new(AtomicU64::new(0));
    let errors = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(threads));
    let started = Instant::now();
    std::thread::scope(|s| {
        for mut client in clients {
            let req = request.clone();
            let (ok, coalesced, overloaded, errors) = (
                ok.clone(),
                coalesced.clone(),
                overloaded.clone(),
                errors.clone(),
            );
            let barrier = barrier.clone();
            s.spawn(move || {
                barrier.wait();
                for _ in 0..requests_per_thread {
                    match client.search(&req) {
                        Ok(v) if v["ok"].as_bool() == Some(true) => {
                            ok.fetch_add(1, Ordering::Relaxed);
                            if v["server"]["coalesced"].as_bool() == Some(true) {
                                coalesced.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Ok(v) => {
                            let kind = v["error"]["kind"].as_str().and_then(ErrorKind::from_name);
                            if kind == Some(ErrorKind::Overloaded) {
                                overloaded.fetch_add(1, Ordering::Relaxed);
                            } else {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    Ok(LoadReport {
        sent: (threads * requests_per_thread) as u64,
        ok: ok.load(Ordering::Relaxed),
        coalesced: coalesced.load(Ordering::Relaxed),
        overloaded: overloaded.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
        elapsed: started.elapsed(),
    })
}
