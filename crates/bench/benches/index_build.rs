//! Criterion benchmarks of offline index construction: phrase mining,
//! postings, word-list construction (serial vs parallel), plus the
//! galloping-vs-merge intersection ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ipm_corpus::{Corpus, DocId};
use ipm_index::corpus_index::{CorpusIndex, IndexConfig};
use ipm_index::mining::{mine_phrases, MiningConfig};
use ipm_index::postings::Postings;
use ipm_index::wordlists::{WordListConfig, WordPhraseLists};

fn corpus() -> Corpus {
    let mut cfg = ipm_corpus::synth::tiny();
    cfg.num_docs = 1500;
    let (c, _) = ipm_corpus::synth::generate(&cfg);
    c
}

fn bench_mining(c: &mut Criterion) {
    let corpus = corpus();
    let mut group = c.benchmark_group("build/mining");
    group.sample_size(10);
    for min_df in [5u32, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(min_df), &min_df, |b, &df| {
            b.iter(|| {
                mine_phrases(
                    &corpus,
                    &MiningConfig {
                        min_df: df,
                        max_len: 6,
                        min_len: 1,
                    },
                )
                .len()
            })
        });
    }
    group.finish();
}

fn bench_wordlists_parallelism(c: &mut Criterion) {
    let corpus = corpus();
    let index = CorpusIndex::build(&corpus, &IndexConfig::default());
    let mut group = c.benchmark_group("build/wordlists_threads");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                WordPhraseLists::build(
                    &corpus,
                    &index,
                    &WordListConfig {
                        threads: t,
                        ..Default::default()
                    },
                )
                .total_entries()
            })
        });
    }
    group.finish();
}

fn bench_intersection_ablation(c: &mut Criterion) {
    // Galloping pays off on skewed size ratios; the adaptive intersect
    // picks per-call. Compare a balanced and a skewed workload.
    let big = Postings::from_sorted((0..200_000).map(DocId).collect());
    let small = Postings::from_sorted((0..200_000).step_by(997).map(DocId).collect());
    let medium = Postings::from_sorted((0..200_000).step_by(2).map(DocId).collect());

    let mut group = c.benchmark_group("postings/intersect");
    group.bench_function("skewed_small_x_big", |b| {
        b.iter(|| small.intersect(&big).len())
    });
    group.bench_function("balanced_medium_x_big", |b| {
        b.iter(|| medium.intersect(&big).len())
    });
    group.bench_function("union_medium_x_big", |b| {
        b.iter(|| medium.union(&big).len())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_mining,
    bench_wordlists_parallelism,
    bench_intersection_ablation
);
criterion_main!(benches);
