//! A shared, thread-safe query front-end over pluggable list backends.
//!
//! The paper's closing claim is that list-based scoring makes interesting-
//! phrase mining "a feasible task for search-like interactive systems".
//! Such a system serves many concurrent queries over one immutable index.
//! [`QueryEngine`] packages a built [`PhraseMiner`] behind an [`Arc`] with:
//!
//! * a string-query API and per-query algorithm choice (all four: NRA,
//!   SMJ, TA, exact);
//! * per-query **backend** choice ([`BackendChoice`]): the in-memory lists
//!   or the simulated-disk image (`ipm_storage::DiskLists`), which is
//!   built lazily on first use and reports per-query [`IoStats`];
//! * a sharded LRU **result cache** keyed by `(query, k, options)`
//!   ([`crate::cache`]), so repeated interactive queries skip list
//!   traversal entirely — hit/miss counters sit next to
//!   [`QueryEngine::queries_served`];
//! * optional §5.6 redundancy filtering, composed with every algorithm,
//!   backend and NRA fraction.
//!
//! All index state is immutable after build, so clones of the engine can
//! be handed to any number of threads. Disk-backed requests serialize on
//! an internal lock: the simulated buffer pool is shared, and per-query
//! cold-cache IO accounting (the paper's §5.5 methodology) is only
//! meaningful for one query at a time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

use crate::cache::{CacheConfig, CacheStats, ShardedLruCache};
use crate::delta::{AdjustedCursor, DeltaIndex};
use crate::exact;
use crate::miner::PhraseMiner;
use crate::nra::{run_nra, NraConfig};
use crate::parse::ParseError;
use crate::query::{Operator, Query};
use crate::redundancy::RedundancyConfig;
use crate::result::PhraseHit;
use crate::scoring::estimated_interestingness;
use crate::smj::run_smj_backend;
use crate::ta::run_ta_backend;
use ipm_index::backend::ListBackend;
use ipm_storage::{DiskLists, IoStats};

/// Which retrieval algorithm serves a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Algorithm {
    /// NRA over score-ordered lists (paper Alg. 1) — the default.
    #[default]
    Nra,
    /// Sort-merge join over ID-ordered lists (paper Alg. 2).
    Smj,
    /// The threshold algorithm with random probes into the ID-ordered
    /// lists.
    Ta,
    /// The exact scorer (ground truth; linear in `|D'|`).
    Exact,
}

/// Which list backend serves a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendChoice {
    /// The in-memory word lists — the default.
    #[default]
    Memory,
    /// The serialized disk image behind the simulated buffer pool; the
    /// response carries the query's [`IoStats`].
    Disk,
}

/// Per-request options.
#[derive(Debug, Clone, Default)]
pub struct SearchOptions {
    /// Retrieval algorithm.
    pub algorithm: Algorithm,
    /// List backend.
    pub backend: BackendChoice,
    /// Fraction of each score-ordered list NRA may read (`1.0` = full;
    /// ignored by the other algorithms — SMJ's fraction is fixed at build
    /// time, paper §4.4.2). Composes with `redundancy`.
    pub nra_fraction: Option<f64>,
    /// Optional §5.6 redundancy filter applied post-retrieval (the engine
    /// over-fetches until `k` survivors are found or candidates run out).
    pub redundancy: Option<RedundancyConfig>,
    /// Apply the engine's attached §4.5.1 [`DeltaIndex`] corrections.
    /// Honoured on the NRA path (both backends) — every streamed entry's
    /// conditional probability is corrected against the side index, and
    /// NRA runs with partial-list bound semantics because the stale list
    /// order no longer guarantees its pruning bounds (paper §4.5.1). The
    /// other algorithms ignore the flag. A no-op when no delta is attached.
    pub use_delta: bool,
}

/// Engine construction options.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Fraction of each score-ordered list serialized into the lazily
    /// built disk image (`1.0` = full lists). Below `1.0`, disk-backed
    /// NRA automatically runs with partial-list bound semantics (the
    /// truncated tail may hold any phrase), and disk-backed SMJ/TA
    /// become approximate exactly like their in-memory partial-list
    /// counterparts (paper §4.3/§4.4.2).
    pub disk_fraction: f64,
    /// Result-cache sizing; `None` disables caching.
    pub cache: Option<CacheConfig>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            disk_fraction: 1.0,
            cache: Some(CacheConfig::default()),
        }
    }
}

/// One resolved result row.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// The raw hit (phrase id, score, bounds).
    pub hit: PhraseHit,
    /// The phrase rendered as text.
    pub text: String,
    /// The score mapped back to an interestingness estimate in `[0, 1]`.
    pub interestingness: f64,
}

/// A served response.
#[derive(Debug, Clone)]
pub struct SearchResponse {
    /// The parsed query that was executed.
    pub query: Query,
    /// Resolved hits, best first.
    pub hits: Vec<SearchHit>,
    /// Wall-clock service time.
    pub elapsed: Duration,
    /// Simulated IO performed by *this* request (disk backend only;
    /// `None` on the memory backend and on cache hits, which perform no
    /// list IO at all).
    pub io: Option<IoStats>,
    /// Whether the result came from the query cache.
    pub served_from_cache: bool,
}

/// A cloneable, thread-safe handle to an immutable phrase-mining index.
#[derive(Debug, Clone)]
pub struct QueryEngine {
    inner: Arc<Inner>,
}

/// The cache key: every request field that can change the result. Public
/// so request coalescers (e.g. `ipm_server`'s single-flight layer) can key
/// their in-flight maps identically to the result cache — two requests
/// with equal keys are guaranteed to produce equal responses.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Encoded features, sorted — feature order never changes results, so
    /// `a AND b` and `b AND a` share an entry.
    features: Vec<u64>,
    op: Operator,
    k: usize,
    algorithm: Algorithm,
    backend: BackendChoice,
    /// `nra_fraction` bit pattern (`1.0` when unset).
    fraction_bits: u64,
    /// `redundancy.max_overlap` bit pattern, when set.
    redundancy_bits: Option<u64>,
    /// Whether delta corrections were requested. The cache is cleared
    /// whenever the engine's delta is attached, mutated or detached, so
    /// within one cache generation this flag fully determines the
    /// delta-corrected result.
    use_delta: bool,
}

impl CacheKey {
    /// Builds the key for one request.
    pub fn new(query: &Query, k: usize, options: &SearchOptions) -> Self {
        let mut features: Vec<u64> = query.features.iter().map(|f| f.encode()).collect();
        features.sort_unstable();
        Self {
            features,
            op: query.op,
            k,
            algorithm: options.algorithm,
            backend: options.backend,
            fraction_bits: options.nra_fraction.unwrap_or(1.0).to_bits(),
            redundancy_bits: options.redundancy.as_ref().map(|r| r.max_overlap.to_bits()),
            use_delta: options.use_delta,
        }
    }
}

#[derive(Debug)]
struct Inner {
    miner: PhraseMiner,
    /// Lazily built disk image (first disk-backed request pays the build).
    disk: OnceLock<DiskLists>,
    disk_fraction: f64,
    /// Serializes disk-backed execution for exact per-query IO accounting
    /// over the shared simulated pool.
    disk_gate: Mutex<()>,
    cache: Option<ShardedLruCache<CacheKey, Arc<Vec<SearchHit>>>>,
    served: AtomicU64,
    /// The attached §4.5.1 side index over inserted/deleted documents;
    /// `None` until [`QueryEngine::attach_delta`]. Attaching, updating or
    /// detaching clears the result cache so served results never go stale.
    delta: RwLock<Option<Arc<DeltaIndex>>>,
    /// Simulated IO accumulated across every disk-backed query served
    /// (cache hits add nothing — they perform no list IO).
    io_totals: Mutex<IoStats>,
}

// The index is immutable after build; a compile-time check that the engine
// really is shareable keeps that invariant honest.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QueryEngine>();
};

impl QueryEngine {
    /// Wraps a built miner with the default configuration (full-fraction
    /// lazy disk image, default-sized cache).
    pub fn new(miner: PhraseMiner) -> Self {
        Self::with_config(miner, EngineConfig::default())
    }

    /// Wraps a built miner with explicit engine options.
    pub fn with_config(miner: PhraseMiner, config: EngineConfig) -> Self {
        Self {
            inner: Arc::new(Inner {
                miner,
                disk: OnceLock::new(),
                disk_fraction: config.disk_fraction,
                disk_gate: Mutex::new(()),
                cache: config.cache.map(ShardedLruCache::new),
                served: AtomicU64::new(0),
                delta: RwLock::new(None),
                io_totals: Mutex::new(IoStats::default()),
            }),
        }
    }

    /// The underlying miner (for direct algorithm access).
    pub fn miner(&self) -> &PhraseMiner {
        &self.inner.miner
    }

    /// The disk image, building it on first use.
    pub fn disk(&self) -> &DiskLists {
        self.inner
            .disk
            .get_or_init(|| self.inner.miner.to_disk(self.inner.disk_fraction))
    }

    /// Queries served across all clones of this engine (cache hits
    /// included).
    pub fn queries_served(&self) -> u64 {
        self.inner.served.load(Ordering::Relaxed)
    }

    /// Result-cache hit/miss counters (all zero when the cache is
    /// disabled).
    pub fn cache_stats(&self) -> CacheStats {
        self.inner
            .cache
            .as_ref()
            .map(ShardedLruCache::stats)
            .unwrap_or_default()
    }

    /// Drops every cached result (counters keep accumulating).
    pub fn clear_cache(&self) {
        if let Some(cache) = &self.inner.cache {
            cache.clear();
        }
    }

    /// Simulated IO accumulated across all disk-backed queries served by
    /// every clone of this engine (cache hits contribute nothing).
    pub fn io_totals(&self) -> IoStats {
        *self.inner.io_totals.lock().unwrap()
    }

    /// Attaches (or replaces) the §4.5.1 side index and clears the result
    /// cache — cached entries were computed against the previous corpus
    /// state and must not be served once a delta changes it.
    pub fn attach_delta(&self, delta: DeltaIndex) {
        *self.inner.delta.write().unwrap() = Some(Arc::new(delta));
        self.clear_cache();
    }

    /// Mutates the attached delta in place (attaching an empty one first
    /// if none is present) and clears the result cache. Use for ongoing
    /// ingestion: `engine.update_delta(|d| d.add_document(...))`.
    pub fn update_delta(&self, f: impl FnOnce(&mut DeltaIndex)) {
        {
            let mut guard = self.inner.delta.write().unwrap();
            let delta = guard.get_or_insert_with(Default::default);
            f(Arc::make_mut(delta));
        }
        self.clear_cache();
    }

    /// Detaches the side index (e.g. after an offline rebuild absorbed
    /// it) and clears the result cache.
    pub fn detach_delta(&self) {
        *self.inner.delta.write().unwrap() = None;
        self.clear_cache();
    }

    /// A snapshot handle to the attached delta, if any.
    pub fn delta(&self) -> Option<Arc<DeltaIndex>> {
        self.inner.delta.read().unwrap().clone()
    }

    /// Parses and serves a string query (`"trade AND reserves"`,
    /// `"topic:t04 OR minister"`) with default options.
    ///
    /// # Errors
    /// Returns the parse error for malformed input or unknown terms.
    pub fn search(&self, input: &str, k: usize) -> Result<SearchResponse, ParseError> {
        self.search_with(input, k, &SearchOptions::default())
    }

    /// Parses and serves a string query with explicit options.
    ///
    /// # Errors
    /// Returns the parse error for malformed input or unknown terms.
    pub fn search_with(
        &self,
        input: &str,
        k: usize,
        options: &SearchOptions,
    ) -> Result<SearchResponse, ParseError> {
        let query = self.inner.miner.parse_query_str(input)?;
        Ok(self.execute(query, k, options))
    }

    /// Serves an already-parsed query.
    pub fn execute(&self, query: Query, k: usize, options: &SearchOptions) -> SearchResponse {
        let start = Instant::now();
        let key = CacheKey::new(&query, k, options);
        if let Some(cache) = &self.inner.cache {
            if let Some(hits) = cache.get(&key) {
                self.inner.served.fetch_add(1, Ordering::Relaxed);
                return SearchResponse {
                    query,
                    hits: hits.as_ref().clone(),
                    elapsed: start.elapsed(),
                    io: None,
                    served_from_cache: true,
                };
            }
        }

        let (hits, io) = self.execute_uncached(&query, k, options);
        if let Some(cache) = &self.inner.cache {
            cache.insert(key, Arc::new(hits.clone()));
        }
        self.inner.served.fetch_add(1, Ordering::Relaxed);
        SearchResponse {
            query,
            hits,
            elapsed: start.elapsed(),
            io,
            served_from_cache: false,
        }
    }

    /// Runs the query on the selected backend and resolves hit texts
    /// (through the disk phrase file on the disk backend, so even the
    /// exact scorer charges its final phrase lookups there — the paper's
    /// last retrieval step).
    fn execute_uncached(
        &self,
        query: &Query,
        k: usize,
        options: &SearchOptions,
    ) -> (Vec<SearchHit>, Option<IoStats>) {
        let m = &self.inner.miner;
        // Snapshot the delta only when the request opted in; the Arc keeps
        // it alive across the (lock-free) execution.
        let delta_snapshot = if options.use_delta {
            self.delta().filter(|d| !d.is_empty())
        } else {
            None
        };
        let delta = delta_snapshot.as_deref();
        match options.backend {
            BackendChoice::Memory => {
                let hits = run_on_backend(m, &m.memory_backend(), query, k, options, false, delta);
                let resolved = hits
                    .into_iter()
                    .map(|hit| SearchHit {
                        text: m.phrase_text(hit.phrase),
                        interestingness: estimated_interestingness(query.op, hit.score),
                        hit,
                    })
                    .collect();
                (resolved, None)
            }
            BackendChoice::Disk => {
                let disk = self.disk();
                let _serial = self.inner.disk_gate.lock().unwrap();
                disk.reset_io(); // per-query cold cache (paper §5.5)
                let image_truncated = self.inner.disk_fraction < 1.0;
                let hits = run_on_backend(m, disk, query, k, options, image_truncated, delta);
                let resolved = hits
                    .into_iter()
                    .map(|hit| SearchHit {
                        text: disk
                            .phrase_text(hit.phrase)
                            .unwrap_or_else(|| m.phrase_text(hit.phrase)),
                        interestingness: estimated_interestingness(query.op, hit.score),
                        hit,
                    })
                    .collect();
                let io = disk.io_stats();
                self.inner.io_totals.lock().unwrap().accumulate(&io);
                (resolved, Some(io))
            }
        }
    }
}

/// Dispatches one request over any backend, composing the redundancy
/// filter (over-fetch loop) with every algorithm — including NRA with a
/// partial `nra_fraction`, which the pre-backend engine silently dropped
/// when a redundancy filter was also set.
///
/// `image_truncated` says the backend's lists were already cut to a
/// build-time fraction (a disk image serialized with
/// `EngineConfig::disk_fraction < 1.0`): NRA must then treat exhausted
/// cursors with partial-list semantics — the tail below the truncation
/// point may still hold any phrase — even when no run-time
/// `nra_fraction` was requested.
///
/// A non-empty `delta` wraps every NRA score cursor in an
/// [`AdjustedCursor`] streaming §4.5.1-corrected probabilities; the stale
/// list order then no longer guarantees NRA's bounds, so the run always
/// uses partial-list semantics (corrected-NRA remains approximate, as the
/// paper notes).
#[allow(clippy::too_many_arguments)]
fn run_on_backend<B: ListBackend>(
    miner: &PhraseMiner,
    backend: &B,
    query: &Query,
    k: usize,
    options: &SearchOptions,
    image_truncated: bool,
    delta: Option<&DeltaIndex>,
) -> Vec<PhraseHit> {
    let fraction = options.nra_fraction.unwrap_or(1.0);
    let fetch_k = |fetch: usize| -> Vec<PhraseHit> {
        match options.algorithm {
            Algorithm::Nra => {
                let cfg = NraConfig {
                    k: fetch,
                    lists_are_partial: fraction < 1.0 || image_truncated || delta.is_some(),
                    ..miner.config().nra.clone()
                };
                if let Some(d) = delta {
                    let cursors: Vec<AdjustedCursor<'_, B::ScoreCursor<'_>>> = query
                        .features
                        .iter()
                        .map(|&f| {
                            AdjustedCursor::new(
                                backend.score_cursor(f, fraction),
                                d,
                                miner.index(),
                                f,
                            )
                        })
                        .collect();
                    return run_nra(cursors, query.op, &cfg).hits;
                }
                let cursors: Vec<B::ScoreCursor<'_>> = query
                    .features
                    .iter()
                    .map(|&f| backend.score_cursor(f, fraction))
                    .collect();
                run_nra(cursors, query.op, &cfg).hits
            }
            Algorithm::Smj => run_smj_backend(backend, query, fetch),
            Algorithm::Ta => run_ta_backend(backend, query, fetch).hits,
            Algorithm::Exact => exact::exact_top_k(miner.index(), query, fetch),
        }
    };
    let mut hits = fetch_filtered(k, options.redundancy.as_ref(), fetch_k, |hits| {
        if let Some(r) = options.redundancy.as_ref() {
            crate::redundancy::filter_hits(&miner.index().dict, query, hits, r);
        }
    });
    hits.truncate(k);
    hits
}

/// Runs `fetch_k` at increasing depths until `k` results survive
/// `filter`, mirroring [`PhraseMiner::top_k_nonredundant`]'s loop (first
/// round `2k + 8`, doubling; stops once the unfiltered fetch comes back
/// short, i.e. the candidate space is exhausted). Without a filter it is
/// a single plain fetch.
fn fetch_filtered(
    k: usize,
    red: Option<&RedundancyConfig>,
    mut fetch_k: impl FnMut(usize) -> Vec<PhraseHit>,
    mut filter: impl FnMut(&mut Vec<PhraseHit>),
) -> Vec<PhraseHit> {
    if red.is_none() {
        return fetch_k(k);
    }
    let mut fetch = k * 2 + 8;
    loop {
        let mut hits = fetch_k(fetch);
        let exhausted = hits.len() < fetch;
        filter(&mut hits);
        if hits.len() >= k || exhausted {
            return hits;
        }
        fetch *= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::MinerConfig;
    use crate::query::Operator;
    use ipm_index::corpus_index::IndexConfig;
    use ipm_index::mining::MiningConfig;

    fn engine() -> QueryEngine {
        let (c, _) = ipm_corpus::synth::generate(&ipm_corpus::synth::tiny());
        QueryEngine::new(PhraseMiner::build(
            &c,
            MinerConfig {
                index: IndexConfig {
                    mining: MiningConfig {
                        min_df: 3,
                        max_len: 4,
                        min_len: 1,
                    },
                },
                ..Default::default()
            },
        ))
    }

    fn query_string(e: &QueryEngine, op: Operator) -> String {
        let top = ipm_corpus::stats::top_words_by_df(e.miner().corpus(), 2);
        let words: Vec<&str> = top
            .iter()
            .map(|&(w, _)| e.miner().corpus().words().term(w).unwrap())
            .collect();
        words.join(&format!(" {op} "))
    }

    const ALL_ALGORITHMS: [Algorithm; 4] = [
        Algorithm::Nra,
        Algorithm::Smj,
        Algorithm::Ta,
        Algorithm::Exact,
    ];

    #[test]
    fn search_returns_resolved_hits() {
        let e = engine();
        let q = query_string(&e, Operator::Or);
        let resp = e.search(&q, 5).unwrap();
        assert!(!resp.hits.is_empty());
        for h in &resp.hits {
            assert!(!h.text.is_empty());
            assert!((0.0..=1.0).contains(&h.interestingness));
        }
        assert!(resp.io.is_none());
        assert!(!resp.served_from_cache);
        assert_eq!(e.queries_served(), 1);
    }

    #[test]
    fn malformed_query_is_an_error_not_a_panic() {
        let e = engine();
        assert!(e.search("", 5).is_err());
        assert!(e.search("zzzz_not_a_word_zzzz", 5).is_err());
        assert_eq!(e.queries_served(), 0);
    }

    #[test]
    fn algorithms_agree_through_the_engine() {
        let e = engine();
        let q = query_string(&e, Operator::Or);
        let mut phrases: Vec<Vec<_>> = Vec::new();
        for alg in [Algorithm::Nra, Algorithm::Smj, Algorithm::Ta] {
            let resp = e
                .search_with(
                    &q,
                    5,
                    &SearchOptions {
                        algorithm: alg,
                        ..Default::default()
                    },
                )
                .unwrap();
            phrases.push(resp.hits.iter().map(|h| h.hit.phrase).collect());
        }
        assert_eq!(phrases[0], phrases[1], "NRA vs SMJ");
        assert_eq!(phrases[1], phrases[2], "SMJ vs TA");
    }

    #[test]
    fn disk_backend_matches_memory_for_every_algorithm() {
        let e = engine();
        for op in [Operator::And, Operator::Or] {
            let q = query_string(&e, op);
            for alg in ALL_ALGORITHMS {
                let mem = e
                    .search_with(
                        &q,
                        5,
                        &SearchOptions {
                            algorithm: alg,
                            ..Default::default()
                        },
                    )
                    .unwrap();
                let disk = e
                    .search_with(
                        &q,
                        5,
                        &SearchOptions {
                            algorithm: alg,
                            backend: BackendChoice::Disk,
                            ..Default::default()
                        },
                    )
                    .unwrap();
                assert_eq!(
                    mem.hits.iter().map(|h| h.hit.phrase).collect::<Vec<_>>(),
                    disk.hits.iter().map(|h| h.hit.phrase).collect::<Vec<_>>(),
                    "{alg:?} {op}: memory and disk backends disagree"
                );
                for (a, b) in mem.hits.iter().zip(&disk.hits) {
                    assert_eq!(a.text, b.text, "{alg:?}: text resolution differs");
                }
                let io = disk.io.expect("disk run reports IoStats");
                assert!(io.total_accesses() > 0, "{alg:?} {op}: no IO charged");
                assert!(mem.io.is_none());
            }
        }
    }

    #[test]
    fn cache_serves_repeats_and_counts() {
        let e = engine();
        let q = query_string(&e, Operator::Or);
        let cold = e.search(&q, 5).unwrap();
        assert!(!cold.served_from_cache);
        let warm = e.search(&q, 5).unwrap();
        assert!(warm.served_from_cache);
        assert_eq!(cold.hits, warm.hits);
        let stats = e.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(e.queries_served(), 2);
        // Different options are different cache entries.
        let other = e
            .search_with(
                &q,
                5,
                &SearchOptions {
                    algorithm: Algorithm::Smj,
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(!other.served_from_cache);
        // Clearing forgets results but keeps counters.
        e.clear_cache();
        assert!(!e.search(&q, 5).unwrap().served_from_cache);
        assert_eq!(e.cache_stats().hits, 1);
    }

    #[test]
    fn cache_key_ignores_feature_order() {
        let e = engine();
        let top = ipm_corpus::stats::top_words_by_df(e.miner().corpus(), 2);
        let words: Vec<&str> = top
            .iter()
            .map(|&(w, _)| e.miner().corpus().words().term(w).unwrap())
            .collect();
        let fwd = format!("{} OR {}", words[0], words[1]);
        let rev = format!("{} OR {}", words[1], words[0]);
        assert!(!e.search(&fwd, 5).unwrap().served_from_cache);
        assert!(
            e.search(&rev, 5).unwrap().served_from_cache,
            "feature order must not fragment the cache"
        );
    }

    #[test]
    fn disk_cache_hit_skips_io() {
        let e = engine();
        let q = query_string(&e, Operator::And);
        let opts = SearchOptions {
            backend: BackendChoice::Disk,
            ..Default::default()
        };
        let cold = e.search_with(&q, 5, &opts).unwrap();
        assert!(cold.io.unwrap().total_accesses() > 0);
        let warm = e.search_with(&q, 5, &opts).unwrap();
        assert!(warm.served_from_cache);
        assert!(warm.io.is_none(), "cache hit performs no simulated IO");
        assert_eq!(cold.hits, warm.hits);
    }

    #[test]
    fn truncated_disk_image_keeps_partial_nra_semantics() {
        // Regression: with `disk_fraction < 1.0` and no run-time
        // `nra_fraction`, disk NRA must use partial-list bounds — its
        // results must match memory NRA at the same fraction, not drop
        // AND candidates whose tail entries were truncated away.
        let (c, _) = ipm_corpus::synth::generate(&ipm_corpus::synth::tiny());
        let e = QueryEngine::with_config(
            PhraseMiner::build(&c, MinerConfig::default()),
            EngineConfig {
                disk_fraction: 0.5,
                cache: None,
            },
        );
        for op in [Operator::And, Operator::Or] {
            let q = query_string(&e, op);
            let disk = e
                .search_with(
                    &q,
                    5,
                    &SearchOptions {
                        backend: BackendChoice::Disk,
                        ..Default::default()
                    },
                )
                .unwrap();
            let mem_partial = e
                .search_with(
                    &q,
                    5,
                    &SearchOptions {
                        nra_fraction: Some(0.5),
                        ..Default::default()
                    },
                )
                .unwrap();
            assert_eq!(
                disk.hits.iter().map(|h| h.hit.phrase).collect::<Vec<_>>(),
                mem_partial
                    .hits
                    .iter()
                    .map(|h| h.hit.phrase)
                    .collect::<Vec<_>>(),
                "{op}: truncated disk image must behave like run-time partial lists"
            );
        }
    }

    #[test]
    fn cache_can_be_disabled() {
        let (c, _) = ipm_corpus::synth::generate(&ipm_corpus::synth::tiny());
        let e = QueryEngine::with_config(
            PhraseMiner::build(&c, MinerConfig::default()),
            EngineConfig {
                cache: None,
                ..Default::default()
            },
        );
        let q = query_string(&e, Operator::Or);
        assert!(!e.search(&q, 5).unwrap().served_from_cache);
        assert!(!e.search(&q, 5).unwrap().served_from_cache);
        assert_eq!(e.cache_stats(), CacheStats::default());
    }

    #[test]
    fn redundancy_option_filters_across_algorithms_and_backends() {
        let e = engine();
        let q = query_string(&e, Operator::Or);
        let red = RedundancyConfig::default();
        for backend in [BackendChoice::Memory, BackendChoice::Disk] {
            for alg in ALL_ALGORITHMS {
                let resp = e
                    .search_with(
                        &q,
                        5,
                        &SearchOptions {
                            algorithm: alg,
                            backend,
                            redundancy: Some(red),
                            ..Default::default()
                        },
                    )
                    .unwrap();
                let query = &resp.query;
                for h in &resp.hits {
                    let words = e.miner().index().dict.words(h.hit.phrase).unwrap();
                    assert!(
                        crate::redundancy::overlap_fraction(words, query) < red.max_overlap,
                        "{alg:?}/{backend:?} leaked redundant phrase {}",
                        h.text
                    );
                }
            }
        }
    }

    #[test]
    fn nra_fraction_composes_with_redundancy() {
        // Regression: the old engine dropped `nra_fraction` whenever a
        // redundancy filter was set. A fraction small enough to change the
        // candidate set must now change the filtered results too.
        let e = engine();
        let q = query_string(&e, Operator::Or);
        let red = RedundancyConfig { max_overlap: 2.0 }; // filter disabled ⇒ pure pass-through
        let filtered = e
            .search_with(
                &q,
                5,
                &SearchOptions {
                    nra_fraction: Some(0.05),
                    redundancy: Some(red),
                    ..Default::default()
                },
            )
            .unwrap();
        let partial_only = e
            .search_with(
                &q,
                5,
                &SearchOptions {
                    nra_fraction: Some(0.05),
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(
            filtered
                .hits
                .iter()
                .map(|h| h.hit.phrase)
                .collect::<Vec<_>>(),
            partial_only
                .hits
                .iter()
                .map(|h| h.hit.phrase)
                .collect::<Vec<_>>(),
            "a no-op filter must not change partial-NRA results"
        );
    }

    #[test]
    fn concurrent_clones_serve_identical_results() {
        let e = engine();
        let q = query_string(&e, Operator::And);
        let baseline: Vec<_> = e
            .search(&q, 5)
            .unwrap()
            .hits
            .iter()
            .map(|h| h.hit.phrase)
            .collect();
        let threads = 8;
        let per_thread = 25;
        std::thread::scope(|s| {
            for t in 0..threads {
                let eng = e.clone();
                let q = q.clone();
                let want = baseline.clone();
                s.spawn(move || {
                    // Half the threads hit the disk backend to exercise the
                    // serialization gate concurrently with memory serving.
                    let opts = if t % 2 == 0 {
                        SearchOptions::default()
                    } else {
                        SearchOptions {
                            backend: BackendChoice::Disk,
                            ..Default::default()
                        }
                    };
                    for _ in 0..per_thread {
                        let got: Vec<_> = eng
                            .search_with(&q, 5, &opts)
                            .unwrap()
                            .hits
                            .iter()
                            .map(|h| h.hit.phrase)
                            .collect();
                        assert_eq!(got, want);
                    }
                });
            }
        });
        assert_eq!(e.queries_served(), 1 + (threads * per_thread) as u64);
        let stats = e.cache_stats();
        assert!(stats.hits > 0, "repeat queries must hit the cache");
    }

    #[test]
    fn attached_delta_corrects_nra_and_clears_cache() {
        let e = engine();
        let q = query_string(&e, Operator::Or);
        let delta_opts = SearchOptions {
            use_delta: true,
            ..Default::default()
        };
        // Without a delta attached the flag is a no-op (and a distinct
        // cache entry).
        let plain: Vec<_> = e
            .search(&q, 5)
            .unwrap()
            .hits
            .iter()
            .map(|h| h.hit.phrase)
            .collect();
        let noop: Vec<_> = e
            .search_with(&q, 5, &delta_opts)
            .unwrap()
            .hits
            .iter()
            .map(|h| h.hit.phrase)
            .collect();
        assert_eq!(plain, noop);

        // Warm the cache, then attach a delta: cached entries must drop.
        assert!(e.search(&q, 5).unwrap().served_from_cache);
        let top = ipm_corpus::stats::top_words_by_df(e.miner().corpus(), 2);
        let mut delta = crate::delta::DeltaIndex::new();
        for _ in 0..20 {
            delta.add_document(e.miner().index(), &[top[0].0], &[]);
        }
        e.attach_delta(delta);
        assert!(
            !e.search(&q, 5).unwrap().served_from_cache,
            "attach_delta must clear the result cache"
        );

        // The engine's delta path matches the miner's reference
        // implementation exactly.
        let query = e.miner().parse_query_str(&q).unwrap();
        let want: Vec<_> = e
            .miner()
            .top_k_nra_with_delta(&query, 5, &e.delta().unwrap())
            .hits
            .iter()
            .map(|h| h.phrase)
            .collect();
        let got: Vec<_> = e
            .search_with(&q, 5, &delta_opts)
            .unwrap()
            .hits
            .iter()
            .map(|h| h.hit.phrase)
            .collect();
        assert_eq!(got, want, "engine delta path must match the miner's");

        // In-place updates and detaching clear the cache too.
        assert!(e.search_with(&q, 5, &delta_opts).unwrap().served_from_cache);
        e.update_delta(|d| d.delete_document(ipm_corpus::DocId(0)));
        assert!(
            !e.search_with(&q, 5, &delta_opts).unwrap().served_from_cache,
            "update_delta must clear the result cache"
        );
        e.detach_delta();
        assert!(e.delta().is_none());
        assert!(!e.search(&q, 5).unwrap().served_from_cache);
    }

    #[test]
    fn io_totals_accumulate_across_disk_queries() {
        let e = engine();
        assert_eq!(e.io_totals(), ipm_storage::IoStats::default());
        let opts = SearchOptions {
            backend: BackendChoice::Disk,
            ..Default::default()
        };
        let q = query_string(&e, Operator::Or);
        let first = e.search_with(&q, 5, &opts).unwrap().io.unwrap();
        assert_eq!(e.io_totals(), first);
        // A cache hit performs no IO and adds nothing.
        assert!(e.search_with(&q, 5, &opts).unwrap().served_from_cache);
        assert_eq!(e.io_totals(), first);
        // A distinct disk query accumulates on top.
        let q2 = query_string(&e, Operator::And);
        let second = e.search_with(&q2, 5, &opts).unwrap().io.unwrap();
        let totals = e.io_totals();
        assert_eq!(
            totals.total_accesses(),
            first.total_accesses() + second.total_accesses()
        );
        // Memory-backed queries never contribute.
        let q3 = format!("{q} "); // same query, same key — cached
        let _ = e.search(&q3, 5).unwrap();
        assert_eq!(e.io_totals(), totals);
    }

    #[test]
    fn clear_cache_races_with_concurrent_searches() {
        let e = engine();
        let q = query_string(&e, Operator::Or);
        let want: Vec<_> = e
            .search(&q, 5)
            .unwrap()
            .hits
            .iter()
            .map(|h| h.hit.phrase)
            .collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let eng = e.clone();
                let q = q.clone();
                let want = want.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        let got: Vec<_> = eng
                            .search(&q, 5)
                            .unwrap()
                            .hits
                            .iter()
                            .map(|h| h.hit.phrase)
                            .collect();
                        assert_eq!(got, want, "a racing clear must never corrupt results");
                    }
                });
            }
            let eng = e.clone();
            s.spawn(move || {
                for _ in 0..100 {
                    eng.clear_cache();
                    std::thread::yield_now();
                }
            });
        });
    }

    #[test]
    fn nra_fraction_option_is_honoured() {
        let e = engine();
        let q = query_string(&e, Operator::Or);
        // A tiny fraction still returns *something* (≥1 entry per list) and
        // must not panic.
        let resp = e
            .search_with(
                &q,
                5,
                &SearchOptions {
                    nra_fraction: Some(0.05),
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(!resp.hits.is_empty());
    }
}
