//! Criterion benchmarks of the unified engine's query-result cache: cold
//! (cache cleared before every query) vs cached (one warm-up, then pure
//! hit path) latency, on both the in-memory and the simulated-disk
//! backend. The hit path skips list traversal entirely — on the disk
//! backend that also skips every simulated page access.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ipm_core::{Algorithm, BackendChoice, MinerConfig, PhraseMiner, QueryEngine, SearchOptions};

fn engine_and_queries() -> (QueryEngine, Vec<String>) {
    let (corpus, _) = ipm_corpus::synth::generate(&ipm_corpus::synth::tiny());
    let engine = QueryEngine::new(PhraseMiner::build(&corpus, MinerConfig::default()));
    let top = ipm_corpus::stats::top_words_by_df(engine.miner().corpus(), 6);
    let terms: Vec<String> = top
        .iter()
        .map(|&(w, _)| corpus.words().term(w).unwrap().to_owned())
        .collect();
    let queries = (0..terms.len() - 1)
        .flat_map(|i| {
            [
                format!("{} AND {}", terms[i], terms[i + 1]),
                format!("{} OR {}", terms[i], terms[i + 1]),
            ]
        })
        .collect();
    (engine, queries)
}

fn bench_cold_vs_cached(c: &mut Criterion) {
    let (engine, queries) = engine_and_queries();
    let mut group = c.benchmark_group("engine_cache/cold_vs_cached");
    group.sample_size(30);
    for backend in [BackendChoice::Memory, BackendChoice::Disk] {
        let options = SearchOptions {
            algorithm: Algorithm::Nra,
            backend,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::new("cold", format!("{backend:?}")),
            &options,
            |b, opts| {
                let mut i = 0usize;
                b.iter(|| {
                    engine.clear_cache(); // every query recomputes
                    let q = &queries[i % queries.len()];
                    i += 1;
                    engine.search_with(q, 5, opts).unwrap().hits.len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("cached", format!("{backend:?}")),
            &options,
            |b, opts| {
                engine.clear_cache();
                for q in &queries {
                    engine.search_with(q, 5, opts).unwrap(); // warm the cache
                }
                let mut i = 0usize;
                b.iter(|| {
                    let q = &queries[i % queries.len()];
                    i += 1;
                    let resp = engine.search_with(q, 5, opts).unwrap();
                    assert!(resp.served_from_cache);
                    resp.hits.len()
                })
            },
        );
    }
    group.finish();
}

fn bench_hit_path_by_algorithm(c: &mut Criterion) {
    // The hit path is algorithm-independent by construction; measuring it
    // per algorithm documents that repeated queries cost the same no
    // matter how expensive the miss path is.
    let (engine, queries) = engine_and_queries();
    let mut group = c.benchmark_group("engine_cache/hit_path");
    group.sample_size(30);
    for algorithm in [
        Algorithm::Nra,
        Algorithm::Smj,
        Algorithm::Ta,
        Algorithm::Exact,
    ] {
        let options = SearchOptions {
            algorithm,
            backend: BackendChoice::Disk,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{algorithm:?}")),
            &options,
            |b, opts| {
                engine.clear_cache();
                for q in &queries {
                    engine.search_with(q, 5, opts).unwrap();
                }
                let mut i = 0usize;
                b.iter(|| {
                    let q = &queries[i % queries.len()];
                    i += 1;
                    engine.search_with(q, 5, opts).unwrap().hits.len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cold_vs_cached, bench_hit_path_by_algorithm);
criterion_main!(benches);
