//! Offline shim for `serde_json`: a JSON `Value` tree built by hand, a
//! standards-correct printer (compact and pretty), and a recursive-descent
//! parser ([`from_str`]). There is no generic `Serialize`/`Deserialize`
//! path — callers construct and inspect `Value`s directly. See
//! `shims/README.md`.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with deterministic (sorted) key order.
    Object(BTreeMap<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 9e15 => Some(*n as u64),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup (`None` for non-objects and missing keys,
    /// unlike the `Index` impl which yields `Null`).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Number(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Number(n as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(map) => map.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// Serialization error (the shim's printer is infallible in practice; the
/// type exists for signature compatibility).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: f64) {
    if n.is_finite() {
        if n.fract() == 0.0 && n.abs() < 9e15 {
            out.push_str(&format!("{}", n as i64));
        } else {
            out.push_str(&format!("{n}"));
        }
    } else {
        // JSON has no Inf/NaN; serde_json emits null.
        out.push_str("null");
    }
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    const STEP: usize = 2;
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&" ".repeat(indent + STEP));
                write_pretty(out, item, indent + STEP);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&" ".repeat(indent));
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                out.push_str(&" ".repeat(indent + STEP));
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(out, val, indent + STEP);
                if i + 1 < map.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
    }
}

/// Pretty-prints a [`Value`] with 2-space indentation.
///
/// # Errors
/// Never fails; the `Result` mirrors the real crate's signature.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, value, 0);
    Ok(out)
}

/// Compact form.
///
/// # Errors
/// Never fails; the `Result` mirrors the real crate's signature.
pub fn to_string(value: &Value) -> Result<String, Error> {
    // Reuse the pretty printer then strip is wrong (strings may hold
    // newlines); walk again compactly instead.
    fn write_compact(out: &mut String, v: &Value) {
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write_number(out, *n),
            Value::String(s) => escape_into(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_compact(out, item);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, val)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, k);
                    out.push(':');
                    write_compact(out, val);
                }
                out.push('}');
            }
        }
    }
    let mut out = String::new();
    write_compact(&mut out, value);
    Ok(out)
}

/// Parses a JSON document into a [`Value`].
///
/// The real crate's `from_str` is generic over `Deserialize`; every call
/// site in this workspace requests a `Value`, so the shim fixes the output
/// type (the annotation `let v: Value = serde_json::from_str(s)?` compiles
/// against both).
///
/// # Errors
/// Returns a descriptive [`Error`] (with byte offset) for malformed input.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

/// Maximum container nesting. The parser is recursive descent, so depth
/// must be bounded or crafted input (e.g. 50k `[`s on one line of a
/// network protocol) overflows the thread stack — which aborts the whole
/// process. The real serde_json limits recursion to 128 as well.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), Error> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.nested(Self::array),
            Some(b'{') => self.nested(Self::object),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn nested(&mut self, parse: fn(&mut Self) -> Result<Value, Error>) -> Result<Value, Error> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("recursion limit exceeded"));
        }
        self.depth += 1;
        let v = parse(self);
        self.depth -= 1;
        v
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error(format!("invalid number '{text}' at byte {start}")))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: the low half must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a valid &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Value {
        let mut obj = BTreeMap::new();
        obj.insert("title".to_owned(), Value::from("T \"quoted\""));
        obj.insert(
            "rows".to_owned(),
            Value::Array(vec![Value::from(vec!["a", "b"])]),
        );
        obj.insert("n".to_owned(), Value::from(3usize));
        Value::Object(obj)
    }

    #[test]
    fn index_and_compare() {
        let v = sample();
        assert_eq!(v["title"], "T \"quoted\"");
        assert_eq!(v["rows"][0][1], "b");
        assert_eq!(v["missing"], Value::Null);
        assert_eq!(v["n"], 3.0);
    }

    #[test]
    fn pretty_output_is_valid_and_escaped() {
        let text = to_string_pretty(&sample()).unwrap();
        assert!(text.contains("\"title\": \"T \\\"quoted\\\"\""));
        assert!(text.starts_with("{\n"));
        assert!(text.ends_with('}'));
    }

    #[test]
    fn compact_output() {
        let text = to_string(&Value::from(vec!["x"])).unwrap();
        assert_eq!(text, "[\"x\"]");
        assert_eq!(to_string(&Value::Number(2.0)).unwrap(), "2");
        assert_eq!(to_string(&Value::Number(2.5)).unwrap(), "2.5");
        assert_eq!(to_string(&Value::Number(f64::NAN)).unwrap(), "null");
    }

    #[test]
    fn parse_roundtrips_compact_and_pretty() {
        let v = sample();
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(from_str(&text).unwrap(), v);
        }
    }

    #[test]
    fn parse_scalars_and_nesting() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str(" true ").unwrap(), Value::Bool(true));
        assert_eq!(from_str("-2.5e2").unwrap(), Value::Number(-250.0));
        assert_eq!(from_str("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(from_str("{}").unwrap(), Value::Object(BTreeMap::new()));
        let v = from_str(r#"{"a": [1, {"b": "c"}], "d": false}"#).unwrap();
        assert_eq!(v["a"][1]["b"], "c");
        assert_eq!(v["a"][0], 1.0);
        assert_eq!(v["d"].as_bool(), Some(false));
    }

    #[test]
    fn parse_string_escapes() {
        let v = from_str(r#""q\"\\\n\t\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "q\"\\\n\tAé😀");
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"abc",
            "1 2",
            "{'a':1}",
            "\"\\u12\"",
            "\"\\ud800\"",
            "[1]]",
        ] {
            assert!(from_str(bad).is_err(), "accepted malformed input: {bad}");
        }
    }

    #[test]
    fn parse_bounds_recursion_depth() {
        // Within the limit parses fine...
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(from_str(&ok).is_ok());
        // ...a pathological line errors instead of overflowing the stack
        // (which would abort the process serving it).
        let deep = format!("{}1{}", "[".repeat(50_000), "]".repeat(50_000));
        assert!(from_str(&deep).is_err());
        let deep_obj = "{\"a\":".repeat(50_000);
        assert!(from_str(&deep_obj).is_err());
    }

    #[test]
    fn accessors() {
        let v = from_str(r#"{"n": 3, "f": 3.5, "s": "x", "b": true, "z": null}"#).unwrap();
        assert_eq!(v["n"].as_u64(), Some(3));
        assert_eq!(v["f"].as_u64(), None);
        assert_eq!(v["f"].as_f64(), Some(3.5));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("missing"), None);
        assert!(v["z"].is_null());
        assert!(!v["b"].is_null());
        assert_eq!(v.as_object().unwrap().len(), 5);
        assert!(v["n"].as_object().is_none());
    }
}
