//! On-disk persistence of the serialized index files.
//!
//! The in-memory [`WordListFile`]/[`PhraseListFile`] images (whose *layout*
//! is the paper's: 12-byte scored entries, 50-byte phrase slots) can be
//! written to real files and reloaded, so the expensive offline build runs
//! once and query processes start cold from disk. The container format is
//! deliberately simple and fully validated on load:
//!
//! ```text
//! [magic: 4 bytes]["IPW1" word lists | "IPP1" phrase list]
//! [header fields: little-endian u64s]
//! [directory (word lists only): (feature_code u64, start u64, len u64)*]
//! [data blob]
//! [crc32 of everything above: u32]
//! ```
//!
//! Every load failure is a typed [`PersistError`] — corrupt indexes must
//! never panic a serving process.

use crate::checksum::{crc32, Crc32};
use crate::files::{ListRun, PhraseListFile, WordListFile, PHRASE_ENTRY_BYTES};
use crate::packed::PackedWordListFile;
use bytes::Bytes;
use ipm_corpus::hash::FxHashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const WORD_MAGIC: &[u8; 4] = b"IPW1";
const PHRASE_MAGIC: &[u8; 4] = b"IPP1";
const PACKED_MAGIC: &[u8; 4] = b"IPK1";

/// Load/store failures.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// The file does not start with the expected magic.
    BadMagic,
    /// Header fields are internally inconsistent (e.g. lengths overflow the
    /// file size).
    Corrupt(&'static str),
    /// The trailing CRC-32 does not match the content.
    ChecksumMismatch { expected: u32, actual: u32 },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::BadMagic => write!(f, "not an interesting-phrases index file"),
            PersistError::Corrupt(what) => write!(f, "corrupt index file: {what}"),
            PersistError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "checksum mismatch: expected {expected:#010x}, got {actual:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

// ---------- word-list file ---------------------------------------------------

/// Writes a [`WordListFile`] to `path`.
pub fn save_word_lists<P: AsRef<Path>>(file: &WordListFile, path: P) -> Result<(), PersistError> {
    let mut w = HashingWriter::new(BufWriter::new(File::create(path)?));
    w.write_all(WORD_MAGIC)?;
    w.write_u64(file.directory.len() as u64)?;
    w.write_u64(file.total_entries as u64)?;
    w.write_u64(file.data.len() as u64)?;
    // Deterministic directory order: sorted by feature code.
    let mut entries: Vec<(u64, ListRun)> = file.directory.iter().map(|(&k, &v)| (k, v)).collect();
    entries.sort_unstable_by_key(|&(k, _)| k);
    for (code, run) in entries {
        w.write_u64(code)?;
        w.write_u64(run.start)?;
        w.write_u64(run.len)?;
    }
    w.write_all(&file.data)?;
    w.finish()
}

/// Reads a [`WordListFile`] from `path`, validating structure and checksum.
pub fn load_word_lists<P: AsRef<Path>>(path: P) -> Result<WordListFile, PersistError> {
    let raw = read_and_verify(path, WORD_MAGIC)?;
    let mut r = Cursor::new(&raw);
    let num_features = r.read_u64()? as usize;
    let total_entries = r.read_u64()? as usize;
    let data_len = r.read_u64()? as usize;

    let mut directory: FxHashMap<u64, ListRun> =
        ipm_corpus::hash::fx_map_with_capacity(num_features);
    let mut covered: u64 = 0;
    for _ in 0..num_features {
        let code = r.read_u64()?;
        let start = r.read_u64()?;
        let len = r.read_u64()?;
        if (start + len) as usize * ipm_index::wordlists::ENTRY_BYTES > data_len {
            return Err(PersistError::Corrupt("directory run exceeds data region"));
        }
        if directory.insert(code, ListRun { start, len }).is_some() {
            return Err(PersistError::Corrupt("duplicate feature in directory"));
        }
        covered += len;
    }
    if covered as usize != total_entries {
        return Err(PersistError::Corrupt(
            "directory entry counts disagree with header",
        ));
    }
    if total_entries * ipm_index::wordlists::ENTRY_BYTES != data_len {
        return Err(PersistError::Corrupt(
            "data region size disagrees with entry count",
        ));
    }
    let data = r.read_bytes(data_len)?;
    r.expect_end()?;
    Ok(WordListFile {
        data: Bytes::from(data),
        directory,
        total_entries,
    })
}

// ---------- phrase-list file -------------------------------------------------

/// Writes a [`PhraseListFile`] to `path`.
pub fn save_phrase_list<P: AsRef<Path>>(
    file: &PhraseListFile,
    path: P,
) -> Result<(), PersistError> {
    let mut w = HashingWriter::new(BufWriter::new(File::create(path)?));
    w.write_all(PHRASE_MAGIC)?;
    w.write_u64(file.num_phrases as u64)?;
    w.write_all(&file.data)?;
    w.finish()
}

/// Reads a [`PhraseListFile`] from `path`.
pub fn load_phrase_list<P: AsRef<Path>>(path: P) -> Result<PhraseListFile, PersistError> {
    let raw = read_and_verify(path, PHRASE_MAGIC)?;
    let mut r = Cursor::new(&raw);
    let num_phrases = r.read_u64()? as usize;
    let expect = num_phrases
        .checked_mul(PHRASE_ENTRY_BYTES)
        .ok_or(PersistError::Corrupt("phrase count overflows"))?;
    let data = r.read_bytes(expect)?;
    r.expect_end()?;
    Ok(PhraseListFile {
        data: Bytes::from(data),
        num_phrases,
    })
}

// ---------- packed word-list file ---------------------------------------------

/// Writes a [`PackedWordListFile`] (the §4.2.2 bit-exact layout) to `path`.
pub fn save_packed_lists<P: AsRef<Path>>(
    file: &PackedWordListFile,
    path: P,
) -> Result<(), PersistError> {
    let mut w = HashingWriter::new(BufWriter::new(File::create(path)?));
    w.write_all(PACKED_MAGIC)?;
    w.write_u64(file.directory.len() as u64)?;
    w.write_u64(file.total_entries as u64)?;
    w.write_u64(u64::from(file.id_bits))?;
    w.write_u64(file.data.len() as u64)?;
    let mut entries: Vec<(u64, ListRun)> = file.directory.iter().map(|(&k, &v)| (k, v)).collect();
    entries.sort_unstable_by_key(|&(k, _)| k);
    for (code, run) in entries {
        w.write_u64(code)?;
        w.write_u64(run.start)?;
        w.write_u64(run.len)?;
    }
    w.write_all(&file.data)?;
    w.finish()
}

/// Reads a [`PackedWordListFile`] from `path`, validating structure and
/// checksum.
pub fn load_packed_lists<P: AsRef<Path>>(path: P) -> Result<PackedWordListFile, PersistError> {
    let raw = read_and_verify(path, PACKED_MAGIC)?;
    let mut r = Cursor::new(&raw);
    let num_features = r.read_u64()? as usize;
    let total_entries = r.read_u64()? as usize;
    let id_bits_raw = r.read_u64()?;
    if !(1..=64).contains(&id_bits_raw) {
        return Err(PersistError::Corrupt("id width outside 1..=64 bits"));
    }
    let id_bits = id_bits_raw as u32;
    let data_len = r.read_u64()? as usize;
    let entry_bits = u64::from(id_bits) + 64;

    let mut directory: FxHashMap<u64, ListRun> =
        ipm_corpus::hash::fx_map_with_capacity(num_features);
    let mut covered: u64 = 0;
    for _ in 0..num_features {
        let code = r.read_u64()?;
        let start = r.read_u64()?;
        let len = r.read_u64()?;
        let end_bits = start
            .checked_add(len)
            .and_then(|e| e.checked_mul(entry_bits))
            .ok_or(PersistError::Corrupt("directory run overflows"))?;
        if end_bits.div_ceil(8) > data_len as u64 {
            return Err(PersistError::Corrupt("directory run exceeds data region"));
        }
        if directory.insert(code, ListRun { start, len }).is_some() {
            return Err(PersistError::Corrupt("duplicate feature in directory"));
        }
        covered += len;
    }
    if covered as usize != total_entries {
        return Err(PersistError::Corrupt(
            "directory entry counts disagree with header",
        ));
    }
    if (total_entries as u64 * entry_bits).div_ceil(8) != data_len as u64 {
        return Err(PersistError::Corrupt(
            "data region size disagrees with entry count",
        ));
    }
    let data = r.read_bytes(data_len)?;
    r.expect_end()?;
    Ok(PackedWordListFile {
        data: Bytes::from(data),
        directory,
        total_entries,
        id_bits,
    })
}

// ---------- plumbing ---------------------------------------------------------

/// Reads a whole file, checks magic and trailing CRC, and returns the body
/// (between magic and CRC).
fn read_and_verify<P: AsRef<Path>>(path: P, magic: &[u8; 4]) -> Result<Vec<u8>, PersistError> {
    let mut buf = Vec::new();
    BufReader::new(File::open(path)?).read_to_end(&mut buf)?;
    if buf.len() < 8 {
        return Err(PersistError::Corrupt("file shorter than magic + checksum"));
    }
    if &buf[..4] != magic {
        return Err(PersistError::BadMagic);
    }
    let body_end = buf.len() - 4;
    let expected = u32::from_le_bytes(buf[body_end..].try_into().unwrap());
    let actual = crc32(&buf[..body_end]);
    if expected != actual {
        return Err(PersistError::ChecksumMismatch { expected, actual });
    }
    Ok(buf[4..body_end].to_vec())
}

/// Write adapter accumulating the CRC over everything written.
struct HashingWriter<W: Write> {
    inner: W,
    crc: Crc32,
}

impl<W: Write> HashingWriter<W> {
    fn new(inner: W) -> Self {
        Self {
            inner,
            crc: Crc32::new(),
        }
    }

    fn write_all(&mut self, bytes: &[u8]) -> Result<(), PersistError> {
        self.crc.update(bytes);
        self.inner.write_all(bytes)?;
        Ok(())
    }

    fn write_u64(&mut self, v: u64) -> Result<(), PersistError> {
        self.write_all(&v.to_le_bytes())
    }

    fn finish(mut self) -> Result<(), PersistError> {
        let crc = self.crc.finish();
        self.inner.write_all(&crc.to_le_bytes())?;
        self.inner.flush()?;
        Ok(())
    }
}

/// Bounds-checked reader over the verified body.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn read_u64(&mut self) -> Result<u64, PersistError> {
        if self.pos + 8 > self.buf.len() {
            return Err(PersistError::Corrupt("truncated header"));
        }
        let v = u64::from_le_bytes(self.buf[self.pos..self.pos + 8].try_into().unwrap());
        self.pos += 8;
        Ok(v)
    }

    fn read_bytes(&mut self, n: usize) -> Result<Vec<u8>, PersistError> {
        if self.pos + n > self.buf.len() {
            return Err(PersistError::Corrupt("truncated data region"));
        }
        let out = self.buf[self.pos..self.pos + n].to_vec();
        self.pos += n;
        Ok(out)
    }

    fn expect_end(&self) -> Result<(), PersistError> {
        if self.pos != self.buf.len() {
            Err(PersistError::Corrupt("trailing garbage after data region"))
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{BufferPool, PoolConfig};
    use ipm_corpus::Feature;
    use ipm_index::corpus_index::{CorpusIndex, IndexConfig};
    use ipm_index::mining::MiningConfig;
    use ipm_index::wordlists::{WordListConfig, WordPhraseLists};

    fn setup() -> (ipm_corpus::Corpus, CorpusIndex, WordPhraseLists) {
        let (c, _) = ipm_corpus::synth::generate(&ipm_corpus::synth::tiny());
        let index = CorpusIndex::build(
            &c,
            &IndexConfig {
                mining: MiningConfig {
                    min_df: 3,
                    max_len: 3,
                    min_len: 1,
                },
            },
        );
        let lists = WordPhraseLists::build(&c, &index, &WordListConfig::default());
        (c, index, lists)
    }

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("ipm_persist_{name}_{}", std::process::id()));
        let _ = std::fs::create_dir_all(&d);
        d
    }

    #[test]
    fn word_lists_roundtrip() {
        let (_, _, lists) = setup();
        let file = WordListFile::build(&lists);
        let dir = tmpdir("wl");
        let path = dir.join("words.ipw");
        save_word_lists(&file, &path).unwrap();
        let loaded = load_word_lists(&path).unwrap();
        assert_eq!(loaded.total_entries(), file.total_entries());
        let mut pool = BufferPool::new(PoolConfig::default());
        for feat in lists.features() {
            assert_eq!(loaded.list_len(*feat), file.list_len(*feat));
            for i in 0..file.list_len(*feat) {
                let a = file.read_entry(*feat, i, &mut pool).unwrap();
                let b = loaded.read_entry(*feat, i, &mut pool).unwrap();
                assert_eq!(a.phrase, b.phrase);
                assert_eq!(a.prob.to_bits(), b.prob.to_bits());
            }
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn phrase_list_roundtrip() {
        let (c, index, _) = setup();
        let file = PhraseListFile::build(&c, &index.dict);
        let dir = tmpdir("pl");
        let path = dir.join("phrases.ipp");
        save_phrase_list(&file, &path).unwrap();
        let loaded = load_phrase_list(&path).unwrap();
        assert_eq!(loaded.num_phrases(), file.num_phrases());
        let mut pool = BufferPool::new(PoolConfig::default());
        for (id, _, _) in index.dict.iter() {
            assert_eq!(loaded.read(id, &mut pool), file.read(id, &mut pool));
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn bad_magic_rejected() {
        let dir = tmpdir("magic");
        let path = dir.join("bogus.ipw");
        std::fs::write(&path, b"NOPE-this-is-not-an-index-file-0000").unwrap();
        match load_word_lists(&path) {
            Err(PersistError::BadMagic) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn bit_flip_detected_by_checksum() {
        let (_, _, lists) = setup();
        let file = WordListFile::build(&lists);
        let dir = tmpdir("flip");
        let path = dir.join("words.ipw");
        save_word_lists(&file, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        match load_word_lists(&path) {
            Err(PersistError::ChecksumMismatch { .. }) => {}
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn truncation_detected() {
        let (c, index, _) = setup();
        let file = PhraseListFile::build(&c, &index.dict);
        let dir = tmpdir("trunc");
        let path = dir.join("phrases.ipp");
        save_phrase_list(&file, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        // Either the checksum or the structure check must fire — never a
        // panic.
        assert!(load_phrase_list(&path).is_err());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn phrase_magic_and_word_magic_are_not_interchangeable() {
        let (c, index, lists) = setup();
        let dir = tmpdir("cross");
        let wl = dir.join("w.ipw");
        save_word_lists(&WordListFile::build(&lists), &wl).unwrap();
        match load_phrase_list(&wl) {
            Err(PersistError::BadMagic) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
        let pl = dir.join("p.ipp");
        save_phrase_list(&PhraseListFile::build(&c, &index.dict), &pl).unwrap();
        assert!(matches!(load_word_lists(&pl), Err(PersistError::BadMagic)));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn packed_lists_roundtrip() {
        let (_, index, lists) = setup();
        let file = crate::packed::PackedWordListFile::build(&lists, index.dict.len());
        let dir = tmpdir("pk");
        let path = dir.join("packed.ipk");
        save_packed_lists(&file, &path).unwrap();
        let loaded = load_packed_lists(&path).unwrap();
        assert_eq!(loaded.total_entries(), file.total_entries());
        assert_eq!(loaded.id_bits(), file.id_bits());
        let mut pool = BufferPool::new(PoolConfig::default());
        for feat in lists.features() {
            assert_eq!(loaded.list_len(*feat), file.list_len(*feat));
            for i in 0..file.list_len(*feat) {
                let a = file.read_entry(*feat, i, &mut pool).unwrap();
                let b = loaded.read_entry(*feat, i, &mut pool).unwrap();
                assert_eq!(a.phrase, b.phrase);
                assert_eq!(a.prob.to_bits(), b.prob.to_bits());
            }
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn packed_bit_flip_detected() {
        let (_, index, lists) = setup();
        let file = crate::packed::PackedWordListFile::build(&lists, index.dict.len());
        let dir = tmpdir("pkflip");
        let path = dir.join("packed.ipk");
        save_packed_lists(&file, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x80;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_packed_lists(&path),
            Err(PersistError::ChecksumMismatch { .. })
        ));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn packed_rejects_other_magics() {
        let (_, _, lists) = setup();
        let dir = tmpdir("pkmagic");
        let wl = dir.join("w.ipw");
        save_word_lists(&WordListFile::build(&lists), &wl).unwrap();
        assert!(matches!(
            load_packed_lists(&wl),
            Err(PersistError::BadMagic)
        ));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn packed_rejects_invalid_id_width() {
        // Hand-build a file with id_bits = 0 and a valid CRC: the width
        // check (not the checksum) must reject it.
        let dir = tmpdir("pkwidth");
        let path = dir.join("bad.ipk");
        let mut body = Vec::new();
        body.extend_from_slice(PACKED_MAGIC);
        for v in [0u64, 0, 0, 0] {
            body.extend_from_slice(&v.to_le_bytes());
        }
        let crc = crc32(&body);
        body.extend_from_slice(&crc.to_le_bytes());
        std::fs::write(&path, &body).unwrap();
        assert!(matches!(
            load_packed_lists(&path),
            Err(PersistError::Corrupt("id width outside 1..=64 bits"))
        ));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn error_display_strings() {
        let e = PersistError::ChecksumMismatch {
            expected: 1,
            actual: 2,
        };
        assert!(e.to_string().contains("checksum"));
        assert!(PersistError::BadMagic.to_string().contains("index file"));
        let _ = Feature::Word(ipm_corpus::WordId(0));
    }
}
