//! The paper's correctness criterion (§5.3).
//!
//! "For every query, we collect the top-5 result phrases from our
//! list-based approach ... and mark each of them as correct if they either
//! have an actual interestingness of 1.0 (being the absolute maximum
//! interestingness possible) or are among the top-5 most interesting
//! phrases for that query."

use ipm_core::exact::{exact_scores_for_subset, materialize_subset};
use ipm_core::query::Query;
use ipm_core::result::{sort_hits, PhraseHit};
use ipm_corpus::hash::FxHashSet;
use ipm_corpus::PhraseId;
use ipm_index::corpus_index::CorpusIndex;

/// Relevance oracle for one query.
#[derive(Debug, Clone)]
pub struct RelevanceJudgments {
    relevant: FxHashSet<PhraseId>,
    exact_top_k: Vec<PhraseHit>,
}

impl RelevanceJudgments {
    /// Computes the relevant set for `query`: the exact top-k plus every
    /// phrase whose true interestingness equals 1.0.
    pub fn compute(index: &CorpusIndex, query: &Query, k: usize) -> Self {
        let subset = materialize_subset(index, query);
        let mut all = exact_scores_for_subset(index, &subset);
        sort_hits(&mut all);
        let mut relevant: FxHashSet<PhraseId> = FxHashSet::default();
        for (i, h) in all.iter().enumerate() {
            if i < k || h.score >= 1.0 - 1e-12 {
                relevant.insert(h.phrase);
            } else {
                // Sorted descending: once below top-k and below 1.0, all
                // later phrases are too.
                break;
            }
        }
        let exact_top_k = all.into_iter().take(k).collect();
        Self {
            relevant,
            exact_top_k,
        }
    }

    /// Whether a returned phrase counts as correct.
    pub fn is_relevant(&self, p: PhraseId) -> bool {
        self.relevant.contains(&p)
    }

    /// Total number of relevant answers (for MAP/NDCG ideals).
    pub fn num_relevant(&self) -> usize {
        self.relevant.len()
    }

    /// The exact top-k (ground truth ranking, used by Table 6's
    /// interestingness-error analysis).
    pub fn exact_top_k(&self) -> &[PhraseHit] {
        &self.exact_top_k
    }

    /// Marks a ranked result list: `true` per returned hit that is correct.
    pub fn mark(&self, hits: &[PhraseHit]) -> Vec<bool> {
        hits.iter().map(|h| self.is_relevant(h.phrase)).collect()
    }

    /// Convenience: quality scores of a ranked result list under this
    /// judgment.
    pub fn score(&self, hits: &[PhraseHit], k: usize) -> crate::metrics::QualityScores {
        crate::metrics::QualityScores::compute(&self.mark(hits), k, self.num_relevant())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipm_core::query::Operator;
    use ipm_corpus::{Corpus, CorpusBuilder, TokenizerConfig};
    use ipm_index::corpus_index::IndexConfig;
    use ipm_index::mining::MiningConfig;

    fn setup() -> (Corpus, CorpusIndex) {
        let mut b = CorpusBuilder::new(TokenizerConfig::default());
        for t in [
            "q o d s", "q o x", "d s q", "q o d s", "x y", "d s x", "x y q o",
        ] {
            b.add_text(t);
        }
        let c = b.build();
        let index = CorpusIndex::build(
            &c,
            &IndexConfig {
                mining: MiningConfig {
                    min_df: 2,
                    max_len: 3,
                    min_len: 1,
                },
            },
        );
        (c, index)
    }

    #[test]
    fn exact_top_k_members_are_relevant() {
        let (c, index) = setup();
        let q = Query::from_words(&c, &["q", "o"], Operator::And).unwrap();
        let j = RelevanceJudgments::compute(&index, &q, 3);
        for h in j.exact_top_k() {
            assert!(j.is_relevant(h.phrase));
        }
        assert!(j.num_relevant() >= j.exact_top_k().len().min(3));
    }

    #[test]
    fn perfect_interestingness_is_relevant_even_outside_top_k() {
        let (c, index) = setup();
        let q = Query::from_words(&c, &["q", "o"], Operator::Or).unwrap();
        // k = 1 keeps only one top phrase, but several have I == 1.0.
        let j = RelevanceJudgments::compute(&index, &q, 1);
        let subset = materialize_subset(&index, &q);
        let mut count_perfect = 0;
        for (id, _, _) in index.dict.iter() {
            if (index.interestingness(id, &subset) - 1.0).abs() < 1e-12 {
                assert!(j.is_relevant(id), "perfect phrase {id:?} not relevant");
                count_perfect += 1;
            }
        }
        assert!(
            count_perfect > 1,
            "test corpus should have several perfect phrases"
        );
        assert!(j.num_relevant() >= count_perfect);
    }

    #[test]
    fn irrelevant_phrases_marked_false() {
        let (c, index) = setup();
        let q = Query::from_words(&c, &["q", "o"], Operator::And).unwrap();
        let j = RelevanceJudgments::compute(&index, &q, 2);
        // "x y" never co-occurs with the AND subset fully... find a phrase
        // with low interestingness:
        let subset = materialize_subset(&index, &q);
        let low = index
            .dict
            .iter()
            .map(|(id, _, _)| id)
            .filter(|&id| {
                let s = index.interestingness(id, &subset);
                s > 0.0 && s < 0.5
            })
            .find(|id| !j.is_relevant(*id));
        if let Some(id) = low {
            assert!(!j.is_relevant(id));
        }
    }

    #[test]
    fn mark_and_score_pipeline() {
        let (c, index) = setup();
        let q = Query::from_words(&c, &["q", "o"], Operator::And).unwrap();
        let j = RelevanceJudgments::compute(&index, &q, 5);
        // Scoring the exact top-k itself must be perfect.
        let s = j.score(j.exact_top_k().to_vec().as_slice(), 5);
        assert!((s.ndcg - 1.0).abs() < 1e-12);
        assert!((s.mrr - 1.0).abs() < 1e-12);
        // Marks align with membership.
        let marks = j.mark(j.exact_top_k());
        assert!(marks.iter().all(|&m| m));
    }
}
