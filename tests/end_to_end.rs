//! End-to-end integration tests spanning all workspace crates: corpus →
//! mining → indexes → word lists → NRA/SMJ/exact → baselines → metrics.

use interesting_phrases::prelude::*;
use ipm_baselines::{ForwardIndexBaseline, GmBaseline, SimitsisBaseline, TopKBaseline};
use ipm_core::query::Operator as Op;
use ipm_eval::RelevanceJudgments;

fn build_miner() -> PhraseMiner {
    let (corpus, _) = ipm_corpus::synth::generate(&ipm_corpus::synth::tiny());
    PhraseMiner::build(
        &corpus,
        MinerConfig {
            index: ipm_index::corpus_index::IndexConfig {
                mining: ipm_index::mining::MiningConfig {
                    min_df: 3,
                    max_len: 4,
                    min_len: 1,
                },
            },
            ..Default::default()
        },
    )
}

fn queries(miner: &PhraseMiner, op: Op, n: usize) -> Vec<Query> {
    let ws = ipm_eval::harvest_queries(
        miner.index(),
        &ipm_eval::QuerySetConfig {
            count: n,
            seed: 77,
            fixed_lengths: vec![],
            fill_len_range: (2, 3),
            min_and_matches: 1,
        },
    );
    ipm_eval::queryset::to_queries(&ws, op)
}

#[test]
fn full_pipeline_produces_results() {
    let miner = build_miner();
    for op in [Op::And, Op::Or] {
        for q in queries(&miner, op, 5) {
            let exact = miner.top_k_exact(&q, 5);
            assert!(!exact.is_empty(), "exact empty for {:?}", q);
            let nra = miner.top_k_nra(&q, 5);
            assert!(!nra.hits.is_empty());
            let smj = miner.top_k_smj(&q, 5);
            assert!(!smj.is_empty());
        }
    }
}

#[test]
fn nra_and_smj_return_identical_results_on_full_lists() {
    // Paper §5.3: "Since SMJ and NRA differ only in the organization of the
    // lists and the traversal strategy, these give exactly the same results
    // for any query-dataset combination."
    let miner = build_miner();
    for op in [Op::And, Op::Or] {
        for q in queries(&miner, op, 10) {
            let nra = miner.top_k_nra(&q, 5);
            let smj = miner.top_k_smj(&q, 5);
            assert_eq!(
                nra.hits.iter().map(|h| h.phrase).collect::<Vec<_>>(),
                smj.iter().map(|h| h.phrase).collect::<Vec<_>>(),
                "{op} query {:?}",
                q.render(miner.corpus())
            );
            for (a, b) in nra.hits.iter().zip(&smj) {
                assert!((a.score - b.score).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn all_exact_methods_agree() {
    let miner = build_miner();
    let gm = GmBaseline::build(miner.index());
    let fi = ForwardIndexBaseline::new();
    for op in [Op::And, Op::Or] {
        for q in queries(&miner, op, 6) {
            let truth = miner.top_k_exact(&q, 5);
            let gm_hits = gm.top_k(miner.index(), &q, 5);
            let fi_hits = fi.top_k(miner.index(), &q, 5);
            let ids = |hs: &[ipm_core::result::PhraseHit]| {
                hs.iter().map(|h| h.phrase).collect::<Vec<_>>()
            };
            assert_eq!(ids(&truth), ids(&gm_hits));
            assert_eq!(ids(&truth), ids(&fi_hits));
        }
    }
}

#[test]
fn simitsis_returns_true_scores_for_returned_phrases() {
    let miner = build_miner();
    let sim = SimitsisBaseline::build(miner.index());
    for q in queries(&miner, Op::Or, 5) {
        let subset = ipm_core::exact::materialize_subset(miner.index(), &q);
        for h in sim.top_k(miner.index(), &q, 5) {
            let real = ipm_core::exact::exact_interestingness(miner.index(), &subset, h.phrase);
            assert!((h.score - real).abs() < 1e-12);
        }
    }
}

#[test]
fn disk_and_memory_nra_agree_and_account_io() {
    let miner = build_miner();
    let disk = miner.to_disk(1.0);
    for op in [Op::And, Op::Or] {
        for q in queries(&miner, op, 5) {
            let (disk_out, io) = miner.top_k_nra_disk(&disk, &q, 5, 1.0);
            let mem_out = miner.top_k_nra(&q, 5);
            assert_eq!(
                disk_out.hits.iter().map(|h| h.phrase).collect::<Vec<_>>(),
                mem_out.hits.iter().map(|h| h.phrase).collect::<Vec<_>>()
            );
            if !disk_out.hits.is_empty() {
                assert!(io.total_accesses() > 0);
            }
        }
    }
}

#[test]
fn quality_of_full_list_methods_is_high() {
    // With full lists, the only quality loss comes from the independence
    // assumption; the paper reports >90% across measures. On the tiny
    // topical corpus the same should hold approximately.
    let miner = build_miner();
    let mut per_query = Vec::new();
    for q in queries(&miner, Op::Or, 10) {
        let judge = RelevanceJudgments::compute(miner.index(), &q, 5);
        let out = miner.top_k_nra(&q, 5);
        per_query.push(judge.score(&out.hits, 5));
    }
    let mean = ipm_eval::QualityScores::mean(&per_query);
    assert!(mean.ndcg > 0.6, "OR NDCG too low: {mean:?}");
    assert!(mean.mrr > 0.6, "OR MRR too low: {mean:?}");
}

#[test]
fn partial_lists_trade_accuracy_for_reads() {
    let miner = build_miner();
    let qs = queries(&miner, Op::Or, 8);
    let mut reads_20 = 0usize;
    let mut reads_full = 0usize;
    for q in &qs {
        reads_20 += miner
            .top_k_nra_partial(q, 5, 0.2)
            .stats
            .total_entries_read();
        reads_full += miner.top_k_nra(q, 5).stats.total_entries_read();
    }
    assert!(reads_20 <= reads_full);
}

#[test]
fn facet_queries_work_end_to_end() {
    let miner = build_miner();
    let facet_str = {
        let (_, s) = miner
            .corpus()
            .facets()
            .iter()
            .next()
            .expect("tiny corpus has facets");
        s.to_owned()
    };
    let q = miner.parse_query(&[facet_str.as_str()], Op::And).unwrap();
    let exact = miner.top_k_exact(&q, 5);
    let nra = miner.top_k_nra(&q, 5);
    assert!(!exact.is_empty());
    assert!(!nra.hits.is_empty());
    // Single-feature queries need no independence assumption: results match.
    assert_eq!(
        exact.iter().map(|h| h.phrase).collect::<Vec<_>>(),
        nra.hits.iter().map(|h| h.phrase).collect::<Vec<_>>()
    );
}

#[test]
fn single_word_query_nra_equals_exact() {
    // For r = 1 the independence assumption is vacuous: S(p, Q) = P(q|p) =
    // I(p, D') exactly, so the approximate and exact rankings coincide.
    let miner = build_miner();
    let top = ipm_corpus::stats::top_words_by_df(miner.corpus(), 3);
    for &(w, _) in &top {
        let term = miner.corpus().words().term_unchecked(w).to_owned();
        let q = miner.parse_query(&[term.as_str()], Op::Or).unwrap();
        let exact = miner.top_k_exact(&q, 5);
        let nra = miner.top_k_nra(&q, 5);
        assert_eq!(
            exact.iter().map(|h| h.phrase).collect::<Vec<_>>(),
            nra.hits.iter().map(|h| h.phrase).collect::<Vec<_>>()
        );
        for (e, n) in exact.iter().zip(&nra.hits) {
            assert!((e.score - n.score).abs() < 1e-9);
        }
    }
}

#[test]
fn prelude_covers_the_serving_surface() {
    // Everything a downstream server needs must come in through the
    // prelude: engine, options, measures, redundancy config.
    let miner = build_miner();
    let engine = QueryEngine::new(miner);
    let top = ipm_corpus::stats::top_words_by_df(engine.miner().corpus(), 2);
    let q = top
        .iter()
        .map(|&(w, _)| engine.miner().corpus().words().term(w).unwrap().to_owned())
        .collect::<Vec<_>>()
        .join(" OR ");

    // Engine search with the §5.6 filter through prelude types only.
    let resp = engine
        .search_with(
            &q,
            5,
            &SearchOptions {
                algorithm: Algorithm::Smj,
                redundancy: Some(RedundancyConfig::default()),
                ..Default::default()
            },
        )
        .unwrap();
    assert!(resp.hits.len() <= 5);

    // Alternative measures through the prelude.
    let parsed = engine.miner().parse_query_str(&q).unwrap();
    let pmi = engine.miner().top_k_exact_measure(&parsed, 5, Measure::Pmi);
    let i = engine.miner().top_k_exact(&parsed, 5);
    assert_eq!(
        pmi.iter().map(|h| h.phrase).collect::<Vec<_>>(),
        i.iter().map(|h| h.phrase).collect::<Vec<_>>(),
        "PMI must be rank-equivalent to Eq. 1"
    );
}

#[test]
fn engine_exact_and_approximate_agree_on_saturated_corpus() {
    let miner = build_miner();
    let engine = QueryEngine::new(miner);
    let top = ipm_corpus::stats::top_words_by_df(engine.miner().corpus(), 2);
    let q = top
        .iter()
        .map(|&(w, _)| engine.miner().corpus().words().term(w).unwrap().to_owned())
        .collect::<Vec<_>>()
        .join(" AND ");
    let nra = engine.search(&q, 5).unwrap();
    let exact = engine
        .search_with(
            &q,
            5,
            &SearchOptions {
                algorithm: Algorithm::Exact,
                ..Default::default()
            },
        )
        .unwrap();
    // Estimated interestingness of approximate results must be within the
    // paper's observed error band of the exact scores at the same rank.
    for (a, e) in nra.hits.iter().zip(&exact.hits) {
        assert!(
            (a.interestingness - e.hit.score).abs() < 0.25,
            "rank mismatch: {} vs {}",
            a.interestingness,
            e.hit.score
        );
    }
}
