//! Model: the engine's `LiveState` epoch/generation/delta swap.
//!
//! `QueryEngine` keeps its serving head as one `RwLock<LiveState>` holding
//! `(epoch, Arc<IndexState>, delta)`. Queries clone the whole head under
//! one read lock; mutators bump/swap all three fields under one write
//! lock. The invariants that makes this sound:
//!
//! 1. **Epoch monotonicity** — every published head carries an epoch
//!    strictly greater than the previous published head's whenever the
//!    index observably changed (ingest, delete, compaction swap).
//! 2. **No torn triple** — a query's snapshot `(epoch, generation,
//!    delta)` is always one that a mutator actually published; never a new
//!    epoch paired with an old generation or vice versa.
//!
//! The model's mutator publishes heads exactly like the engine: ingest
//! bumps `epoch` and grows `delta`; compaction swaps `generation` up,
//!    resets `delta` and bumps `epoch` — each as **one atomic step**,
//! mirroring the write-lock critical section. Readers snapshot the head
//! in one step, mirroring the read-lock clone. The negative variant
//! splits the reader's snapshot into two steps (epoch first, then
//! generation + delta) — the bug the `RwLock` exists to prevent — and the
//! explorer must find the torn schedule.

use crate::sched::{Spec, Step, ThreadSpec};

/// One published serving head.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Head {
    /// Monotonic mutation counter (`LiveState::epoch`).
    pub epoch: u64,
    /// Which immutable index generation serves (`Arc<IndexState>`
    /// identity).
    pub generation: u64,
    /// Logged-but-uncompacted documents (`DeltaOverlay` size).
    pub delta: u64,
}

/// Shared state: the live head, the full publication history, and the
/// readers' (possibly torn) snapshots.
#[derive(Debug, Clone)]
pub struct State {
    /// The serving head (what the `RwLock` protects).
    pub head: Head,
    /// Every head ever published, in order — the set of valid snapshots.
    pub published: Vec<Head>,
    /// Per-reader snapshot buffer (`None` until that reader ran).
    pub snapshots: Vec<Option<Head>>,
    /// Scratch for the torn-reader variant: epoch read in step one.
    pub torn_epoch: Vec<u64>,
}

impl State {
    fn new(readers: usize) -> Self {
        let head = Head {
            epoch: 0,
            generation: 0,
            delta: 0,
        };
        Self {
            head,
            published: vec![head],
            snapshots: vec![None; readers],
            torn_epoch: vec![0; readers],
        }
    }
}

fn ingest(s: &mut State, _tid: usize) {
    // One write-lock critical section: all fields move together.
    s.head.epoch += 1;
    s.head.delta += 1;
    s.published.push(s.head);
}

fn compact(s: &mut State, _tid: usize) {
    // The O(1) swap: new generation in, delta flushed, epoch bumped.
    s.head.generation += 1;
    s.head.delta = 0;
    s.head.epoch += 1;
    s.published.push(s.head);
}

fn snapshot(s: &mut State, tid: usize) {
    // One read-lock clone of the whole head.
    s.snapshots[tid - 1] = Some(s.head);
}

fn torn_read_epoch(s: &mut State, tid: usize) {
    s.torn_epoch[tid - 1] = s.head.epoch;
}

fn torn_read_rest(s: &mut State, tid: usize) {
    // Pairs the epoch read earlier with the *current* generation/delta —
    // exactly what dropping the read lock between field reads would do.
    s.snapshots[tid - 1] = Some(Head {
        epoch: s.torn_epoch[tid - 1],
        generation: s.head.generation,
        delta: s.head.delta,
    });
}

/// The mutator's step list: `ingests` ingest steps, then a compaction,
/// then one more ingest (so the post-swap epoch keeps moving).
fn mutator_thread(ingests: usize) -> ThreadSpec<State> {
    let mut steps: Vec<Step<State>> = (0..ingests).map(|_| Step::new("ingest", ingest)).collect();
    steps.push(Step::new("compact", compact));
    steps.push(Step::new("ingest", ingest));
    ThreadSpec::new("mutator", steps)
}

/// The real protocol: one atomic snapshot per reader thread, racing the
/// mutator's ingest/compact/ingest sequence.
pub fn spec(ingests: usize, readers: usize) -> Spec<State> {
    let mut threads = vec![mutator_thread(ingests)];
    for _ in 0..readers {
        threads.push(ThreadSpec::new(
            "reader",
            vec![Step::new("snapshot", snapshot)],
        ));
    }
    Spec::new(threads)
}

/// The seeded-bug variant: readers read the epoch and the rest of the
/// head in two separate steps.
pub fn torn_spec(ingests: usize, readers: usize) -> Spec<State> {
    let mut threads = vec![mutator_thread(ingests)];
    for _ in 0..readers {
        threads.push(ThreadSpec::new(
            "torn-reader",
            vec![
                Step::new("read-epoch", torn_read_epoch),
                Step::new("read-rest", torn_read_rest),
            ],
        ));
    }
    Spec::new(threads)
}

/// Fresh state for `spec(_, readers)`.
pub fn init(readers: usize) -> State {
    State::new(readers)
}

/// Both invariants, checked after every step: published epochs strictly
/// increase, and every completed snapshot is a published triple.
pub fn invariant(s: &State) -> Result<(), String> {
    for w in s.published.windows(2) {
        if w[1].epoch <= w[0].epoch {
            return Err(format!(
                "epoch not monotonic: {} then {}",
                w[0].epoch, w[1].epoch
            ));
        }
    }
    for (i, snap) in s.snapshots.iter().enumerate() {
        if let Some(h) = snap {
            if !s.published.contains(h) {
                return Err(format!(
                    "reader {i} observed torn head {h:?}; published: {:?}",
                    s.published
                ));
            }
        }
    }
    Ok(())
}

/// End-of-schedule check: every reader got some snapshot.
pub fn final_check(s: &State) -> Result<(), String> {
    if s.snapshots.iter().all(Option::is_some) {
        Ok(())
    } else {
        Err("a reader never completed".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{interleavings, Explorer, FailureKind};

    #[test]
    fn atomic_snapshots_hold_under_every_schedule() {
        let (ingests, readers) = (2, 2);
        let report = Explorer::new()
            .explore(
                &spec(ingests, readers),
                || init(readers),
                invariant,
                final_check,
            )
            .unwrap_or_else(|f| panic!("{f}"));
        // 4 mutator steps interleaved with two 1-step readers.
        assert_eq!(report.schedules, interleavings(&[ingests + 2, 1, 1]));
    }

    #[test]
    fn deeper_mutator_history_still_holds() {
        let (ingests, readers) = (4, 3);
        let report = Explorer::new()
            .explore(
                &spec(ingests, readers),
                || init(readers),
                invariant,
                final_check,
            )
            .unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(report.schedules, interleavings(&[ingests + 2, 1, 1, 1]));
    }

    #[test]
    fn torn_reader_is_caught_and_replays() {
        let failure = Explorer::new()
            .explore(&torn_spec(2, 1), || init(1), invariant, final_check)
            .expect_err("a two-step snapshot must tear under some schedule");
        assert_eq!(failure.kind, FailureKind::Invariant);
        assert!(failure.message.contains("torn head"), "{}", failure.message);
        // The printed schedule replays to the same violation.
        let replayed = Explorer::new()
            .replay_str(
                &torn_spec(2, 1),
                || init(1),
                invariant,
                final_check,
                &failure.schedule_str(),
            )
            .expect_err("replay must reproduce the tear");
        assert_eq!(replayed.message, failure.message);
    }
}
