//! Result types for top-k phrase retrieval.

use ipm_corpus::PhraseId;
use serde::{Deserialize, Serialize};

/// One result phrase with its score (and, for NRA, its final bounds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhraseHit {
    /// The phrase.
    pub phrase: PhraseId,
    /// The aggregated score: `Σ P(qi|p)` for OR, `Σ log P(qi|p)` for AND
    /// (paper Eqs. 8/12). For the exact scorer this is the interestingness
    /// `I(p, D')` itself (Eq. 1).
    pub score: f64,
    /// Lower bound at termination (equals `score` when fully resolved).
    pub lower: f64,
    /// Upper bound at termination (equals `score` when fully resolved).
    pub upper: f64,
}

impl PhraseHit {
    /// A hit whose score is exact (bounds collapsed).
    pub fn exact(phrase: PhraseId, score: f64) -> Self {
        Self {
            phrase,
            score,
            lower: score,
            upper: score,
        }
    }

    /// Whether the bounds have collapsed onto the score.
    pub fn is_resolved(&self) -> bool {
        self.lower == self.upper
    }
}

/// Orders hits the way result lists are presented: score descending, ties
/// by ascending phrase id (deterministic output; the paper's lists use the
/// same id tie-break).
pub fn sort_hits(hits: &mut [PhraseHit]) {
    hits.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.phrase.cmp(&b.phrase))
    });
}

/// Keeps the top-`k` hits of `hits` (by the [`sort_hits`] order), dropping
/// the rest.
pub fn truncate_top_k(hits: &mut Vec<PhraseHit>, k: usize) {
    sort_hits(hits);
    hits.truncate(k);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(id: u32, score: f64) -> PhraseHit {
        PhraseHit::exact(PhraseId(id), score)
    }

    #[test]
    fn exact_hit_is_resolved() {
        let h = hit(3, 0.5);
        assert!(h.is_resolved());
        assert_eq!(h.lower, 0.5);
        assert_eq!(h.upper, 0.5);
    }

    #[test]
    fn sort_by_score_desc_then_id_asc() {
        let mut hs = vec![hit(5, 0.3), hit(1, 0.9), hit(2, 0.3), hit(9, 0.5)];
        sort_hits(&mut hs);
        let order: Vec<u32> = hs.iter().map(|h| h.phrase.raw()).collect();
        assert_eq!(order, vec![1, 9, 2, 5]);
    }

    #[test]
    fn truncate_keeps_best_k() {
        let mut hs = vec![hit(1, 0.1), hit(2, 0.8), hit(3, 0.5)];
        truncate_top_k(&mut hs, 2);
        assert_eq!(hs.len(), 2);
        assert_eq!(hs[0].phrase, PhraseId(2));
        assert_eq!(hs[1].phrase, PhraseId(3));
    }

    #[test]
    fn sort_tolerates_neg_infinity() {
        let mut hs = vec![hit(1, f64::NEG_INFINITY), hit(2, -1.0)];
        sort_hits(&mut hs);
        assert_eq!(hs[0].phrase, PhraseId(2));
    }

    #[test]
    fn truncate_with_k_larger_than_len() {
        let mut hs = vec![hit(1, 0.1)];
        truncate_top_k(&mut hs, 10);
        assert_eq!(hs.len(), 1);
    }
}
