//! Model: the sticky budget trip racing cancellation.
//!
//! `ipm_core::Budget` is shared by every shard worker of one query; a
//! `CancelToken` flips a flag from an unrelated thread. Each worker's
//! `check()` runs tripped? → cancelled? → io-exhausted?, and `trip()` is
//! a SeqCst compare-and-swap from `TRIP_NONE`, so the **first** cause to
//! land wins and every later observer reports that same cause. The
//! invariant:
//!
//! 2. **A tripped budget never un-trips** — the trip cell is written at
//!    most once per query; once any worker stops with cause `c`, every
//!    worker stops with cause `c`, and a result produced by a stopped
//!    query is never cached (the engine caches `Complete` results only,
//!    see `engine.rs`).
//!
//! The model races two shard workers (shared io meter, shared trip cell)
//! against one canceller flipping the token, exactly the shapes
//! `ShardBudget` fans out. Depending on the schedule the winning cause is
//! `Cancelled` or `IoExhausted` — both are reachable and the tests assert
//! so — but within one schedule there is exactly one. Two seeded bugs:
//! a `trip()` that plain-stores instead of CASing (a later cause
//! overwrites the first — the "un-trip"), and a finish path that caches
//! stopped results.

use crate::sched::{Spec, Step, ThreadSpec};

/// Why the budget stopped the query (`SearchError` causes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cause {
    /// The `CancelToken` flag was observed.
    Cancelled,
    /// The shared io meter crossed its cap.
    IoExhausted,
}

/// How one worker's slice of the query ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Ran every step without the budget stopping it.
    Complete,
    /// Stopped by the budget with the (shared, first-to-land) cause.
    Stopped(Cause),
}

/// Shared state: the budget cell, the token, and per-worker progress.
#[derive(Debug, Clone)]
pub struct State {
    /// The trip cell (`Budget::tripped`, 0 = `TRIP_NONE`).
    pub trip: Option<Cause>,
    /// Every write to the trip cell, in order — the stickiness witness.
    pub trip_writes: Vec<Cause>,
    /// The `CancelToken` flag.
    pub cancelled: bool,
    /// Shared io meter (`Budget::io_used`).
    pub io_used: u64,
    /// Io cap; crossing it trips `IoExhausted`.
    pub io_limit: u64,
    /// Per-worker outcome (`None` while still running).
    pub outcome: Vec<Option<Outcome>>,
    /// Per-worker count of outcome writes — each must settle exactly once.
    pub outcome_writes: Vec<u64>,
    /// Per-worker: did the finish path cache this worker's result?
    pub cached: Vec<bool>,
    /// Per-worker cause this worker intends to trip with (decided in the
    /// probe step, committed by CAS in the next — the real `check()` is
    /// not atomic: the flag read and the CAS are separate instructions).
    pub intent: Vec<Option<Cause>>,
    /// Seeded bug switches.
    trip_overwrites: bool,
    cache_stopped: bool,
}

impl State {
    fn new(workers: usize, io_limit: u64) -> Self {
        Self {
            trip: None,
            trip_writes: Vec::new(),
            cancelled: false,
            io_used: 0,
            io_limit,
            outcome: vec![None; workers],
            outcome_writes: vec![0; workers],
            cached: vec![false; workers],
            intent: vec![None; workers],
            trip_overwrites: false,
            cache_stopped: false,
        }
    }
}

/// `Budget::trip`: CAS from empty, first cause wins, winner returned.
fn trip(s: &mut State, cause: Cause) -> Cause {
    if s.trip_overwrites {
        // Seeded bug: a plain store — the latest cause clobbers the
        // first, so an already-stopped query changes its mind.
        s.trip = Some(cause);
        s.trip_writes.push(cause);
        return cause;
    }
    match s.trip {
        Some(winner) => winner,
        None => {
            s.trip = Some(cause);
            s.trip_writes.push(cause);
            cause
        }
    }
}

fn set_outcome(s: &mut State, tid: usize, outcome: Outcome) {
    s.outcome[tid - 1] = Some(outcome);
    s.outcome_writes[tid - 1] += 1;
}

/// One unit of work followed by the read half of `Budget::check()`, in
/// the real order: already-tripped (one atomic read, reported as-is),
/// then the cancel flag, then the io meter. The latter two only *decide*
/// a cause here; the CAS that commits it is the next step, so two
/// workers can race distinct causes exactly as two real threads can.
fn probe(s: &mut State, tid: usize) {
    if s.outcome[tid - 1].is_some() {
        return; // this worker already stopped
    }
    s.io_used += 1;
    if let Some(cause) = s.trip {
        set_outcome(s, tid, Outcome::Stopped(cause));
    } else if s.cancelled {
        s.intent[tid - 1] = Some(Cause::Cancelled);
    } else if s.io_used > s.io_limit {
        s.intent[tid - 1] = Some(Cause::IoExhausted);
    }
}

/// The commit half: CAS the decided cause into the trip cell and stop
/// with whatever cause actually won the race.
fn commit(s: &mut State, tid: usize) {
    if s.outcome[tid - 1].is_some() {
        return;
    }
    if let Some(cause) = s.intent[tid - 1].take() {
        let winner = trip(s, cause);
        set_outcome(s, tid, Outcome::Stopped(winner));
    }
}

/// End of the worker: a still-running worker completes; the engine then
/// caches only `Complete` results (`Truncated`/`Cancelled` are never
/// inserted — `engine.rs` drops them before the cache).
fn finish(s: &mut State, tid: usize) {
    if s.outcome[tid - 1].is_none() {
        set_outcome(s, tid, Outcome::Complete);
    }
    let complete = s.outcome[tid - 1] == Some(Outcome::Complete);
    if complete || s.cache_stopped {
        s.cached[tid - 1] = true;
    }
}

fn cancel(s: &mut State, _tid: usize) {
    s.cancelled = true;
}

/// One canceller (thread 0) racing `workers` shard workers of
/// `steps` work units each over a shared `io_limit`-capped budget.
pub fn spec(workers: usize, steps: usize) -> Spec<State> {
    let mut threads = vec![ThreadSpec::new(
        "canceller",
        vec![Step::new("cancel", cancel)],
    )];
    for _ in 0..workers {
        let mut list: Vec<Step<State>> = Vec::with_capacity(steps * 2 + 1);
        for _ in 0..steps {
            list.push(Step::new("probe", probe));
            list.push(Step::new("commit", commit));
        }
        list.push(Step::new("finish", finish));
        threads.push(ThreadSpec::new("worker", list));
    }
    Spec::new(threads)
}

/// Fresh state: `io_limit` below `workers * steps` keeps `IoExhausted`
/// reachable on cancel-late schedules.
pub fn init(workers: usize, io_limit: u64) -> State {
    State::new(workers, io_limit)
}

/// Seeded bug: `trip()` overwrites instead of CASing.
pub fn overwrite_trip_init(workers: usize, io_limit: u64) -> State {
    let mut s = State::new(workers, io_limit);
    s.trip_overwrites = true;
    s
}

/// Seeded bug: the finish path caches stopped results too.
pub fn cache_stopped_init(workers: usize, io_limit: u64) -> State {
    let mut s = State::new(workers, io_limit);
    s.cache_stopped = true;
    s
}

/// Invariant 2, checked after every step: one trip write ever, the cell
/// still holds it, every stopped worker reports it, outcomes settle once,
/// and nothing stopped is cached.
pub fn invariant(s: &State) -> Result<(), String> {
    if s.trip_writes.len() > 1 {
        return Err(format!(
            "trip cell written {} times ({:?}) — a tripped budget changed its cause",
            s.trip_writes.len(),
            s.trip_writes
        ));
    }
    if let Some(first) = s.trip_writes.first() {
        if s.trip != Some(*first) {
            return Err(format!(
                "trip cell holds {:?} but the first write was {first:?}",
                s.trip
            ));
        }
    }
    for (i, o) in s.outcome.iter().enumerate() {
        if let Some(Outcome::Stopped(c)) = o {
            if s.trip != Some(*c) {
                return Err(format!(
                    "worker {i} stopped with {c:?} but the trip cell says {:?}",
                    s.trip
                ));
            }
        }
        if s.outcome_writes[i] > 1 {
            return Err(format!(
                "worker {i} outcome settled {} times",
                s.outcome_writes[i]
            ));
        }
        if s.cached[i] && *o != Some(Outcome::Complete) {
            return Err(format!("worker {i} cached a stopped result {o:?}"));
        }
    }
    Ok(())
}

/// End-of-schedule check: every worker settled, and if any stopped the
/// trip cell names the (single) cause they all agree on.
pub fn final_check(s: &State) -> Result<(), String> {
    for (i, o) in s.outcome.iter().enumerate() {
        match o {
            None => return Err(format!("worker {i} never settled")),
            Some(Outcome::Stopped(_)) if s.trip.is_none() => {
                return Err(format!("worker {i} stopped but no cause was tripped"))
            }
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{interleavings, Explorer, FailureKind};
    use std::cell::Cell;

    const WORKERS: usize = 2;
    const STEPS: usize = 3;
    // 2 workers x 3 work units = 6 io max; a cap of 4 makes IoExhausted
    // reachable whenever the canceller arrives late.
    const IO_LIMIT: u64 = 4;

    #[test]
    fn one_sticky_cause_under_every_schedule_and_both_causes_reachable() {
        let saw_cancel = Cell::new(false);
        let saw_io = Cell::new(false);
        let saw_complete = Cell::new(false);
        let report = Explorer::new()
            .explore(
                &spec(WORKERS, STEPS),
                || init(WORKERS, IO_LIMIT),
                invariant,
                |s| {
                    match s.trip {
                        Some(Cause::Cancelled) => saw_cancel.set(true),
                        Some(Cause::IoExhausted) => saw_io.set(true),
                        None => saw_complete.set(true),
                    }
                    final_check(s)
                },
            )
            .unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(
            report.schedules,
            interleavings(&[1, STEPS * 2 + 1, STEPS * 2 + 1]),
            "no schedule was pruned: the spec is guard-free"
        );
        assert!(saw_cancel.get(), "some schedule must be won by the cancel");
        assert!(saw_io.get(), "some schedule must exhaust io first");
        // With io_limit < workers*steps every full run trips; completion
        // requires a cap at or above the total work.
        assert!(!saw_complete.get(), "io cap below total work always trips");
    }

    #[test]
    fn generous_budget_completes_and_caches() {
        let saw_cached = Cell::new(false);
        Explorer::new()
            .explore(
                &spec(WORKERS, 1),
                || init(WORKERS, 100),
                invariant,
                |s| {
                    if s.cached.iter().all(|&c| c) {
                        saw_cached.set(true);
                    }
                    final_check(s)
                },
            )
            .unwrap_or_else(|f| panic!("{f}"));
        // The cancel can still land first, but cancel-last schedules run
        // to completion and cache.
        assert!(saw_cached.get(), "cancel-last schedules must cache");
    }

    #[test]
    fn overwriting_trip_is_caught_and_replays() {
        let failure = Explorer::new()
            .explore(
                &spec(WORKERS, STEPS),
                || overwrite_trip_init(WORKERS, IO_LIMIT),
                invariant,
                final_check,
            )
            .expect_err("a last-cause-wins trip must change its mind somewhere");
        assert_eq!(failure.kind, FailureKind::Invariant);
        assert!(
            failure.message.contains("changed its cause"),
            "{}",
            failure.message
        );
        let replayed = Explorer::new()
            .replay_str(
                &spec(WORKERS, STEPS),
                || overwrite_trip_init(WORKERS, IO_LIMIT),
                invariant,
                final_check,
                &failure.schedule_str(),
            )
            .expect_err("replay reproduces the double trip");
        assert_eq!(replayed.message, failure.message);
    }

    #[test]
    fn caching_a_stopped_result_is_caught() {
        let failure = Explorer::new()
            .explore(
                &spec(WORKERS, STEPS),
                || cache_stopped_init(WORKERS, IO_LIMIT),
                invariant,
                final_check,
            )
            .expect_err("caching truncated/cancelled results must be flagged");
        assert_eq!(failure.kind, FailureKind::Invariant);
        assert!(
            failure.message.contains("cached a stopped result"),
            "{}",
            failure.message
        );
    }
}
