//! The simulated IO cost model and its accounting.
//!
//! The paper (§5.5): "each sequential access and random access is accounted
//! for by adding 1ms and 10ms respectively, to the disk IO time. These disk
//! IO costs are in line with reported numbers for Windows and Linux."

use std::time::Duration;

/// Per-access costs of the simulated disk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of fetching the page that directly follows the previously
    /// fetched page.
    pub sequential_ms: f64,
    /// Cost of fetching any other page.
    pub random_ms: f64,
}

impl Default for CostModel {
    /// The paper's constants: 1 ms sequential, 10 ms random.
    fn default() -> Self {
        Self {
            sequential_ms: 1.0,
            random_ms: 10.0,
        }
    }
}

/// Counters of simulated disk activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Page requests satisfied from the buffer pool.
    pub cache_hits: u64,
    /// Pages fetched sequentially (previous fetched page + 1), including
    /// lookahead prefetches.
    pub sequential_fetches: u64,
    /// Pages fetched at random positions.
    pub random_fetches: u64,
}

impl IoStats {
    /// Total pages fetched from the simulated disk.
    pub fn total_fetches(&self) -> u64 {
        self.sequential_fetches + self.random_fetches
    }

    /// Total page requests (hits + fetches).
    pub fn total_accesses(&self) -> u64 {
        self.cache_hits + self.total_fetches()
    }

    /// Adds another query's counters into this one (for aggregate
    /// accounting across many served queries).
    pub fn accumulate(&mut self, other: &IoStats) {
        self.cache_hits += other.cache_hits;
        self.sequential_fetches += other.sequential_fetches;
        self.random_fetches += other.random_fetches;
    }

    /// Simulated IO time under `model`.
    pub fn io_ms(&self, model: &CostModel) -> f64 {
        self.sequential_fetches as f64 * model.sequential_ms
            + self.random_fetches as f64 * model.random_ms
    }

    /// Simulated IO time as a [`Duration`].
    pub fn io_time(&self, model: &CostModel) -> Duration {
        Duration::from_secs_f64(self.io_ms(model) / 1000.0)
    }

    /// Cache hit rate in `[0, 1]`; 0 when nothing was accessed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.total_accesses();
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Difference of two snapshots (`self` must be the later one).
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            cache_hits: self.cache_hits - earlier.cache_hits,
            sequential_fetches: self.sequential_fetches - earlier.sequential_fetches,
            random_fetches: self.random_fetches - earlier.random_fetches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_constants() {
        let m = CostModel::default();
        assert_eq!(m.sequential_ms, 1.0);
        assert_eq!(m.random_ms, 10.0);
    }

    #[test]
    fn io_ms_weights_access_kinds() {
        let s = IoStats {
            cache_hits: 100,
            sequential_fetches: 5,
            random_fetches: 3,
        };
        let m = CostModel::default();
        assert_eq!(s.io_ms(&m), 5.0 + 30.0);
        assert_eq!(s.io_time(&m), Duration::from_millis(35));
        assert_eq!(s.total_fetches(), 8);
        assert_eq!(s.total_accesses(), 108);
    }

    #[test]
    fn hit_rate() {
        let s = IoStats {
            cache_hits: 3,
            sequential_fetches: 1,
            random_fetches: 0,
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(IoStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn since_subtracts() {
        let early = IoStats {
            cache_hits: 1,
            sequential_fetches: 2,
            random_fetches: 3,
        };
        let late = IoStats {
            cache_hits: 10,
            sequential_fetches: 20,
            random_fetches: 30,
        };
        let d = late.since(&early);
        assert_eq!(
            d,
            IoStats {
                cache_hits: 9,
                sequential_fetches: 18,
                random_fetches: 27
            }
        );
    }

    #[test]
    fn custom_model() {
        let m = CostModel {
            sequential_ms: 0.5,
            random_ms: 4.0,
        };
        let s = IoStats {
            cache_hits: 0,
            sequential_fetches: 2,
            random_fetches: 2,
        };
        assert_eq!(s.io_ms(&m), 9.0);
    }
}
