//! Criterion benchmark of the `ipm_server` serving subsystem: closed-loop
//! throughput over loopback TCP at 1, 4 and 16 concurrent clients, on the
//! memory and the simulated-disk backend.
//!
//! Closed loop: every client thread keeps exactly one request in flight,
//! so an iteration's wall-clock time measures the full serve path —
//! socket, protocol parse, single-flight, queue, worker execution (or
//! result-cache hit), response encode — under real concurrency.
//!
//! After the criterion groups, a sampling phase feeds every request's
//! wall time into an `ipm_obs::Histogram` and writes the p50/p95/p99
//! table to `BENCH_serving.json` at the repo root (schema in
//! `ipm_bench::servingbench`, validated before the write).
//! `IPM_SERVINGBENCH_REQUESTS` overrides the per-client request count.

use criterion::{criterion_group, BenchmarkId, Criterion};
use ipm_bench::servingbench::{self, ServingRow};
use ipm_core::{BackendChoice, MinerConfig, PhraseMiner, QueryEngine};
use ipm_obs::Histogram;
use ipm_server::{wire, Client, SearchRequest, Server, ServerConfig};
use std::time::Instant;

const REQUESTS_PER_CLIENT_PER_ITER: usize = 10;
const ARTIFACT_WORKERS: usize = 8;
const ARTIFACT_QUEUE_DEPTH: usize = 256;
const ARTIFACT_K: usize = 5;

fn server_and_queries() -> (ipm_server::ServerHandle, Vec<String>) {
    let (corpus, _) = ipm_corpus::synth::generate(&ipm_corpus::synth::tiny());
    let engine = QueryEngine::new(PhraseMiner::build(&corpus, MinerConfig::default()));
    let top = ipm_corpus::stats::top_words_by_df(engine.miner().corpus(), 6);
    let terms: Vec<String> = top
        .iter()
        .map(|&(w, _)| corpus.words().term(w).unwrap().to_owned())
        .collect();
    let queries = (0..terms.len() - 1)
        .flat_map(|i| {
            [
                format!("{} AND {}", terms[i], terms[i + 1]),
                format!("{} OR {}", terms[i], terms[i + 1]),
            ]
        })
        .collect();
    let handle = Server::spawn(
        engine,
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: ARTIFACT_WORKERS,
            queue_depth: ARTIFACT_QUEUE_DEPTH,
            fault_delay_ms: 0,
        },
    )
    .expect("bind loopback");
    (handle, queries)
}

fn bench_closed_loop_throughput(c: &mut Criterion) {
    let (handle, queries) = server_and_queries();
    let addr = handle.addr().to_string();
    let mut group = c.benchmark_group("serving/closed_loop");
    group.sample_size(20);
    for backend in [BackendChoice::Memory, BackendChoice::Disk] {
        for clients in [1usize, 4, 16] {
            // Persistent connections, reused across iterations.
            let mut connections: Vec<Client> = (0..clients)
                .map(|_| Client::connect(&addr).expect("connect"))
                .collect();
            group.bench_with_input(
                BenchmarkId::new(format!("{backend:?}"), clients),
                &clients,
                |b, _| {
                    b.iter(|| {
                        std::thread::scope(|s| {
                            for (cid, client) in connections.iter_mut().enumerate() {
                                let queries = &queries;
                                s.spawn(move || {
                                    for r in 0..REQUESTS_PER_CLIENT_PER_ITER {
                                        let q = &queries[(cid + r) % queries.len()];
                                        let mut req = SearchRequest::new(q.clone());
                                        req.k = 5;
                                        req.backend = backend;
                                        let resp = client.search(&req).expect("roundtrip");
                                        assert_eq!(resp["ok"].as_bool(), Some(true));
                                    }
                                });
                            }
                        });
                    })
                },
            );
        }
    }
    group.finish();
    let stats = handle.stats();
    println!(
        "serving totals: served={} coalesced={} shed={} cache_hit_rate={:.0}% disk_fetches={}",
        stats.served,
        stats.coalesced,
        stats.shed,
        stats.cache.hit_rate() * 100.0,
        stats.disk_io.total_fetches(),
    );
}

fn artifact_requests_per_client() -> usize {
    std::env::var("IPM_SERVINGBENCH_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(100)
}

/// One artifact cell: `clients` closed-loop threads, each request's wall
/// time observed into one shared latency histogram — the same log-scale
/// buckets the engine's `ipm_query_latency_seconds` uses, so the
/// artifact's percentiles and a live scrape's are directly comparable.
fn measure_cell(
    addr: &str,
    backend: BackendChoice,
    clients: usize,
    queries: &[String],
) -> ServingRow {
    let requests = artifact_requests_per_client();
    let histogram = Histogram::new();
    std::thread::scope(|s| {
        for cid in 0..clients {
            let histogram = histogram.clone();
            let mut client = Client::connect(addr).expect("connect");
            s.spawn(move || {
                for r in 0..requests {
                    let q = &queries[(cid + r) % queries.len()];
                    let mut req = SearchRequest::new(q.clone());
                    req.k = ARTIFACT_K;
                    req.backend = backend;
                    let started = Instant::now();
                    let resp = client.search(&req).expect("roundtrip");
                    histogram.observe(started.elapsed());
                    assert_eq!(resp["ok"].as_bool(), Some(true));
                }
            });
        }
    });
    ServingRow::from_snapshot(wire::backend_name(backend), clients, &histogram.snapshot())
}

/// Samples the latency table and writes `BENCH_serving.json`.
fn write_artifact() {
    let (handle, queries) = server_and_queries();
    let addr = handle.addr().to_string();
    let mut rows = Vec::new();
    for backend in [
        BackendChoice::Memory,
        BackendChoice::Disk,
        BackendChoice::Block,
    ] {
        for clients in [1usize, 4] {
            let row = measure_cell(&addr, backend, clients, &queries);
            println!(
                "{:<6} x{:<2} clients  p50 {:>9.1} us  p95 {:>9.1} us  p99 {:>9.1} us  ({} samples)",
                row.backend, row.clients, row.p50_us, row.p95_us, row.p99_us, row.samples
            );
            rows.push(row);
        }
    }
    let doc = servingbench::report(
        "synth-tiny",
        ARTIFACT_K,
        ARTIFACT_WORKERS,
        ARTIFACT_QUEUE_DEPTH,
        &rows,
    );
    servingbench::validate(&doc).expect("generated artifact must match its own schema");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serving.json");
    let json = serde_json::to_string_pretty(&doc).expect("serialize artifact");
    std::fs::write(&path, json + "\n").expect("write BENCH_serving.json");
    println!("wrote {}", path.display());
}

criterion_group!(benches, bench_closed_loop_throughput);

fn main() {
    benches();
    write_artifact();
}
