//! Cross-algorithm consistency on harvested queries: TA, NRA, SMJ and the
//! exact scorer must relate exactly as the theory says — and every
//! algorithm must return the same answers whether it runs over the
//! in-memory backend or the simulated-disk backend, and whether it runs
//! unsharded or fanned out across phrase-id shards.

use interesting_phrases::prelude::*;
use ipm_core::query::Operator as Op;
use proptest::prelude::*;

fn miner() -> PhraseMiner {
    let (corpus, _) = ipm_corpus::synth::generate(&ipm_corpus::synth::tiny());
    PhraseMiner::build(
        &corpus,
        MinerConfig {
            index: ipm_index::corpus_index::IndexConfig {
                mining: ipm_index::mining::MiningConfig {
                    min_df: 3,
                    max_len: 4,
                    min_len: 1,
                },
            },
            ..Default::default()
        },
    )
}

fn queries(m: &PhraseMiner, op: Op) -> Vec<Query> {
    let ws = ipm_eval::harvest_queries(
        m.index(),
        &ipm_eval::QuerySetConfig {
            count: 10,
            seed: 123,
            fixed_lengths: vec![],
            fill_len_range: (2, 3),
            min_and_matches: 1,
        },
    );
    ipm_eval::queryset::to_queries(&ws, op)
}

#[test]
fn ta_equals_smj_on_all_queries() {
    let m = miner();
    for op in [Op::And, Op::Or] {
        for q in queries(&m, op) {
            let ta = m.top_k_ta(&q, 5);
            let smj = m.top_k_smj(&q, 5);
            assert_eq!(
                ta.hits.iter().map(|h| h.phrase).collect::<Vec<_>>(),
                smj.iter().map(|h| h.phrase).collect::<Vec<_>>(),
                "{op}: {}",
                q.render(m.corpus())
            );
        }
    }
}

#[test]
fn ta_never_reads_deeper_than_nra() {
    let m = miner();
    for op in [Op::And, Op::Or] {
        for q in queries(&m, op) {
            let ta = m.top_k_ta(&q, 5);
            let nra = m.top_k_nra(&q, 5);
            assert!(
                ta.stats.fraction_traversed() <= nra.stats.fraction_traversed() + 1e-9,
                "{op} {}: TA deeper than NRA",
                q.render(m.corpus())
            );
        }
    }
}

#[test]
fn query_string_parser_matches_programmatic_queries() {
    let m = miner();
    for q in queries(&m, Op::And) {
        let rendered = q.render(m.corpus());
        let reparsed = m.parse_query_str(&rendered).unwrap();
        assert_eq!(reparsed, q, "render/parse mismatch for {rendered}");
    }
    for q in queries(&m, Op::Or) {
        let rendered = q.render(m.corpus());
        let reparsed = m.parse_query_str(&rendered).unwrap();
        assert_eq!(reparsed, q);
    }
}

#[test]
fn estimated_interestingness_brackets_reality() {
    // For full lists: AND estimates are exact under independence; OR
    // first-order estimates upper-bound the union probability; both must
    // land within a sane distance of the true value on topical queries.
    let m = miner();
    for op in [Op::And, Op::Or] {
        let mut total_err = 0.0;
        let mut n = 0;
        for q in queries(&m, op) {
            let subset = ipm_core::exact::materialize_subset(m.index(), &q);
            for h in m.top_k_nra(&q, 5).hits {
                let est = ipm_core::scoring::estimated_interestingness(op, h.score);
                let real = ipm_core::exact::exact_interestingness(m.index(), &subset, h.phrase);
                total_err += (est - real).abs();
                n += 1;
            }
        }
        let mean = total_err / n as f64;
        assert!(mean < 0.35, "{op}: mean |est - real| = {mean}");
    }
}

#[test]
fn packed_nra_equals_memory_nra() {
    // The packed layout changes bytes on disk, never results: NRA over
    // packed cursors must return exactly the in-memory NRA's top-k.
    let m = miner();
    let packed = m.to_packed(1.0);
    for op in [Op::And, Op::Or] {
        for q in queries(&m, op) {
            let mem = m.top_k_nra(&q, 5);
            let (pk, io) = m.top_k_nra_packed(&packed, &q, 5, 1.0);
            assert_eq!(
                mem.hits.iter().map(|h| h.phrase).collect::<Vec<_>>(),
                pk.hits.iter().map(|h| h.phrase).collect::<Vec<_>>(),
                "{op}: {}",
                q.render(m.corpus())
            );
            assert!(io.total_accesses() > 0, "packed run must touch the pool");
        }
    }
}

#[test]
fn packed_nra_equals_disk_nra_at_partial_fractions() {
    // Same equivalence through the partial-list path, packed vs 12-byte
    // disk layout.
    let m = miner();
    let packed = m.to_packed(1.0);
    let disk = m.to_disk(1.0);
    for op in [Op::And, Op::Or] {
        for q in queries(&m, op).into_iter().take(4) {
            for fraction in [0.2, 0.5] {
                let (d, _) = m.top_k_nra_disk(&disk, &q, 5, fraction);
                let (p, _) = m.top_k_nra_packed(&packed, &q, 5, fraction);
                assert_eq!(
                    d.hits.iter().map(|h| h.phrase).collect::<Vec<_>>(),
                    p.hits.iter().map(|h| h.phrase).collect::<Vec<_>>(),
                    "{op} @{fraction}: {}",
                    q.render(m.corpus())
                );
            }
        }
    }
}

#[test]
fn pmi_top_k_is_rank_equivalent_to_interestingness() {
    // Paper §1/§7: PMI is an alternative formulation; under the document
    // event model it is a per-query monotone transform of Eq. 1, so the
    // exact top-k sets must coincide on every harvested query.
    use ipm_core::measures::Measure;
    let m = miner();
    for op in [Op::And, Op::Or] {
        for q in queries(&m, op) {
            let by_i: Vec<_> = m.top_k_exact(&q, 10).iter().map(|h| h.phrase).collect();
            let by_pmi: Vec<_> = m
                .top_k_exact_measure(&q, 10, Measure::Pmi)
                .iter()
                .map(|h| h.phrase)
                .collect();
            assert_eq!(by_i, by_pmi, "{op}: {}", q.render(m.corpus()));
        }
    }
}

#[test]
fn approximate_npmi_recall_rises_with_fetch_depth() {
    // NPMI reranks away from the list order (it breaks Eq. 1 ties toward
    // high-df phrases), so the rescoring approximation's recall must grow
    // with the candidate fetch depth and get high once the fetch covers
    // the candidate space — the honest shape of the paper's §7 question.
    use ipm_core::measures::Measure;
    let m = miner();
    let mut recalls = Vec::new();
    for fetch in [20usize, 200, 5000] {
        let mut found = 0usize;
        let mut total = 0usize;
        for q in queries(&m, Op::Or) {
            let approx: Vec<_> = m
                .top_k_npmi(&q, 5, fetch)
                .iter()
                .map(|h| h.phrase)
                .collect();
            let exact: Vec<_> = m
                .top_k_exact_measure(&q, 5, Measure::Npmi)
                .iter()
                .map(|h| h.phrase)
                .collect();
            total += exact.len();
            found += exact.iter().filter(|p| approx.contains(p)).count();
        }
        recalls.push(found as f64 / total as f64);
    }
    eprintln!("npmi recall by fetch depth: {recalls:?}");
    assert!(
        recalls.windows(2).all(|w| w[0] <= w[1] + 0.05),
        "recall should not degrade with deeper fetch: {recalls:?}"
    );
    assert!(
        recalls[2] >= 0.5,
        "deep-fetch NPMI recall too low: {recalls:?}"
    );
}

#[test]
fn npmi_scores_are_bounded() {
    let m = miner();
    for op in [Op::And, Op::Or] {
        for q in queries(&m, op).into_iter().take(4) {
            for h in m.top_k_npmi(&q, 5, 50) {
                assert!((-1.0..=1.0).contains(&h.score), "{op}: {h:?}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Backend parity (tentpole invariant): on arbitrary corpora and both
    /// operators, each of the four algorithms must return *identical*
    /// top-k phrases (and equal scores) through the unified engine over
    /// the memory backend and the disk backend — and the disk runs must
    /// actually charge simulated IO.
    #[test]
    fn all_four_algorithms_agree_across_backends(
        docs in proptest::prop::collection::vec(
            proptest::prop::collection::vec(0u8..10, 2..20), 4..24),
    ) {
        let mut b = ipm_corpus::CorpusBuilder::new(ipm_corpus::TokenizerConfig::default());
        for d in &docs {
            let text: Vec<String> = d.iter().map(|t| format!("t{t}")).collect();
            b.add_text(&text.join(" "));
        }
        let corpus = b.build();
        let top = ipm_corpus::stats::top_words_by_df(&corpus, 2);
        if top.len() < 2 {
            return Ok(()); // degenerate single-word corpus: nothing to query
        }
        let miner = PhraseMiner::build(
            &corpus,
            MinerConfig {
                index: ipm_index::corpus_index::IndexConfig {
                    mining: ipm_index::mining::MiningConfig {
                        min_df: 2,
                        max_len: 3,
                        min_len: 1,
                    },
                },
                ..Default::default()
            },
        );
        let engine = QueryEngine::new(miner);
        let words: Vec<&str> = top
            .iter()
            .map(|&(w, _)| corpus.words().term(w).unwrap())
            .collect();
        for op in ["AND", "OR"] {
            let input = format!("{} {op} {}", words[0], words[1]);
            for algorithm in [Algorithm::Nra, Algorithm::Smj, Algorithm::Ta, Algorithm::Exact] {
                let mem = engine
                    .search_with(&input, 5, &SearchOptions {
                        algorithm,
                        ..Default::default()
                    })
                    .unwrap();
                let disk = engine
                    .search_with(&input, 5, &SearchOptions {
                        algorithm,
                        backend: BackendChoice::Disk,
                        ..Default::default()
                    })
                    .unwrap();
                prop_assert_eq!(
                    mem.hits.iter().map(|h| h.hit.phrase).collect::<Vec<_>>(),
                    disk.hits.iter().map(|h| h.hit.phrase).collect::<Vec<_>>(),
                    "{:?} {}: backends disagree on phrases", algorithm, op
                );
                for (a, b) in mem.hits.iter().zip(&disk.hits) {
                    prop_assert!(
                        (a.hit.score - b.hit.score).abs() < 1e-9,
                        "{:?} {}: score drift {} vs {}", algorithm, op, a.hit.score, b.hit.score
                    );
                    prop_assert_eq!(&a.text, &b.text);
                }
                if !disk.served_from_cache {
                    let io = disk.io.expect("disk run reports IO");
                    prop_assert!(io.total_accesses() > 0, "{:?} {}: no IO charged", algorithm, op);
                }
                // The block-compressed backend stores scores as integer
                // rationals over the df table, so its results must match
                // the in-memory lists *bit for bit*, not just within an
                // epsilon.
                let block = engine
                    .search_with(&input, 5, &SearchOptions {
                        algorithm,
                        backend: BackendChoice::Block,
                        ..Default::default()
                    })
                    .unwrap();
                prop_assert_eq!(
                    mem.hits.iter().map(|h| h.hit.phrase).collect::<Vec<_>>(),
                    block.hits.iter().map(|h| h.hit.phrase).collect::<Vec<_>>(),
                    "{:?} {}: block backend disagrees on phrases", algorithm, op
                );
                for (a, b) in mem.hits.iter().zip(&block.hits) {
                    prop_assert!(
                        a.hit.score.to_bits() == b.hit.score.to_bits(),
                        "{:?} {}: block score not bit-identical: {} vs {}",
                        algorithm, op, a.hit.score, b.hit.score
                    );
                    prop_assert_eq!(&a.text, &b.text);
                }
                // The exact scorer never traverses the lists (and the
                // block image resolves texts in memory), so only the
                // list algorithms charge per-block fetches.
                if !block.served_from_cache && algorithm != Algorithm::Exact {
                    let io = block.io.expect("block run reports IO");
                    prop_assert!(
                        io.total_accesses() > 0,
                        "{:?} {}: no block IO charged", algorithm, op
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Sharded-execution parity (the partitioned-execution tentpole
    /// invariant): on arbitrary corpora, every algorithm × backend must
    /// return *identical* phrases and scores whether it runs unsharded or
    /// fanned out across N ∈ {2, 3, 8} phrase-id shards — the per-shard
    /// top-k merge is exact because scores factorize per phrase.
    #[test]
    fn sharded_matches_unsharded_for_all_algorithms_and_backends(
        docs in proptest::prop::collection::vec(
            proptest::prop::collection::vec(0u8..10, 2..20), 4..24),
    ) {
        let mut b = ipm_corpus::CorpusBuilder::new(ipm_corpus::TokenizerConfig::default());
        for d in &docs {
            let text: Vec<String> = d.iter().map(|t| format!("t{t}")).collect();
            b.add_text(&text.join(" "));
        }
        let corpus = b.build();
        let top = ipm_corpus::stats::top_words_by_df(&corpus, 2);
        if top.len() < 2 {
            return Ok(()); // degenerate single-word corpus: nothing to query
        }
        let miner = PhraseMiner::build(
            &corpus,
            MinerConfig {
                index: ipm_index::corpus_index::IndexConfig {
                    mining: ipm_index::mining::MiningConfig {
                        min_df: 2,
                        max_len: 3,
                        min_len: 1,
                    },
                },
                ..Default::default()
            },
        );
        let engine = QueryEngine::new(miner);
        let words: Vec<&str> = top
            .iter()
            .map(|&(w, _)| corpus.words().term(w).unwrap())
            .collect();
        for op in ["AND", "OR"] {
            let input = format!("{} {op} {}", words[0], words[1]);
            for backend in [
                BackendChoice::Memory,
                BackendChoice::Disk,
                BackendChoice::Block,
            ] {
                for algorithm in [Algorithm::Nra, Algorithm::Smj, Algorithm::Ta, Algorithm::Exact] {
                    let base = engine
                        .search_with(&input, 5, &SearchOptions {
                            algorithm,
                            backend,
                            ..Default::default()
                        })
                        .unwrap();
                    prop_assert_eq!(base.shards, 1);
                    for n in [2usize, 3, 8] {
                        let sharded = engine
                            .search_with(&input, 5, &SearchOptions {
                                algorithm,
                                backend,
                                shards: Some(n),
                                ..Default::default()
                            })
                            .unwrap();
                        prop_assert_eq!(sharded.shards, n);
                        prop_assert_eq!(
                            base.hits.iter().map(|h| h.hit.phrase).collect::<Vec<_>>(),
                            sharded.hits.iter().map(|h| h.hit.phrase).collect::<Vec<_>>(),
                            "{:?}/{:?} {} @ {} shards: phrases diverge",
                            algorithm, backend, op, n
                        );
                        for (a, b) in base.hits.iter().zip(&sharded.hits) {
                            prop_assert!(
                                (a.hit.score - b.hit.score).abs() < 1e-12,
                                "{:?}/{:?} {} @ {}: score drift {} vs {}",
                                algorithm, backend, op, n, a.hit.score, b.hit.score
                            );
                            prop_assert_eq!(&a.text, &b.text);
                        }
                        // The block image has no phrase file, so Exact
                        // charges no block IO (texts resolve in memory).
                        let charges_io = match backend {
                            BackendChoice::Disk => true,
                            BackendChoice::Block => algorithm != Algorithm::Exact,
                            _ => false,
                        };
                        if charges_io
                            && !sharded.served_from_cache
                            && !sharded.hits.is_empty()
                        {
                            let io = sharded.io.expect("sharded disk run reports IO");
                            prop_assert!(
                                io.total_accesses() > 0,
                                "{:?} {} @ {}: no IO charged", algorithm, op, n
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn block_max_nra_is_sound_and_reads_no_more() {
    // The block-max soundness property: fast-forwarding over blocks whose
    // max cannot beat the defended floor may reorder exact ties at the k
    // boundary, but every phrase whose true aggregate is *strictly* above
    // the k-th true score must still be returned — and the skipping
    // traversal must never read more entries than the plain one.
    use ipm_core::nra::NraConfig;
    let m = miner();
    let block = m.to_block(1.0);
    let k = 5;
    let mut skipped_total = 0usize;
    for op in [Op::And, Op::Or] {
        for q in queries(&m, op) {
            let run = |use_block_max: bool| {
                let cursors: Vec<_> = q
                    .features
                    .iter()
                    .map(|&f| ipm_index::ListBackend::score_cursor(block.lists(), f, 1.0))
                    .collect();
                ipm_core::nra::run_nra(
                    cursors,
                    q.op,
                    &NraConfig {
                        k,
                        use_block_max,
                        // Small batches: skip checks run often enough to
                        // fire on the short synthetic lists.
                        batch_size: 64,
                        ..Default::default()
                    },
                )
            };
            let plain = run(false);
            let bm = run(true);
            // Ground truth on the same score scale: the full SMJ scan.
            let truth = m.top_k_smj(&q, 100_000);
            if truth.len() >= k {
                let kth = truth[k - 1].score;
                let got: Vec<_> = bm.hits.iter().map(|h| h.phrase).collect();
                for t in truth.iter().filter(|t| t.score > kth) {
                    assert!(
                        got.contains(&t.phrase),
                        "{op} {}: block-max dropped a mandatory phrase {:?} (score {} > kth {})",
                        q.render(m.corpus()),
                        t.phrase,
                        t.score,
                        kth
                    );
                }
            }
            let read = |s: &ipm_core::nra::TraversalStats| s.entries_read.iter().sum::<usize>();
            assert!(
                read(&bm.stats) <= read(&plain.stats),
                "{op} {}: block-max read {} entries, plain read {}",
                q.render(m.corpus()),
                read(&bm.stats),
                read(&plain.stats)
            );
            skipped_total += bm.stats.entries_skipped;
        }
    }
    assert!(
        skipped_total > 0,
        "block-max never skipped anything on the zipf corpus"
    );
}

#[test]
fn block_skipping_reduces_sorted_accesses_on_skewed_lists() {
    // The measurable win on the zipf-skewed synthetic corpus: once
    // `checknew` is off and every surviving candidate is resolved on a
    // list, the block cursor drains that list's remainder without
    // decoding it — so block-max NRA must perform strictly fewer sorted
    // accesses (entries read) in aggregate over the harvested query mix
    // than the same traversal reading every entry. The TA hint stop
    // (always on where block metadata exists) must not read deeper over
    // block cursors than over plain memory lists. Page-fetch counts are
    // deliberately NOT compared here: skipping keeps `last_seen` looser,
    // which can shift reads onto *other* lists, so only the sorted-access
    // total is monotone.
    use ipm_core::nra::NraConfig;
    let m = miner();
    let image = m.to_block(1.0);
    let (mut plain_read, mut bm_read) = (0usize, 0usize);
    let (mut mem_sorted, mut block_sorted) = (0usize, 0usize);
    for op in [Op::And, Op::Or] {
        for q in queries(&m, op) {
            let run = |use_block_max: bool| {
                let cursors: Vec<_> = q
                    .features
                    .iter()
                    .map(|&f| ipm_index::ListBackend::score_cursor(&image, f, 1.0))
                    .collect();
                let out = ipm_core::nra::run_nra(
                    cursors,
                    q.op,
                    &NraConfig {
                        k: 5,
                        use_block_max,
                        batch_size: 64,
                        ..Default::default()
                    },
                );
                out.stats.entries_read.iter().sum::<usize>()
            };
            plain_read += run(false);
            bm_read += run(true);

            let mem_ta = ipm_core::ta::run_ta_backend(&m.memory_backend(), &q, 5);
            let block_ta = ipm_core::ta::run_ta_backend(image.lists(), &q, 5);
            assert_eq!(
                mem_ta.hits.iter().map(|h| h.phrase).collect::<Vec<_>>(),
                block_ta.hits.iter().map(|h| h.phrase).collect::<Vec<_>>(),
                "{op} {}: TA disagrees across cursor kinds",
                q.render(m.corpus())
            );
            mem_sorted += mem_ta.stats.sorted_accesses.iter().sum::<usize>();
            block_sorted += block_ta.stats.sorted_accesses.iter().sum::<usize>();
        }
    }
    assert!(
        bm_read < plain_read,
        "block-max NRA read {bm_read} entries, plain read {plain_read}"
    );
    assert!(
        block_sorted <= mem_sorted,
        "TA hint stop read deeper over blocks ({block_sorted}) than memory ({mem_sorted})"
    );
}

#[test]
fn frequency_semantics_ablation_df_vs_occurrence() {
    // DESIGN.md §2 picks document frequency for Eq. 1's `freq`. Validate
    // the choice: on topical corpora (few in-document phrase repeats) the
    // occurrence-count reading produces substantially the same top-5.
    let m = miner();
    let occ = ipm_index::occurrence::OccurrenceIndex::build(m.corpus(), &m.index().dict);
    let mut overlap = 0usize;
    let mut total = 0usize;
    for op in [Op::And, Op::Or] {
        for q in queries(&m, op) {
            let by_df: Vec<_> = m.top_k_exact(&q, 5).iter().map(|h| h.phrase).collect();
            let by_occ: Vec<_> = ipm_core::exact::exact_top_k_occurrence(m.index(), &occ, &q, 5)
                .iter()
                .map(|h| h.phrase)
                .collect();
            total += by_df.len();
            overlap += by_df.iter().filter(|p| by_occ.contains(p)).count();
        }
    }
    assert!(total > 0);
    let agreement = overlap as f64 / total as f64;
    assert!(
        agreement >= 0.6,
        "df vs occurrence top-5 agreement only {agreement:.2}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Budget-truncation consistency (the anytime envelope): on arbitrary
    /// corpora, a budget-truncated NRA/TA run may return *fewer* hits or
    /// *looser* bounds than the unbudgeted run — but never a wrong score.
    /// Every truncated hit's `[lower, upper]` interval must bracket the
    /// phrase's true aggregate (taken from a full SMJ scan, which shares
    /// the score scale), resolved hits must match it exactly, and hits
    /// for phrases with no true score (NRA's AND upper-bound phantoms)
    /// must still carry unresolved bounds — across both backends and
    /// shard fanouts.
    #[test]
    fn budget_truncated_runs_are_prefix_consistent(
        docs in proptest::prop::collection::vec(
            proptest::prop::collection::vec(0u8..10, 2..20), 4..24),
        steps in 1u64..24,
    ) {
        let mut b = ipm_corpus::CorpusBuilder::new(ipm_corpus::TokenizerConfig::default());
        for d in &docs {
            let text: Vec<String> = d.iter().map(|t| format!("t{t}")).collect();
            b.add_text(&text.join(" "));
        }
        let corpus = b.build();
        let top = ipm_corpus::stats::top_words_by_df(&corpus, 2);
        if top.len() < 2 {
            return Ok(()); // degenerate single-word corpus: nothing to query
        }
        let miner = PhraseMiner::build(
            &corpus,
            MinerConfig {
                index: ipm_index::corpus_index::IndexConfig {
                    mining: ipm_index::mining::MiningConfig {
                        min_df: 2,
                        max_len: 3,
                        min_len: 1,
                    },
                },
                ..Default::default()
            },
        );
        // No result cache: a cache hit would satisfy the budgeted request
        // without ever exercising truncation.
        let engine = QueryEngine::with_config(
            miner,
            ipm_core::EngineConfig {
                cache: None,
                ..Default::default()
            },
        );
        let words: Vec<&str> = top
            .iter()
            .map(|&(w, _)| corpus.words().term(w).unwrap())
            .collect();
        for op in ["AND", "OR"] {
            let input = format!("{} {op} {}", words[0], words[1]);
            let query = engine.miner().parse_query_str(&input).unwrap();
            // Ground truth on the same score scale: the full SMJ scan.
            let truth: Vec<_> = engine.miner().top_k_smj(&query, 100_000);
            let true_score = |p: ipm_corpus::PhraseId| {
                truth.iter().find(|h| h.phrase == p).map(|h| h.score)
            };
            for algorithm in [Algorithm::Nra, Algorithm::Ta] {
                for backend in [
                    BackendChoice::Memory,
                    BackendChoice::Disk,
                    BackendChoice::Block,
                ] {
                    for shards in [1usize, 3] {
                        let full = engine
                            .request(input.clone())
                            .k(5)
                            .algorithm(algorithm)
                            .backend(backend)
                            .shards(shards)
                            .run()
                            .unwrap();
                        let truncated = engine
                            .request(input.clone())
                            .k(5)
                            .algorithm(algorithm)
                            .backend(backend)
                            .shards(shards)
                            .step_budget(steps)
                            .run()
                            .unwrap();
                        if !truncated.completeness.is_truncated() {
                            // The budget never tripped (cache hit or the
                            // run finished first): results must be the
                            // unbudgeted answer, bit for bit.
                            prop_assert_eq!(
                                full.hits.iter().map(|h| h.hit.phrase).collect::<Vec<_>>(),
                                truncated.hits.iter().map(|h| h.hit.phrase).collect::<Vec<_>>(),
                                "{:?}/{:?} {} @ {}: untripped budget changed results",
                                algorithm, backend, op, shards
                            );
                            continue;
                        }
                        prop_assert!(
                            !truncated.served_from_cache,
                            "truncated responses must never come from (or enter) the cache"
                        );
                        for h in &truncated.hits {
                            match true_score(h.hit.phrase) {
                                Some(t) => {
                                    prop_assert!(
                                        h.hit.lower <= t + 1e-9 && t <= h.hit.upper + 1e-9,
                                        "{:?}/{:?} {} @ {} steps {}: bounds [{}, {}] miss true {}",
                                        algorithm, backend, op, shards, steps,
                                        h.hit.lower, h.hit.upper, t
                                    );
                                    if h.hit.is_resolved() {
                                        prop_assert!(
                                            (h.hit.score - t).abs() < 1e-9,
                                            "{:?}/{:?}: resolved score {} != true {}",
                                            algorithm, backend, h.hit.score, t
                                        );
                                    }
                                }
                                None => prop_assert!(
                                    !h.hit.is_resolved(),
                                    "{:?}/{:?} {}: phantom phrase {:?} presented as resolved",
                                    algorithm, backend, op, h.hit.phrase
                                ),
                            }
                        }
                        // TA resolves every admitted hit: a truncated TA
                        // run is an exactly-scored subset of the truth.
                        if algorithm == Algorithm::Ta {
                            for h in &truncated.hits {
                                prop_assert!(h.hit.is_resolved());
                            }
                        }
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Distributed merge parity (protocol v5): a router scattering over
    /// loopback shard servers must return hits *byte-identical on the
    /// wire* to single-process sharded execution of the same request —
    /// for all four algorithms, all three backends, and fanouts 2 and 4.
    /// The shard tier and the coordinator run separate engine handles
    /// over the same corpus build, exactly the deployment contract.
    #[test]
    fn routed_matches_single_process_for_all_algorithms_backends_fanouts(
        docs in proptest::prop::collection::vec(
            proptest::prop::collection::vec(0u8..10, 2..20), 6..24),
    ) {
        let mut b = ipm_corpus::CorpusBuilder::new(ipm_corpus::TokenizerConfig::default());
        for d in &docs {
            let text: Vec<String> = d.iter().map(|t| format!("t{t}")).collect();
            b.add_text(&text.join(" "));
        }
        let corpus = b.build();
        let top = ipm_corpus::stats::top_words_by_df(&corpus, 2);
        if top.len() < 2 {
            return Ok(()); // degenerate single-word corpus: nothing to query
        }
        let miner = PhraseMiner::build(
            &corpus,
            MinerConfig {
                index: ipm_index::corpus_index::IndexConfig {
                    mining: ipm_index::mining::MiningConfig {
                        min_df: 2,
                        max_len: 3,
                        min_len: 1,
                    },
                },
                ..Default::default()
            },
        );
        let engine = QueryEngine::with_config(miner, EngineConfig {
            cache: None,
            ..Default::default()
        });
        let words: Vec<&str> = top
            .iter()
            .map(|&(w, _)| corpus.words().term(w).unwrap())
            .collect();
        for fanout in [2usize, 4] {
            let shard_servers: Vec<ServerHandle> = (0..fanout)
                .map(|_| {
                    Server::spawn(engine.clone(), ServerConfig {
                        addr: "127.0.0.1:0".to_owned(),
                        workers: 2,
                        queue_depth: 16,
                        fault_delay_ms: 0,
                    })
                    .expect("bind shard server")
                })
                .collect();
            let router = Router::spawn(engine.clone(), RouterConfig {
                addr: "127.0.0.1:0".to_owned(),
                shards: shard_servers
                    .iter()
                    .map(|s| vec![s.addr().to_string()])
                    .collect(),
                ..Default::default()
            })
            .expect("bind router");
            let mut client = Client::connect(&router.addr().to_string()).expect("connect");
            for op in ["AND", "OR"] {
                let input = format!("{} {op} {}", words[0], words[1]);
                for algorithm in ["nra", "smj", "ta", "exact"] {
                    for backend in ["memory", "disk", "block"] {
                        let mut req = WireSearchRequest::new(input.clone());
                        req.k = 5;
                        req.algorithm =
                            ipm_server::wire::algorithm_from_str(algorithm).unwrap();
                        req.backend = ipm_server::wire::backend_from_str(backend).unwrap();
                        let routed = client.search(&req).expect("roundtrip");
                        prop_assert_eq!(
                            routed["ok"].as_bool(),
                            Some(true),
                            "router error ({} {} fanout {}): {:?}",
                            algorithm, backend, fanout, routed
                        );
                        let mut opts = req.options();
                        opts.shards = Some(fanout);
                        let local = engine.search_with(&input, 5, &opts).unwrap();
                        prop_assert_eq!(
                            serde_json::to_string(&routed["result"]["hits"]).unwrap(),
                            serde_json::to_string(&ipm_server::wire::hits_value(&local))
                                .unwrap(),
                            "{} {} fanout {}: routed hits must be byte-identical",
                            algorithm, backend, fanout
                        );
                        prop_assert_eq!(
                            serde_json::to_string(&routed["result"]["completeness"]).unwrap(),
                            serde_json::to_string(&ipm_server::wire::completeness_value(
                                &local.completeness
                            ))
                            .unwrap(),
                            "{} {} fanout {}: completeness must agree",
                            algorithm, backend, fanout
                        );
                    }
                }
            }
        }
    }
}
