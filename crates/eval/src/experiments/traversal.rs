//! Figure 11: percentage of the lists NRA traverses before its stopping
//! condition fires.

use super::datasets::DatasetBundle;
use super::report::Report;
use crate::queryset::to_queries;
use ipm_core::query::Operator;

/// Mean traversed fraction over the query set for one operator.
pub fn mean_fraction(ds: &DatasetBundle, op: Operator, k: usize) -> f64 {
    let queries = to_queries(&ds.queries, op);
    let mut total = 0.0;
    for q in &queries {
        let out = ds.miner.top_k_nra(q, k);
        total += out.stats.fraction_traversed();
    }
    total / queries.len().max(1) as f64
}

/// Runs the figure for one dataset (both operators). The bench binary
/// overlays multiple datasets, as the paper's bar chart does.
pub fn run(ds: &DatasetBundle, k: usize) -> Report {
    let mut report = Report::new(
        format!("Figure 11 — % of lists traversed by NRA ({})", ds.name),
        &["operator", "mean % traversed"],
    );
    for op in [Operator::And, Operator::Or] {
        let f = mean_fraction(ds, op, k);
        report.push_row(vec![op.to_string(), format!("{:.1}%", f * 100.0)]);
    }
    report.push_note("full score-ordered lists; traversal ends at the bounds-based stop condition");
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::datasets::shared_test_bundle;

    #[test]
    fn fraction_is_in_unit_interval() {
        let ds = shared_test_bundle();
        for op in [Operator::And, Operator::Or] {
            let f = mean_fraction(ds, op, 5);
            assert!((0.0..=1.0).contains(&f), "{op}: {f}");
        }
    }

    #[test]
    fn report_has_two_rows() {
        let ds = shared_test_bundle();
        let r = run(ds, 5);
        assert_eq!(r.rows.len(), 2);
    }
}
