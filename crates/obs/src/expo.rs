//! Grammar validation for Prometheus text exposition format.
//!
//! The renderer lives on [`crate::metrics::Registry`]; this module is the
//! independent check the CLI (`ipm stats --metrics`), the CI smoke step
//! and the test suite run against scraped output, so a renderer bug (or a
//! drifting format) fails loudly instead of shipping an unscrapable
//! endpoint. It validates the line grammar plus the histogram invariants
//! the format implies (cumulative `le` buckets, a `+Inf` bucket whose
//! count equals `_count`).

use std::collections::BTreeMap;

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

fn is_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn is_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_value(s: &str) -> Option<f64> {
    match s {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        _ => s.parse().ok(),
    }
}

/// Parses a `{k="v",...}` label block body (without the braces).
fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or("label without '='")?;
        let key = &rest[..eq];
        if !is_label_name(key) {
            return Err(format!("invalid label name: {key:?}"));
        }
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err("label value is not quoted".into());
        }
        // Scan to the closing quote, honouring escapes.
        let mut value = String::new();
        let mut chars = rest[1..].char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, e @ ('\\' | '"'))) => value.push(e),
                    _ => return Err("bad escape in label value".into()),
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or("unterminated label value")?;
        labels.push((key.to_owned(), value));
        rest = &rest[1 + end + 1..];
        if let Some(r) = rest.strip_prefix(',') {
            rest = r;
            if rest.is_empty() {
                return Err("trailing comma in label block".into());
            }
        } else if !rest.is_empty() {
            return Err("junk after label value".into());
        }
    }
    Ok(labels)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    // name[{labels}] value [timestamp]
    let (name, rest) = match line.find(['{', ' ']) {
        Some(i) => line.split_at(i),
        None => return Err("sample has no value".into()),
    };
    if !is_metric_name(name) {
        return Err(format!("invalid metric name: {name:?}"));
    }
    let (labels, rest) = if let Some(body) = rest.strip_prefix('{') {
        let close = body.rfind('}').ok_or("unterminated label block")?;
        (parse_labels(&body[..close])?, &body[close + 1..])
    } else {
        (Vec::new(), rest)
    };
    let mut fields = rest.split_whitespace();
    let value = fields
        .next()
        .and_then(parse_value)
        .ok_or("unparseable sample value")?;
    if let Some(ts) = fields.next() {
        ts.parse::<i64>().map_err(|_| "unparseable timestamp")?;
    }
    if fields.next().is_some() {
        return Err("trailing fields after timestamp".into());
    }
    Ok(Sample {
        name: name.to_owned(),
        labels,
        value,
    })
}

/// The family a sample belongs to under a declared histogram type:
/// `x_bucket`/`x_sum`/`x_count` all belong to `x`.
fn base_name<'a>(name: &'a str, histograms: &BTreeMap<String, ()>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if histograms.contains_key(base) {
                return base;
            }
        }
    }
    name
}

/// Validates `text` as Prometheus text exposition format.
///
/// Checks, per line: comment/`HELP`/`TYPE` syntax, metric and label name
/// character sets, quoted-and-escaped label values, parseable sample
/// values. Across lines: samples of a `TYPE`-declared family appear after
/// the declaration, at most one `TYPE` per family, and every declared
/// histogram has cumulative non-decreasing `le` buckets ending in a
/// `+Inf` bucket equal to its `_count`.
///
/// # Errors
/// The first violation, prefixed with its 1-based line number.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut histograms: BTreeMap<String, ()> = BTreeMap::new();
    // name -> label-block (minus `le`) -> ascending (le, cumulative count)
    type BucketMap = BTreeMap<String, Vec<(f64, f64)>>;
    let mut buckets: BTreeMap<String, BucketMap> = BTreeMap::new();
    let mut counts: BTreeMap<String, BTreeMap<String, f64>> = BTreeMap::new();
    let mut saw_sample = false;

    for (lineno, line) in text.lines().enumerate() {
        let at = |msg: String| format!("line {}: {msg}", lineno + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            let mut fields = comment.splitn(3, ' ');
            match fields.next() {
                Some("HELP") => {
                    let name = fields
                        .next()
                        .ok_or_else(|| at("HELP without name".into()))?;
                    if !is_metric_name(name) {
                        return Err(at(format!("HELP for invalid name {name:?}")));
                    }
                }
                Some("TYPE") => {
                    let name = fields
                        .next()
                        .ok_or_else(|| at("TYPE without name".into()))?;
                    if !is_metric_name(name) {
                        return Err(at(format!("TYPE for invalid name {name:?}")));
                    }
                    let kind = fields
                        .next()
                        .ok_or_else(|| at("TYPE without kind".into()))?;
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return Err(at(format!("unknown TYPE kind {kind:?}")));
                    }
                    if types.insert(name.to_owned(), kind.to_owned()).is_some() {
                        return Err(at(format!("duplicate TYPE for {name}")));
                    }
                    if kind == "histogram" {
                        histograms.insert(name.to_owned(), ());
                    }
                }
                // Free-form comments are legal.
                _ => {}
            }
            continue;
        }
        let sample = parse_sample(line).map_err(&at)?;
        saw_sample = true;
        let base = base_name(&sample.name, &histograms).to_owned();
        if histograms.contains_key(&base) {
            let rest: Vec<String> = sample
                .labels
                .iter()
                .filter(|(k, _)| k != "le")
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            let series = rest.join(",");
            if sample.name == format!("{base}_bucket") {
                let le = sample
                    .labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .ok_or_else(|| at(format!("{} without le label", sample.name)))?;
                let bound = parse_value(&le.1)
                    .ok_or_else(|| at(format!("unparseable le bound {:?}", le.1)))?;
                buckets
                    .entry(base.clone())
                    .or_default()
                    .entry(series)
                    .or_default()
                    .push((bound, sample.value));
            } else if sample.name == format!("{base}_count") {
                counts
                    .entry(base.clone())
                    .or_default()
                    .insert(series, sample.value);
            }
        }
    }
    if !saw_sample {
        return Err("exposition has no samples".into());
    }
    for (name, series) in &buckets {
        for (labels, rows) in series {
            let mut prev = f64::NEG_INFINITY;
            let mut prev_count = -1.0;
            for &(bound, count) in rows {
                if bound <= prev {
                    return Err(format!("{name}{{{labels}}}: le bounds not ascending"));
                }
                if count < prev_count {
                    return Err(format!("{name}{{{labels}}}: bucket counts not cumulative"));
                }
                prev = bound;
                prev_count = count;
            }
            let Some(&(last_bound, last_count)) = rows.last() else {
                continue;
            };
            if last_bound != f64::INFINITY {
                return Err(format!("{name}{{{labels}}}: missing +Inf bucket"));
            }
            if let Some(total) = counts.get(name).and_then(|m| m.get(labels)) {
                if *total != last_count {
                    return Err(format!(
                        "{name}{{{labels}}}: +Inf bucket {last_count} != _count {total}"
                    ));
                }
            } else {
                return Err(format!("{name}{{{labels}}}: histogram without _count"));
            }
        }
    }
    Ok(())
}

/// Sums every sample of metric `name` (exact name match, any label set)
/// in an exposition document. `None` when the metric does not appear.
/// Convenience for tests and smoke checks (e.g. comparing
/// `..._latency_seconds_count` against a served-queries counter).
pub fn sample_sum(text: &str, name: &str) -> Option<f64> {
    let mut sum = 0.0;
    let mut seen = false;
    for line in text.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        if let Ok(s) = parse_sample(line) {
            if s.name == name {
                sum += s.value;
                seen = true;
            }
        }
    }
    seen.then_some(sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
# HELP ipm_served_total queries served\n\
# TYPE ipm_served_total counter\n\
ipm_served_total 12\n\
# HELP ipm_lat_seconds latency\n\
# TYPE ipm_lat_seconds histogram\n\
ipm_lat_seconds_bucket{le=\"0.001\"} 3\n\
ipm_lat_seconds_bucket{le=\"0.01\"} 10\n\
ipm_lat_seconds_bucket{le=\"+Inf\"} 12\n\
ipm_lat_seconds_sum 0.5\n\
ipm_lat_seconds_count 12\n";

    #[test]
    fn accepts_well_formed_exposition() {
        validate_exposition(GOOD).unwrap();
    }

    #[test]
    fn sample_sum_finds_and_sums() {
        assert_eq!(sample_sum(GOOD, "ipm_served_total"), Some(12.0));
        assert_eq!(sample_sum(GOOD, "ipm_lat_seconds_count"), Some(12.0));
        assert_eq!(sample_sum(GOOD, "nope"), None);
    }

    #[test]
    fn rejects_bad_metric_name() {
        let text = "# TYPE 9bad counter\n";
        assert!(validate_exposition(text).is_err());
        assert!(validate_exposition("9bad 1\n").is_err());
    }

    #[test]
    fn rejects_unparseable_value() {
        assert!(validate_exposition("ipm_x twelve\n").is_err());
    }

    #[test]
    fn rejects_unterminated_labels() {
        assert!(validate_exposition("ipm_x{a=\"b\" 1\n").is_err());
        assert!(validate_exposition("ipm_x{a=b} 1\n").is_err());
        assert!(validate_exposition("ipm_x{a=\"b\",} 1\n").is_err());
    }

    #[test]
    fn rejects_non_cumulative_histogram() {
        let text = "\
# TYPE h histogram\n\
h_bucket{le=\"1\"} 5\n\
h_bucket{le=\"2\"} 3\n\
h_bucket{le=\"+Inf\"} 5\n\
h_sum 1\n\
h_count 5\n";
        let err = validate_exposition(text).unwrap_err();
        assert!(err.contains("not cumulative"), "{err}");
    }

    #[test]
    fn rejects_histogram_without_inf_bucket() {
        let text = "\
# TYPE h histogram\n\
h_bucket{le=\"1\"} 5\n\
h_sum 1\n\
h_count 5\n";
        let err = validate_exposition(text).unwrap_err();
        assert!(err.contains("+Inf"), "{err}");
    }

    #[test]
    fn rejects_count_mismatch() {
        let text = "\
# TYPE h histogram\n\
h_bucket{le=\"+Inf\"} 4\n\
h_sum 1\n\
h_count 5\n";
        let err = validate_exposition(text).unwrap_err();
        assert!(err.contains("!= _count"), "{err}");
    }

    #[test]
    fn rejects_empty_document() {
        assert!(validate_exposition("").is_err());
        assert!(validate_exposition("# HELP x y\n").is_err());
    }

    #[test]
    fn accepts_escaped_label_values_and_timestamps() {
        let text = "ipm_x{q=\"a\\\"b\\\\c\\nd\"} 1 1700000000\n";
        validate_exposition(text).unwrap();
    }

    #[test]
    fn rejects_duplicate_type() {
        let text = "# TYPE x counter\n# TYPE x gauge\nx 1\n";
        assert!(validate_exposition(text).is_err());
    }
}
