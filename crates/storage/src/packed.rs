//! Bit-packed word-specific list layout — the paper's exact entry size.
//!
//! §4.2.2 of the paper: "Each pair in the phrase list occupies exactly
//! `⌈log(|P|)⌉ + 64` bits" — the phrase ID at the minimum width that can
//! address the dictionary, the probability as a full double. The plain
//! [`crate::files::WordListFile`] (and the paper's own Table 5 accounting)
//! rounds the ID up to a whole `u32`, i.e. 12 bytes per entry; this module
//! implements the bit-exact layout, so the index-size experiment can report
//! both and quantify what the packing buys.
//!
//! Entries remain score-ordered within each feature's run and are read
//! through the same simulated [`BufferPool`], so NRA runs unchanged over
//! packed lists via [`PackedCursor`] — only the bytes-per-entry (and hence
//! pages touched) change.

use bytes::Bytes;
use ipm_corpus::hash::FxHashMap;
use ipm_corpus::{Feature, PhraseId};
use ipm_index::cursor::{prefix_len, ScoredListCursor};
use ipm_index::wordlists::{ListEntry, WordPhraseLists, ENTRY_BYTES};
use parking_lot::Mutex;

use crate::bits::{bits_for_ids, read_bits, BitWriter};
use crate::cost::{CostModel, IoStats};
use crate::files::ListRun;
use crate::pool::{BufferPool, PoolConfig};

/// Bit-packed serialization of score-ordered word-specific lists.
#[derive(Debug, Clone)]
pub struct PackedWordListFile {
    pub(crate) data: Bytes,
    pub(crate) directory: FxHashMap<u64, ListRun>,
    pub(crate) total_entries: usize,
    pub(crate) id_bits: u32,
}

impl PackedWordListFile {
    /// Packs `lists` with IDs wide enough for a dictionary of `num_phrases`
    /// phrases (pass `dict.len()`; every ID stored must be `< num_phrases`).
    ///
    /// # Panics
    /// Panics if a list entry's phrase ID does not fit in
    /// `⌈log₂(num_phrases)⌉` bits.
    pub fn build(lists: &WordPhraseLists, num_phrases: usize) -> Self {
        let id_bits = bits_for_ids(num_phrases);
        let entry_bits = u64::from(id_bits) + 64;
        let mut w = BitWriter::with_capacity_bits(lists.total_entries() as u64 * entry_bits);
        let mut directory = FxHashMap::default();
        let mut written = 0u64;
        for (slot, feat) in lists.features().iter().enumerate() {
            let list = lists.list_by_slot(slot as u32);
            directory.insert(
                feat.encode(),
                ListRun {
                    start: written,
                    len: list.len() as u64,
                },
            );
            for e in list {
                assert!(
                    u64::from(e.phrase.raw()) < (1u64 << id_bits).max(2),
                    "phrase id {} exceeds id width {id_bits}",
                    e.phrase.raw()
                );
                w.write(u64::from(e.phrase.raw()), id_bits);
                w.write(e.prob.to_bits(), 64);
            }
            written += list.len() as u64;
        }
        Self {
            data: Bytes::from(w.into_bytes()),
            directory,
            total_entries: written as usize,
            id_bits,
        }
    }

    /// Bits per `[phrase_id, prob]` entry: `⌈log₂|P|⌉ + 64`.
    pub fn entry_bits(&self) -> u32 {
        self.id_bits + 64
    }

    /// ID width in bits.
    pub fn id_bits(&self) -> u32 {
        self.id_bits
    }

    /// Packed file size in bytes.
    pub fn len_bytes(&self) -> usize {
        self.data.len()
    }

    /// Size the same entries occupy in the unpacked 12-byte layout.
    pub fn unpacked_bytes(&self) -> usize {
        self.total_entries * ENTRY_BYTES
    }

    /// Total entries across all lists.
    pub fn total_entries(&self) -> usize {
        self.total_entries
    }

    /// Length (in entries) of a feature's list; 0 if absent.
    pub fn list_len(&self, feature: Feature) -> usize {
        self.directory
            .get(&feature.encode())
            .map(|r| r.len as usize)
            .unwrap_or(0)
    }

    /// Whether the feature has a directory entry.
    pub fn has_feature(&self, feature: Feature) -> bool {
        self.directory.contains_key(&feature.encode())
    }

    /// Reads entry `i` of `feature`'s list through the buffer pool,
    /// charging the byte range the entry's bits span.
    pub fn read_entry(
        &self,
        feature: Feature,
        i: usize,
        pool: &mut BufferPool,
    ) -> Option<ListEntry> {
        let run = self.directory.get(&feature.encode())?;
        if i as u64 >= run.len {
            return None;
        }
        let entry_bits = u64::from(self.entry_bits());
        let start_bit = (run.start + i as u64) * entry_bits;
        let start_byte = start_bit / 8;
        let end_byte = (start_bit + entry_bits).div_ceil(8);
        pool.access_range(start_byte, end_byte - start_byte, self.data.len() as u64);
        let phrase = read_bits(&self.data, start_bit, self.id_bits) as u32;
        let prob = f64::from_bits(read_bits(
            &self.data,
            start_bit + u64::from(self.id_bits),
            64,
        ));
        Some(ListEntry {
            phrase: PhraseId(phrase),
            prob,
        })
    }
}

/// Disk-resident packed lists: serialized image + shared buffer pool,
/// mirroring [`crate::disklists::DiskLists`] for the packed layout.
pub struct PackedLists {
    file: PackedWordListFile,
    pool: Mutex<BufferPool>,
    cost: CostModel,
}

impl PackedLists {
    /// Packs `lists` and wraps them with the paper's default pool/cost
    /// configuration.
    pub fn build(lists: &WordPhraseLists, num_phrases: usize) -> Self {
        Self::with_config(
            lists,
            num_phrases,
            PoolConfig::default(),
            CostModel::default(),
        )
    }

    /// Full-control constructor.
    pub fn with_config(
        lists: &WordPhraseLists,
        num_phrases: usize,
        pool: PoolConfig,
        cost: CostModel,
    ) -> Self {
        Self::from_file_with_config(PackedWordListFile::build(lists, num_phrases), pool, cost)
    }

    /// Wraps an already-built (e.g. reloaded via
    /// [`crate::persist::load_packed_lists`]) packed image with the paper's
    /// default pool/cost configuration.
    pub fn from_file(file: PackedWordListFile) -> Self {
        Self::from_file_with_config(file, PoolConfig::default(), CostModel::default())
    }

    /// Wraps a packed image with an explicit pool/cost configuration.
    pub fn from_file_with_config(
        file: PackedWordListFile,
        pool: PoolConfig,
        cost: CostModel,
    ) -> Self {
        Self {
            file,
            pool: Mutex::new(BufferPool::new(pool)),
            cost,
        }
    }

    /// The underlying packed file.
    pub fn file(&self) -> &PackedWordListFile {
        &self.file
    }

    /// Snapshot of accumulated IO statistics.
    pub fn io_stats(&self) -> IoStats {
        self.pool.lock().stats()
    }

    /// Simulated IO milliseconds accumulated so far.
    pub fn io_ms(&self) -> f64 {
        self.io_stats().io_ms(&self.cost)
    }

    /// Cold-cache reset (between queries in the experiment harness).
    pub fn reset_io(&self) {
        self.pool.lock().reset();
    }

    /// Opens a cursor over the top-`fraction` prefix of `feature`'s list.
    pub fn cursor(&self, feature: Feature, fraction: f64) -> PackedCursor<'_> {
        let limit = prefix_len(self.file.list_len(feature), fraction);
        PackedCursor {
            owner: self,
            feature,
            pos: 0,
            limit,
        }
    }
}

impl std::fmt::Debug for PackedLists {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PackedLists")
            .field("bytes", &self.file.len_bytes())
            .field("entry_bits", &self.file.entry_bits())
            .field("io", &self.io_stats())
            .finish()
    }
}

/// A forward cursor over one packed disk-resident list.
pub struct PackedCursor<'a> {
    owner: &'a PackedLists,
    feature: Feature,
    pos: usize,
    limit: usize,
}

impl ScoredListCursor for PackedCursor<'_> {
    fn next_entry(&mut self) -> Option<ListEntry> {
        if self.pos >= self.limit {
            return None;
        }
        let mut pool = self.owner.pool.lock();
        let e = self
            .owner
            .file
            .read_entry(self.feature, self.pos, &mut pool);
        if e.is_some() {
            self.pos += 1;
        }
        e
    }

    fn len(&self) -> usize {
        self.limit
    }

    fn position(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipm_index::corpus_index::{CorpusIndex, IndexConfig};
    use ipm_index::mining::MiningConfig;
    use ipm_index::wordlists::WordListConfig;

    fn setup() -> (ipm_corpus::Corpus, CorpusIndex, WordPhraseLists) {
        let (c, _) = ipm_corpus::synth::generate(&ipm_corpus::synth::tiny());
        let index = CorpusIndex::build(
            &c,
            &IndexConfig {
                mining: MiningConfig {
                    min_df: 3,
                    max_len: 4,
                    min_len: 1,
                },
            },
        );
        let lists = WordPhraseLists::build(&c, &index, &WordListConfig::default());
        (c, index, lists)
    }

    fn small_pool() -> BufferPool {
        BufferPool::new(PoolConfig {
            page_size: 64,
            capacity_pages: 4,
            lookahead_pages: 1,
        })
    }

    #[test]
    fn packed_roundtrip_matches_source_lists() {
        let (_, index, lists) = setup();
        let file = PackedWordListFile::build(&lists, index.dict.len());
        assert_eq!(file.total_entries(), lists.total_entries());
        let mut pool = small_pool();
        for feat in lists.features() {
            let want = lists.list(*feat);
            assert_eq!(file.list_len(*feat), want.len());
            for (i, e) in want.iter().enumerate() {
                let got = file.read_entry(*feat, i, &mut pool).unwrap();
                assert_eq!(got.phrase, e.phrase);
                assert_eq!(got.prob.to_bits(), e.prob.to_bits());
            }
            assert!(file.read_entry(*feat, want.len(), &mut pool).is_none());
        }
    }

    #[test]
    fn packed_entry_width_matches_paper_formula() {
        let (_, index, lists) = setup();
        let file = PackedWordListFile::build(&lists, index.dict.len());
        let want_id_bits = bits_for_ids(index.dict.len());
        assert_eq!(file.id_bits(), want_id_bits);
        assert_eq!(file.entry_bits(), want_id_bits + 64);
        // Total size = ceil(entries * entry_bits / 8).
        let want_bytes =
            (file.total_entries() as u64 * u64::from(file.entry_bits())).div_ceil(8) as usize;
        assert_eq!(file.len_bytes(), want_bytes);
    }

    #[test]
    fn packed_is_smaller_than_unpacked() {
        let (_, index, lists) = setup();
        let file = PackedWordListFile::build(&lists, index.dict.len());
        // Dictionary ids fit well below 32 bits here, so packing must win.
        assert!(file.id_bits() < 32);
        assert!(file.len_bytes() < file.unpacked_bytes());
        // Savings ratio = (id_bits + 64) / 96.
        let want = f64::from(file.entry_bits()) / 96.0;
        let got = file.len_bytes() as f64 / file.unpacked_bytes() as f64;
        assert!((got - want).abs() < 0.01, "got {got}, want ≈{want}");
    }

    #[test]
    fn missing_feature_is_absent() {
        let (_, index, lists) = setup();
        let file = PackedWordListFile::build(&lists, index.dict.len());
        let missing = Feature::Word(ipm_corpus::WordId(999_999));
        assert!(!file.has_feature(missing));
        assert_eq!(file.list_len(missing), 0);
        let mut pool = small_pool();
        assert!(file.read_entry(missing, 0, &mut pool).is_none());
    }

    #[test]
    fn packed_cursor_agrees_with_memory_list() {
        let (_, index, lists) = setup();
        let packed = PackedLists::build(&lists, index.dict.len());
        for feat in lists.features() {
            let want = lists.list(*feat);
            let mut cur = packed.cursor(*feat, 1.0);
            assert_eq!(cur.len(), want.len());
            for e in want {
                let got = cur.next_entry().unwrap();
                assert_eq!(got.phrase, e.phrase);
                assert_eq!(got.prob.to_bits(), e.prob.to_bits());
            }
            assert!(cur.next_entry().is_none());
        }
        assert!(packed.io_stats().total_accesses() > 0);
    }

    #[test]
    fn packed_cursor_partial_fraction() {
        let (_, index, lists) = setup();
        let packed = PackedLists::build(&lists, index.dict.len());
        let feat = *lists
            .features()
            .iter()
            .max_by_key(|f| lists.list(**f).len())
            .unwrap();
        let full = lists.list(feat).len();
        let mut cur = packed.cursor(feat, 0.25);
        let expect = prefix_len(full, 0.25);
        assert_eq!(cur.len(), expect);
        let mut n = 0;
        while cur.next_entry().is_some() {
            n += 1;
        }
        assert_eq!(n, expect);
    }

    #[test]
    fn packed_scan_touches_fewer_pages_than_unpacked() {
        // The point of packing: fewer bytes ⇒ fewer page fetches for the
        // same logical scan.
        let (c, index, lists) = setup();
        let packed = PackedLists::with_config(
            &lists,
            index.dict.len(),
            PoolConfig {
                page_size: 256,
                capacity_pages: 4,
                lookahead_pages: 1,
            },
            CostModel::default(),
        );
        let plain = crate::disklists::DiskLists::with_config(
            &c,
            &index.dict,
            &lists,
            PoolConfig {
                page_size: 256,
                capacity_pages: 4,
                lookahead_pages: 1,
            },
            CostModel::default(),
        );
        let feat = *lists
            .features()
            .iter()
            .max_by_key(|f| lists.list(**f).len())
            .unwrap();
        let mut pc = packed.cursor(feat, 1.0);
        while pc.next_entry().is_some() {}
        let mut uc = plain.cursor(feat, 1.0);
        while uc.next_entry().is_some() {}
        let (ps, us) = (packed.io_stats(), plain.io_stats());
        assert!(
            ps.total_fetches() <= us.total_fetches(),
            "packed {ps:?} vs plain {us:?}"
        );
    }

    #[test]
    fn io_reset_clears_stats() {
        let (_, index, lists) = setup();
        let packed = PackedLists::build(&lists, index.dict.len());
        let feat = lists.features()[0];
        let mut cur = packed.cursor(feat, 1.0);
        while cur.next_entry().is_some() {}
        packed.reset_io();
        assert_eq!(packed.io_stats(), IoStats::default());
    }

    #[test]
    fn tiny_dictionary_gets_one_bit_ids() {
        // A degenerate single-phrase dictionary still roundtrips.
        use ipm_corpus::{CorpusBuilder, TokenizerConfig};
        let mut b = CorpusBuilder::new(TokenizerConfig::default());
        b.add_text("alpha beta");
        b.add_text("alpha beta");
        let c = b.build();
        let index = CorpusIndex::build(
            &c,
            &IndexConfig {
                mining: MiningConfig {
                    min_df: 2,
                    max_len: 2,
                    min_len: 2,
                },
            },
        );
        assert_eq!(index.dict.len(), 1);
        let lists = WordPhraseLists::build(&c, &index, &WordListConfig::default());
        let file = PackedWordListFile::build(&lists, index.dict.len());
        assert_eq!(file.id_bits(), 1);
        assert_eq!(file.entry_bits(), 65);
        let mut pool = small_pool();
        for feat in lists.features() {
            for (i, e) in lists.list(*feat).iter().enumerate() {
                let got = file.read_entry(*feat, i, &mut pool).unwrap();
                assert_eq!(got.phrase, e.phrase);
                assert_eq!(got.prob.to_bits(), e.prob.to_bits());
            }
        }
    }
}
