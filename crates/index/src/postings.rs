//! Sorted document-id postings lists and set algebra over them.
//!
//! Queries define `D'` as the union (OR) or intersection (AND) of
//! per-feature document sets (paper Eq. 2); the exact scorer and all
//! baselines materialize `D'` through these operations.

use ipm_corpus::DocId;

/// A strictly increasing list of document ids.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Postings {
    docs: Vec<DocId>,
}

impl Postings {
    /// Creates an empty postings list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from an arbitrary vector: sorts and deduplicates.
    pub fn from_unsorted(mut docs: Vec<DocId>) -> Self {
        docs.sort_unstable();
        docs.dedup();
        Self { docs }
    }

    /// Builds from a vector that is already strictly increasing.
    ///
    /// # Panics
    /// Panics in debug builds if the invariant does not hold.
    pub fn from_sorted(docs: Vec<DocId>) -> Self {
        debug_assert!(
            docs.windows(2).all(|w| w[0] < w[1]),
            "postings not strictly sorted"
        );
        Self { docs }
    }

    /// Appends a document id that must be greater than the current last.
    ///
    /// # Panics
    /// Panics in debug builds if `doc` is not strictly greater.
    #[inline]
    pub fn push(&mut self, doc: DocId) {
        debug_assert!(self.docs.last().is_none_or(|&last| last < doc));
        self.docs.push(doc);
    }

    /// Document count (this is `freq(·, D)` under document-frequency
    /// semantics, see `DESIGN.md` §2).
    #[inline]
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the list is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// The underlying sorted slice.
    #[inline]
    pub fn as_slice(&self) -> &[DocId] {
        &self.docs
    }

    /// Membership test, O(log n).
    #[inline]
    pub fn contains(&self, doc: DocId) -> bool {
        self.docs.binary_search(&doc).is_ok()
    }

    /// Intersection with another list.
    ///
    /// Chooses between a linear merge and a galloping search automatically:
    /// when one list is much shorter, galloping (exponential probing into
    /// the longer list) is asymptotically better — `O(s · log(l/s))`.
    pub fn intersect(&self, other: &Postings) -> Postings {
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        if small.is_empty() {
            return Postings::new();
        }
        // Galloping pays off when the size ratio is large; 16 is a common
        // threshold (used e.g. by Lucene's intersection).
        if large.len() / small.len().max(1) >= 16 {
            intersect_gallop(small.as_slice(), large.as_slice())
        } else {
            intersect_merge(small.as_slice(), large.as_slice())
        }
    }

    /// Cardinality of the intersection without materializing it.
    pub fn intersect_len(&self, other: &Postings) -> usize {
        // Reuses the same adaptive strategy; the allocation for small
        // outputs is cheap, but hot callers (P(q|p) construction) use the
        // counting pass in `wordlists` instead.
        self.intersect(other).len()
    }

    /// Union with another list.
    pub fn union(&self, other: &Postings) -> Postings {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (a, b) = (self.as_slice(), other.as_slice());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        Postings { docs: out }
    }

    /// Intersection of many lists (AND query with `r` features, Eq. 2).
    ///
    /// Processes smallest-first so intermediate results only shrink.
    /// Returns the full document universe error-free only for `lists`
    /// non-empty; an empty input yields an empty result (an AND of zero
    /// features selects nothing in this system).
    pub fn intersect_many(lists: &[&Postings]) -> Postings {
        match lists.len() {
            0 => Postings::new(),
            1 => lists[0].clone(),
            _ => {
                let mut order: Vec<&Postings> = lists.to_vec();
                order.sort_by_key(|p| p.len());
                let mut acc = order[0].intersect(order[1]);
                for p in &order[2..] {
                    if acc.is_empty() {
                        break;
                    }
                    acc = acc.intersect(p);
                }
                acc
            }
        }
    }

    /// Union of many lists (OR query, Eq. 2) via a k-way merge.
    pub fn union_many(lists: &[&Postings]) -> Postings {
        match lists.len() {
            0 => Postings::new(),
            1 => lists[0].clone(),
            2 => lists[0].union(lists[1]),
            _ => {
                // Pairwise balanced merging keeps each element copied
                // O(log k) times.
                let mut layer: Vec<Postings> = lists.iter().map(|p| (*p).clone()).collect();
                while layer.len() > 1 {
                    let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                    let mut it = layer.chunks(2);
                    for chunk in it.by_ref() {
                        next.push(if chunk.len() == 2 {
                            chunk[0].union(&chunk[1])
                        } else {
                            chunk[0].clone()
                        });
                    }
                    layer = next;
                }
                layer.pop().unwrap()
            }
        }
    }

    /// Iterates over the documents.
    pub fn iter(&self) -> impl Iterator<Item = DocId> + '_ {
        self.docs.iter().copied()
    }
}

impl FromIterator<DocId> for Postings {
    fn from_iter<T: IntoIterator<Item = DocId>>(iter: T) -> Self {
        Postings::from_unsorted(iter.into_iter().collect())
    }
}

fn intersect_merge(a: &[DocId], b: &[DocId]) -> Postings {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    Postings { docs: out }
}

fn intersect_gallop(small: &[DocId], large: &[DocId]) -> Postings {
    let mut out = Vec::with_capacity(small.len());
    let mut lo = 0usize;
    for &needle in small {
        // Exponential probe from `lo`: grow the window until its last
        // element is >= needle (or the list ends), then binary search it.
        let mut bound = 1usize;
        while lo + bound <= large.len() && large[lo + bound - 1] < needle {
            bound <<= 1;
        }
        let hi = (lo + bound).min(large.len());
        match large[lo..hi].binary_search(&needle) {
            Ok(pos) => {
                out.push(needle);
                lo += pos + 1;
            }
            Err(pos) => {
                lo += pos;
            }
        }
        if lo >= large.len() {
            break;
        }
    }
    Postings { docs: out }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(ids: &[u32]) -> Postings {
        Postings::from_unsorted(ids.iter().map(|&i| DocId(i)).collect())
    }

    fn ids(p: &Postings) -> Vec<u32> {
        p.iter().map(|d| d.raw()).collect()
    }

    #[test]
    fn from_unsorted_normalizes() {
        let x = p(&[5, 1, 3, 1, 5]);
        assert_eq!(ids(&x), vec![1, 3, 5]);
    }

    #[test]
    fn intersect_basic() {
        assert_eq!(ids(&p(&[1, 2, 3]).intersect(&p(&[2, 3, 4]))), vec![2, 3]);
        assert_eq!(ids(&p(&[1, 2]).intersect(&p(&[3, 4]))), Vec::<u32>::new());
        assert!(p(&[]).intersect(&p(&[1])).is_empty());
    }

    #[test]
    fn intersect_is_commutative() {
        let a = p(&[1, 4, 9, 16, 25]);
        let b = p(&[2, 4, 8, 16, 32]);
        assert_eq!(ids(&a.intersect(&b)), ids(&b.intersect(&a)));
    }

    #[test]
    fn galloping_path_matches_merge_path() {
        // Force the galloping path with a large size ratio.
        let small = p(&[3, 500, 997]);
        let large = Postings::from_sorted((0..1000).map(DocId).collect());
        let got = small.intersect(&large);
        assert_eq!(ids(&got), vec![3, 500, 997]);

        let small2 = p(&[1001, 2000]);
        assert!(small2.intersect(&large).is_empty());
    }

    #[test]
    fn galloping_with_misses_between_hits() {
        let small = p(&[0, 10, 20, 999, 1500]);
        let large = Postings::from_sorted((0..1000).filter(|i| i % 2 == 0).map(DocId).collect());
        let got = small.intersect(&large);
        assert_eq!(ids(&got), vec![0, 10, 20]);
    }

    #[test]
    fn union_basic() {
        assert_eq!(ids(&p(&[1, 3]).union(&p(&[2, 3, 4]))), vec![1, 2, 3, 4]);
        assert_eq!(ids(&p(&[]).union(&p(&[7]))), vec![7]);
    }

    #[test]
    fn intersect_many_orders_by_size() {
        let a = p(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let b = p(&[2, 4, 6, 8]);
        let c = p(&[4, 8]);
        let got = Postings::intersect_many(&[&a, &b, &c]);
        assert_eq!(ids(&got), vec![4, 8]);
    }

    #[test]
    fn intersect_many_edge_cases() {
        assert!(Postings::intersect_many(&[]).is_empty());
        let a = p(&[1, 2]);
        assert_eq!(ids(&Postings::intersect_many(&[&a])), vec![1, 2]);
        let empty = p(&[]);
        assert!(Postings::intersect_many(&[&a, &empty, &a]).is_empty());
    }

    #[test]
    fn union_many_kway() {
        let a = p(&[1, 5]);
        let b = p(&[2, 5]);
        let c = p(&[3]);
        let d = p(&[4, 1]);
        let got = Postings::union_many(&[&a, &b, &c, &d]);
        assert_eq!(ids(&got), vec![1, 2, 3, 4, 5]);
        assert!(Postings::union_many(&[]).is_empty());
        assert_eq!(ids(&Postings::union_many(&[&c])), vec![3]);
    }

    #[test]
    fn contains_and_len() {
        let a = p(&[10, 20, 30]);
        assert!(a.contains(DocId(20)));
        assert!(!a.contains(DocId(25)));
        assert_eq!(a.len(), 3);
        assert_eq!(a.intersect_len(&p(&[20, 30, 40])), 2);
    }

    #[test]
    fn push_maintains_order() {
        let mut a = Postings::new();
        a.push(DocId(1));
        a.push(DocId(5));
        assert_eq!(ids(&a), vec![1, 5]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic]
    fn push_out_of_order_panics_in_debug() {
        let mut a = Postings::new();
        a.push(DocId(5));
        a.push(DocId(5));
    }

    #[test]
    fn from_iterator() {
        let a: Postings = [DocId(3), DocId(1), DocId(3)].into_iter().collect();
        assert_eq!(ids(&a), vec![1, 3]);
    }

    #[test]
    fn randomized_against_naive() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let a: Vec<u32> = (0..rng.gen_range(0..200))
                .map(|_| rng.gen_range(0..300))
                .collect();
            let b: Vec<u32> = (0..rng.gen_range(0..2000))
                .map(|_| rng.gen_range(0..3000))
                .collect();
            let pa = p(&a);
            let pb = p(&b);
            use std::collections::BTreeSet;
            let sa: BTreeSet<u32> = a.into_iter().collect();
            let sb: BTreeSet<u32> = b.into_iter().collect();
            let want_i: Vec<u32> = sa.intersection(&sb).copied().collect();
            let want_u: Vec<u32> = sa.union(&sb).copied().collect();
            assert_eq!(ids(&pa.intersect(&pb)), want_i);
            assert_eq!(ids(&pa.union(&pb)), want_u);
        }
    }
}
