//! Ingestion-lifecycle benchmarks: what does serving under churn cost?
//!
//! * `query_under_delta/*` — delta-corrected query latency as the side
//!   index grows ({0, 10, 100, 1000} ingested documents), across all
//!   three backends. The paper's §4.5.1 prediction: corrections are a per-entry
//!   surcharge on the candidate set, so latency grows with delta size —
//!   this measures the curve the compaction policy must react to.
//! * `compaction/*` — the cost of `compact()` itself (ingest one
//!   document + flush: corpus reconstruction + full miner rebuild +
//!   atomic swap), paired with a delete so the corpus does not grow
//!   across iterations.
//! * `post_compaction_latency` — query latency right after a compaction:
//!   back on the delta-free fast path (compare with
//!   `query_under_delta/memory/0`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ipm_core::{Algorithm, BackendChoice, EngineConfig, MinerConfig, PhraseMiner, QueryEngine};
use ipm_corpus::DocId;

fn corpus() -> ipm_corpus::Corpus {
    ipm_corpus::synth::generate(&ipm_corpus::synth::tiny()).0
}

/// An engine with the result cache off: every measured request pays the
/// full (possibly delta-corrected) traversal.
fn engine(corpus: &ipm_corpus::Corpus) -> QueryEngine {
    QueryEngine::with_config(
        PhraseMiner::build(corpus, MinerConfig::default()),
        EngineConfig {
            cache: None,
            ..Default::default()
        },
    )
}

fn top_query(e: &QueryEngine) -> String {
    let miner = e.miner();
    let c = miner.corpus();
    let top = ipm_corpus::stats::top_words_by_df(c, 2);
    let words: Vec<&str> = top
        .iter()
        .map(|&(w, _)| c.words().term(w).unwrap())
        .collect();
    words.join(" OR ")
}

fn bench_query_under_delta(c: &mut Criterion) {
    let corpus = corpus();
    let src = corpus.doc(DocId(0)).unwrap().clone();
    for backend in [
        BackendChoice::Memory,
        BackendChoice::Disk,
        BackendChoice::Block,
    ] {
        let name = match backend {
            BackendChoice::Memory => "memory",
            BackendChoice::Disk => "disk",
            BackendChoice::Block => "block",
        };
        let mut group = c.benchmark_group(format!("query_under_delta/{name}"));
        for delta_docs in [0usize, 10, 100, 1000] {
            let e = engine(&corpus);
            let batch: Vec<(Vec<ipm_corpus::WordId>, Vec<ipm_corpus::FacetId>)> = (0..delta_docs)
                .map(|_| (src.tokens.clone(), src.facets.clone()))
                .collect();
            e.ingest_documents(&batch);
            let q = top_query(&e);
            group.bench_with_input(
                BenchmarkId::from_parameter(delta_docs),
                &delta_docs,
                |b, _| {
                    b.iter(|| {
                        e.request(q.clone())
                            .k(10)
                            .algorithm(Algorithm::Nra)
                            .backend(backend)
                            .use_delta(true)
                            .run()
                            .unwrap()
                    });
                },
            );
        }
        group.finish();
    }
}

fn bench_compaction(c: &mut Criterion) {
    let corpus = corpus();
    let src = corpus.doc(DocId(0)).unwrap().clone();
    let mut group = c.benchmark_group("compaction");
    for batch in [1usize, 100] {
        let e = engine(&corpus);
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter(|| {
                // Ingest `batch` documents and flush them; then delete the
                // same number and flush again, so the corpus size is a
                // fixed point across iterations (two rebuilds measured).
                let docs: Vec<_> = (0..batch)
                    .map(|_| (src.tokens.clone(), src.facets.clone()))
                    .collect();
                e.ingest_documents(&docs);
                let grown = e.compact();
                assert!(grown.compacted);
                let n = grown.docs;
                for i in 0..batch {
                    e.delete_document(DocId((n - 1 - i) as u32));
                }
                let shrunk = e.compact();
                assert!(shrunk.compacted);
            });
        });
    }
    group.finish();

    // Latency recovery: right after a compaction the delta is empty and
    // the query path is the plain exact one again.
    let e = engine(&corpus);
    let docs: Vec<_> = (0..100)
        .map(|_| (src.tokens.clone(), src.facets.clone()))
        .collect();
    e.ingest_documents(&docs);
    e.compact();
    let q = top_query(&e);
    c.bench_function("post_compaction_latency", |b| {
        b.iter(|| {
            let resp = e
                .request(q.clone())
                .k(10)
                .use_delta(true) // no-op now: the delta was flushed
                .run()
                .unwrap();
            assert!(resp.completeness.is_exact());
            resp
        });
    });
}

criterion_group!(benches, bench_query_under_delta, bench_compaction);
criterion_main!(benches);
