//! Integration tests of the `ipm_server` subsystem: many concurrent TCP
//! clients against a real loopback server, compared byte-for-byte with
//! direct `QueryEngine::execute` calls, plus coalescing and
//! admission-control (overload shedding) behaviour.

use interesting_phrases::prelude::*;
use ipm_core::EngineConfig;
use ipm_server::wire;
use ipm_server::ErrorKind;
use std::sync::{Arc, Barrier};

fn build_engine(cache: bool) -> QueryEngine {
    let (corpus, _) = ipm_corpus::synth::generate(&ipm_corpus::synth::tiny());
    let miner = PhraseMiner::build(&corpus, MinerConfig::default());
    let config = EngineConfig {
        cache: cache.then(Default::default),
        ..Default::default()
    };
    QueryEngine::with_config(miner, config)
}

fn top_terms(engine: &QueryEngine, n: usize) -> Vec<String> {
    ipm_corpus::stats::top_words_by_df(engine.miner().corpus(), n)
        .iter()
        .map(|&(w, _)| engine.miner().corpus().words().term(w).unwrap().to_owned())
        .collect()
}

fn spawn(engine: QueryEngine, workers: usize, queue_depth: usize) -> ipm_server::ServerHandle {
    ipm_server::Server::spawn(
        engine,
        ipm_server::ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers,
            queue_depth,
            fault_delay_ms: 0,
        },
    )
    .expect("bind loopback")
}

/// ≥ 8 concurrent TCP clients, mixed algorithms and backends: every
/// served response's hits must be byte-identical to a direct
/// `QueryEngine::execute` call with the same request.
#[test]
fn eight_clients_serve_byte_identical_hits() {
    let handle = spawn(build_engine(true), 4, 64);
    let addr = handle.addr().to_string();
    let terms = top_terms(handle.engine(), 5);
    let queries: Vec<String> = (0..terms.len() - 1)
        .flat_map(|i| {
            [
                format!("{} AND {}", terms[i], terms[i + 1]),
                format!("{} OR {}", terms[i], terms[i + 1]),
            ]
        })
        .collect();

    let methods = ["nra", "smj", "ta", "exact"];
    let backends = ["memory", "disk"];
    let engine = handle.engine().clone();
    std::thread::scope(|s| {
        for t in 0..8usize {
            let addr = addr.clone();
            let queries = queries.clone();
            let engine = engine.clone();
            s.spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                for (i, q) in queries.iter().enumerate() {
                    let mut req = WireSearchRequest::new(q.clone());
                    req.k = 5;
                    req.algorithm =
                        wire::algorithm_from_str(methods[(t + i) % methods.len()]).unwrap();
                    req.backend =
                        wire::backend_from_str(backends[(t + i) % backends.len()]).unwrap();
                    let response = client.search(&req).expect("roundtrip");
                    assert_eq!(
                        response["ok"].as_bool(),
                        Some(true),
                        "server error for `{q}`: {response:?}"
                    );
                    // Re-encode the served hits and a direct engine
                    // execution with the same request; the bytes must
                    // match exactly.
                    let served = serde_json::to_string(&response["result"]["hits"]).unwrap();
                    let query = engine.miner().parse_query_str(q).unwrap();
                    let direct = engine.execute(query, req.k, &req.options());
                    let want = serde_json::to_string(&wire::hits_value(&direct)).unwrap();
                    assert_eq!(
                        served, want,
                        "hits diverge from direct execution for `{q}` ({req:?})"
                    );
                    assert!(!direct.hits.is_empty(), "degenerate comparison for `{q}`");
                }
            });
        }
    });
    let stats = handle.stats();
    assert_eq!(stats.protocol_errors, 0);
    assert!(stats.served >= 8 * queries.len() as u64);
}

/// Sharded requests over the wire: the `shards` field fans the query out
/// server-side, hits stay byte-identical to the unsharded answer, the
/// response reports the resolved fanout, and the stats verb surfaces the
/// shard counters.
#[test]
fn sharded_requests_over_the_wire() {
    let handle = spawn(build_engine(false), 2, 16);
    let addr = handle.addr().to_string();
    let terms = top_terms(handle.engine(), 2);
    let mut client = Client::connect(&addr).expect("connect");
    let mut base = WireSearchRequest::new(format!("{} OR {}", terms[0], terms[1]));
    base.k = 5;
    let unsharded = client.search(&base).expect("roundtrip");
    assert_eq!(unsharded["ok"].as_bool(), Some(true));
    assert_eq!(unsharded["result"]["shards"].as_u64(), Some(1));
    for n in [2u64, 3, 8] {
        let mut req = base.clone();
        req.shards = Some(n as usize);
        let resp = client.search(&req).expect("roundtrip");
        assert_eq!(resp["ok"].as_bool(), Some(true), "{n} shards: {resp:?}");
        assert_eq!(resp["result"]["shards"].as_u64(), Some(n));
        assert_eq!(
            serde_json::to_string(&resp["result"]["hits"]).unwrap(),
            serde_json::to_string(&unsharded["result"]["hits"]).unwrap(),
            "{n}-shard wire results must be byte-identical to unsharded"
        );
    }
    let stats = client.stats().expect("stats");
    let s = &stats["stats"];
    assert_eq!(s["shards"]["default"].as_u64(), Some(1));
    assert_eq!(s["shards"]["sharded_queries"].as_u64(), Some(3));
    assert_eq!(handle.stats().sharded_queries, 3);
    assert_eq!(handle.stats().default_shards, 1);
}

/// Duplicate in-flight queries coalesce onto one execution: a barrier
/// burst of 8 identical requests (cache disabled, so the result cache
/// cannot absorb the repeats) must report a positive coalesced counter
/// and strictly fewer engine executions than requests.
#[test]
fn duplicate_queries_coalesce_onto_one_execution() {
    let handle = spawn(build_engine(false), 2, 64);
    let terms = top_terms(handle.engine(), 2);
    let mut req = WireSearchRequest::new(format!("{} OR {}", terms[0], terms[1]));
    req.k = 5;
    req.delay_ms = 500; // hold the flight open across the whole burst
    let report = run_load(&handle.addr().to_string(), 8, 1, &req).expect("load run");

    assert_eq!(report.sent, 8);
    assert_eq!(
        report.ok, 8,
        "every coalesced request still gets a response"
    );
    assert_eq!(report.errors, 0);
    assert_eq!(report.overloaded, 0);
    assert!(
        report.coalesced >= 1,
        "duplicate concurrent queries must coalesce: {report}"
    );
    let stats = handle.stats();
    assert_eq!(stats.coalesced, report.coalesced);
    let executed = handle.engine().queries_served();
    assert!(
        executed < 8,
        "coalescing must execute fewer queries than requests (got {executed})"
    );
    assert_eq!(executed + report.coalesced, 8, "every request is accounted");
}

/// When the queue depth is exceeded, requests are shed with a structured
/// `overloaded` error: no hangs, no panics, and the server keeps serving
/// afterwards.
#[test]
fn queue_overflow_sheds_with_structured_errors() {
    let handle = spawn(build_engine(false), 1, 1);
    let addr = handle.addr().to_string();
    let terms = top_terms(handle.engine(), 2);
    let query = format!("{} OR {}", terms[0], terms[1]);

    let clients = 12usize;
    let barrier = Arc::new(Barrier::new(clients));
    let mut outcomes = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for i in 0..clients {
            let addr = addr.clone();
            let query = query.clone();
            let barrier = barrier.clone();
            handles.push(s.spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                let mut req = WireSearchRequest::new(query);
                req.k = 3 + i; // distinct keys: coalescing must not mask the overflow
                req.delay_ms = 150;
                barrier.wait();
                client.search(&req).expect("a response, never a hang")
            }));
        }
        for h in handles {
            outcomes.push(h.join().expect("no client panics"));
        }
    });

    let ok = outcomes
        .iter()
        .filter(|v| v["ok"].as_bool() == Some(true))
        .count();
    let overloaded = outcomes
        .iter()
        .filter(|v| {
            v["ok"].as_bool() == Some(false)
                && v["error"]["kind"].as_str().and_then(ErrorKind::from_name)
                    == Some(ErrorKind::Overloaded)
        })
        .count();
    assert_eq!(
        ok + overloaded,
        clients,
        "every response is ok or a structured overloaded error: {outcomes:?}"
    );
    assert!(ok >= 1, "admitted work still completes");
    assert!(
        overloaded >= 1,
        "exceeding the queue depth must shed with `overloaded`"
    );
    for v in &outcomes {
        if v["ok"].as_bool() == Some(false) {
            assert!(
                v["error"]["message"].as_str().is_some(),
                "shed errors carry a message"
            );
        }
    }
    assert_eq!(handle.stats().shed, overloaded as u64);

    // The server is healthy after shedding: a fresh request succeeds.
    let mut client = Client::connect(&addr).expect("reconnect");
    let after = client
        .search(&WireSearchRequest::new(query))
        .expect("roundtrip");
    assert_eq!(after["ok"].as_bool(), Some(true));
}

/// The control verbs: ping, stats (counters consistent with the handle
/// snapshot), and protocol-initiated graceful shutdown.
#[test]
fn control_verbs_and_graceful_shutdown() {
    let handle = spawn(build_engine(true), 2, 16);
    let addr = handle.addr().to_string();
    let terms = top_terms(handle.engine(), 2);
    let mut client = Client::connect(&addr).expect("connect");

    assert_eq!(client.ping().unwrap()["pong"].as_bool(), Some(true));

    // Malformed lines are answered with parse errors, not disconnects.
    let bad = client.roundtrip("this is not json\n").unwrap();
    assert_eq!(bad["error"]["kind"], "parse");
    let unknown = client
        .roundtrip(&format!("{{\"query\":\"zzz_unknown_word_{}\"}}\n", 42))
        .unwrap();
    assert_eq!(unknown["error"]["kind"], "query");

    let mut req = WireSearchRequest::new(format!("{} AND {}", terms[0], terms[1]));
    req.backend = ipm_core::BackendChoice::Disk;
    assert_eq!(client.search(&req).unwrap()["ok"].as_bool(), Some(true));
    assert_eq!(
        client.search(&req).unwrap()["result"]["served_from_cache"],
        true
    );

    let stats = client.stats().unwrap();
    let s = &stats["stats"];
    assert_eq!(s["served"].as_u64(), Some(2));
    assert_eq!(s["protocol_errors"].as_u64(), Some(2));
    assert_eq!(s["workers"].as_u64(), Some(2));
    assert!(s["cache"]["hits"].as_u64().unwrap() >= 1);
    assert!(
        s["io"]["disk"]["sequential_fetches"].as_u64().unwrap() > 0,
        "disk-backed query must show up in the per-backend IO aggregate"
    );
    // The memory backend performs no simulated IO, so it has no `io`
    // entry; its real work is reported under `access` (the disk queries
    // above touched the disk backend's sorted-access counters too).
    assert!(s["io"]["memory"].is_null());
    assert!(
        s["access"]["disk"]["sorted_accesses"].as_u64().unwrap() > 0,
        "uncached disk execution must aggregate into the access counters"
    );
    assert!(s["access"]["memory"]["entries_skipped"].as_u64().is_some());
    assert!(s["access"]["block"]["rounds"].as_u64().is_some());
    let snap = handle.stats();
    assert_eq!(snap.served, 2);
    assert_eq!(snap.protocol_errors, 2);

    // Graceful shutdown over the wire: the verb is acknowledged, then the
    // server drains and joins.
    let bye = client.shutdown_server().unwrap();
    assert_eq!(bye["bye"].as_bool(), Some(true));
    handle.join();

    // The port no longer accepts work.
    let gone = Client::connect(&addr).and_then(|mut c| c.ping()).is_err();
    assert!(gone, "server must stop accepting after graceful shutdown");

    // Handle-initiated shutdown is idempotent.
    let mut h2 = spawn(build_engine(true), 1, 4);
    h2.shutdown();
    h2.shutdown();
}

/// A request line exceeding the server's cap must not buffer unboundedly:
/// the connection is answered with a parse error (when the response
/// survives the close) or dropped, and the server stays healthy.
#[test]
fn oversized_request_lines_are_rejected_not_buffered() {
    let handle = spawn(build_engine(true), 1, 4);
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    // 300 KiB without a newline exceeds the server's line cap. An Err is
    // acceptable too: the server may close the connection mid-write.
    let huge = "x".repeat(300 * 1024);
    if let Ok(resp) = client.roundtrip(&huge) {
        assert_eq!(resp["error"]["kind"], "parse");
    }
    // The server survives and keeps serving fresh connections.
    let terms = top_terms(handle.engine(), 2);
    let mut fresh = Client::connect(&addr).expect("reconnect");
    let ok = fresh
        .search(&WireSearchRequest::new(format!(
            "{} OR {}",
            terms[0], terms[1]
        )))
        .expect("roundtrip");
    assert_eq!(ok["ok"].as_bool(), Some(true));
}

/// Load-generator sanity on a healthy server: zero protocol errors and a
/// throughput figure (this is the same closed-loop driver CI's smoke job
/// runs against `ipm serve`).
#[test]
fn load_generator_reports_clean_run() {
    let handle = spawn(build_engine(true), 4, 64);
    let terms = top_terms(handle.engine(), 2);
    let mut req = WireSearchRequest::new(format!("{} OR {}", terms[0], terms[1]));
    req.k = 5;
    req.delay_ms = 2;
    let report = run_load(&handle.addr().to_string(), 8, 5, &req).expect("load");
    assert_eq!(report.sent, 40);
    assert_eq!(report.ok + report.overloaded, 40);
    assert_eq!(report.errors, 0, "clean run: {report}");
    assert!(report.throughput() > 0.0);
    // Identical requests: after the first execution the result cache
    // serves repeats, and the burst itself coalesces — the engine must
    // have executed far fewer than 40 queries.
    let cache = handle.engine().cache_stats();
    assert!(cache.hits > 0, "repeats must hit the result cache");
}

/// Satellite: the server-side clamps are wire-visible and the *clamped*
/// values are what `CacheKey` sees. `shards` clamps to `MAX_SHARDS` (64)
/// — the response reports the clamped fanout and an explicit `shards: 64`
/// request hits the same cache entry. `delay_ms` clamps to 5000 and is
/// *outside* the cache key: requests differing only in delay share one
/// entry (and the clamp itself is asserted without sleeping through it).
#[test]
fn wire_clamps_are_enforced_and_cache_keyed() {
    assert_eq!(ipm_server::MAX_DELAY_MS, 5_000);
    assert_eq!(
        ipm_server::clamped_delay(u64::MAX),
        std::time::Duration::from_millis(5_000),
        "the worker-side delay clamp"
    );
    assert_eq!(ipm_core::MAX_SHARDS, 64);

    let handle = spawn(build_engine(true), 2, 16);
    let addr = handle.addr().to_string();
    let terms = top_terms(handle.engine(), 2);
    let mut client = Client::connect(&addr).expect("connect");

    // An absurd fanout is clamped, not honoured and not rejected.
    let mut req = WireSearchRequest::new(format!("{} OR {}", terms[0], terms[1]));
    req.k = 5;
    req.shards = Some(1_000);
    let over = client.search(&req).expect("roundtrip");
    assert_eq!(over["ok"].as_bool(), Some(true));
    assert_eq!(
        over["result"]["shards"].as_u64(),
        Some(64),
        "response must report the clamped fanout"
    );
    assert_eq!(over["result"]["served_from_cache"], false);

    // An explicit clamped value resolves to the same CacheKey: cache hit.
    req.shards = Some(64);
    let exact = client.search(&req).expect("roundtrip");
    assert_eq!(
        exact["result"]["served_from_cache"], true,
        "shards 1000 and 64 must share one cache entry (CacheKey sees the clamp)"
    );

    // delay_ms is applied outside the cache key: a different delay on an
    // otherwise identical request still hits the same entry.
    req.delay_ms = 30;
    let delayed = client.search(&req).expect("roundtrip");
    assert_eq!(
        delayed["result"]["served_from_cache"], true,
        "delay_ms must not fragment the cache"
    );
}

/// CI's deadline smoke, as a test: `deadline_ms: 1` under `delay_ms: 100`
/// load returns a structured `deadline_exceeded` error in bounded time
/// (the worker caps the simulated delay at the remaining deadline), the
/// stats counter moves, and the server keeps serving. A second scenario
/// parks the single worker and shows queue *wait* counting against the
/// budget: the queued request is dead on arrival at the worker.
#[test]
fn deadline_exceeded_is_structured_and_bounded() {
    let handle = spawn(build_engine(false), 1, 16);
    let addr = handle.addr().to_string();
    let terms = top_terms(handle.engine(), 2);
    let query = format!("{} OR {}", terms[0], terms[1]);

    // Direct: tiny deadline + large simulated delay.
    let mut client = Client::connect(&addr).expect("connect");
    let mut req = WireSearchRequest::new(query.clone());
    req.delay_ms = 100;
    req.deadline_ms = Some(1);
    let started = std::time::Instant::now();
    let resp = client.search(&req).expect("a response, never a hang");
    assert!(
        started.elapsed() < std::time::Duration::from_secs(2),
        "deadline_exceeded must come back promptly, took {:?}",
        started.elapsed()
    );
    assert_eq!(resp["ok"].as_bool(), Some(false));
    assert_eq!(resp["error"]["kind"], "deadline_exceeded");

    // Queue wait counts: park the single worker with a long delay, then
    // queue a short-deadline request behind it.
    let parked = std::thread::spawn({
        let addr = addr.clone();
        let query = query.clone();
        move || {
            let mut c = Client::connect(&addr).expect("connect");
            let mut slow = WireSearchRequest::new(query);
            slow.delay_ms = 400;
            c.search(&slow).expect("slow request completes")
        }
    });
    // Give the slow request time to occupy the worker.
    std::thread::sleep(std::time::Duration::from_millis(100));
    let mut queued = WireSearchRequest::new(query.clone());
    queued.deadline_ms = Some(50); // expires while waiting in the queue
    let resp = client.search(&queued).expect("roundtrip");
    assert_eq!(
        resp["error"]["kind"], "deadline_exceeded",
        "queue wait must count against the deadline: {resp:?}"
    );
    assert_eq!(parked.join().unwrap()["ok"].as_bool(), Some(true));

    // Counters moved and the server still serves.
    assert!(handle.stats().deadline_exceeded >= 2);
    assert_eq!(client.ping().unwrap()["pong"].as_bool(), Some(true));
    let fresh = client
        .search(&WireSearchRequest::new(query))
        .expect("roundtrip");
    assert_eq!(fresh["ok"].as_bool(), Some(true));
}

/// An `io_budget` over the wire truncates a disk-backed query: the
/// response is marked `completeness: truncated (io)`, carries its partial
/// IoStats, and the `budget_truncated` counter moves.
#[test]
fn io_budget_truncates_over_the_wire() {
    let (corpus, _) = ipm_corpus::synth::generate(&ipm_corpus::synth::tiny());
    let engine = QueryEngine::with_config(
        PhraseMiner::build(&corpus, MinerConfig::default()),
        EngineConfig {
            cache: Some(Default::default()),
            pool: ipm_storage::PoolConfig {
                page_size: 256,
                capacity_pages: 8,
                lookahead_pages: 1,
            },
            ..Default::default()
        },
    );
    let handle = spawn(engine, 2, 16);
    let terms = top_terms(handle.engine(), 2);
    let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
    let mut req = WireSearchRequest::new(format!("{} OR {}", terms[0], terms[1]));
    req.k = 100;
    req.backend = ipm_core::BackendChoice::Disk;
    req.io_budget = Some(10);
    let resp = client.search(&req).expect("roundtrip");
    assert_eq!(resp["ok"].as_bool(), Some(true), "{resp:?}");
    assert_eq!(resp["result"]["completeness"]["kind"], "truncated");
    assert_eq!(resp["result"]["completeness"]["budget"], "io");
    let fetches = resp["result"]["io"]["sequential_fetches"].as_u64().unwrap()
        + resp["result"]["io"]["random_fetches"].as_u64().unwrap();
    assert!(fetches > 0 && fetches <= 10 + 8, "fetches {fetches}");
    assert!(handle.stats().budget_truncated >= 1);

    // The unbudgeted rerun is exact and was not served from the
    // truncated (uncached) result.
    req.io_budget = None;
    let full = client.search(&req).expect("roundtrip");
    assert_eq!(full["result"]["served_from_cache"], false);
    assert_eq!(full["result"]["completeness"]["kind"], "exact");
}

/// `{"batch": [...]}` shares one admission slot and returns per-item
/// results/errors: good items match direct engine execution byte for
/// byte, a bad item reports a structured per-item `query` error without
/// sinking its siblings.
#[test]
fn batch_requests_return_per_item_results() {
    let handle = spawn(build_engine(true), 2, 16);
    let terms = top_terms(handle.engine(), 3);
    let mut client = Client::connect(&handle.addr().to_string()).expect("connect");

    let mut good_a = WireSearchRequest::new(format!("{} OR {}", terms[0], terms[1]));
    good_a.k = 5;
    let bad = WireSearchRequest::new("zzz_unknown_word_zzz".to_owned());
    let mut good_b = WireSearchRequest::new(format!("{} AND {}", terms[1], terms[2]));
    good_b.k = 5;

    let resp = client
        .search_batch(&[good_a.clone(), bad, good_b.clone()])
        .expect("roundtrip");
    assert_eq!(resp["ok"].as_bool(), Some(true), "{resp:?}");
    let items = resp["batch"].as_array().expect("batch array");
    assert_eq!(items.len(), 3);

    let engine = handle.engine().clone();
    for (req, item) in [(good_a, &items[0]), (good_b, &items[2])] {
        assert_eq!(item["ok"].as_bool(), Some(true), "{item:?}");
        let query = engine.miner().parse_query_str(&req.query).unwrap();
        let direct = engine.execute(query, req.k, &req.options());
        assert_eq!(
            serde_json::to_string(&item["result"]["hits"]).unwrap(),
            serde_json::to_string(&wire::hits_value(&direct)).unwrap(),
            "batch item must match direct execution"
        );
    }
    assert_eq!(items[1]["ok"].as_bool(), Some(false));
    assert_eq!(items[1]["error"]["kind"], "query");

    // A top-level deadline of zero milliseconds makes every executable
    // item dead on arrival — per-item structured errors, not a hang.
    let q = format!("{} OR {}", terms[0], terms[1]);
    let doa = client
        .roundtrip(&format!(
            "{{\"batch\":[{{\"query\":\"{q}\"}},{{\"query\":\"{q}\"}}],\"deadline_ms\":0}}\n"
        ))
        .expect("roundtrip");
    let doa_items = doa["batch"].as_array().expect("batch array");
    for item in doa_items {
        assert_eq!(item["error"]["kind"], "deadline_exceeded", "{item:?}");
    }
}

/// Open-loop zipfian workload: arrivals on a fixed schedule, mixed
/// query/ingest traffic, no protocol errors, and a coherent latency
/// report (p50 ≤ p95 ≤ p99, every scheduled op accounted for).
#[test]
fn open_loop_generator_reports_clean_percentiles() {
    let handle = spawn(build_engine(false), 2, 64);
    let words = top_terms(handle.engine(), 8);
    let mut template = WireSearchRequest::new(String::new());
    template.k = 5;
    template.algorithm = ipm_server::wire::algorithm_from_str("smj").unwrap();
    let config = ipm_server::OpenLoopConfig {
        rate: 400.0,
        duration: std::time::Duration::from_millis(800),
        zipf_s: 1.1,
        conns: 2,
        ingest_every: 5,
        word_pool: words,
        template,
        ..Default::default()
    };
    let report =
        ipm_server::run_open_loop(&handle.addr().to_string(), &config).expect("open-loop run");
    assert_eq!(report.errors, 0, "{report}");
    assert!(report.ok > 0, "{report}");
    assert!(report.ingests > 0, "mixed workload must ingest: {report}");
    assert_eq!(report.scheduled, report.ok + report.shed + report.errors);
    assert!(report.p50_ms <= report.p95_ms && report.p95_ms <= report.p99_ms);
    let stats = handle.stats();
    assert_eq!(stats.protocol_errors, 0);
}

/// The wire batch verb routes through the fused shared-scan path: a
/// batch of word-sharing block-backend queries must return hits byte-
/// identical to single-shot execution, form at least one multi-member
/// group (`ipm_batch_groups_total` < items), and hit the decoded-block
/// cache while sharing list blocks within the group.
#[test]
fn batch_verb_routes_through_the_fused_path() {
    let handle = spawn(build_engine(false), 2, 16);
    let terms = top_terms(handle.engine(), 6);
    let mut client = Client::connect(&handle.addr().to_string()).expect("connect");

    let reqs: Vec<WireSearchRequest> = (1..terms.len())
        .map(|i| {
            let mut req = WireSearchRequest::new(format!("{} OR {}", terms[0], terms[i]));
            req.k = 5;
            req.algorithm = wire::algorithm_from_str("smj").unwrap();
            req.backend = wire::backend_from_str("block").unwrap();
            req
        })
        .collect();

    // Single-shot baselines first: the decode cache is batch-only, so
    // these cannot warm it — the batch below must produce its own
    // misses-then-hits inside one fused group.
    let singles: Vec<String> = reqs
        .iter()
        .map(|req| {
            let resp = client.search(req).expect("roundtrip");
            assert_eq!(resp["ok"].as_bool(), Some(true), "{resp:?}");
            serde_json::to_string(&resp["result"]["hits"]).unwrap()
        })
        .collect();

    let resp = client.search_batch(&reqs).expect("roundtrip");
    assert_eq!(resp["ok"].as_bool(), Some(true), "{resp:?}");
    let items = resp["batch"].as_array().expect("batch array");
    assert_eq!(items.len(), reqs.len());
    for (item, want) in items.iter().zip(&singles) {
        assert_eq!(item["ok"].as_bool(), Some(true), "{item:?}");
        assert_eq!(
            serde_json::to_string(&item["result"]["hits"]).unwrap(),
            *want,
            "fused batch item must match single-shot execution"
        );
    }

    let metrics = client.metrics().expect("metrics scrape");
    let counter = |name: &str| -> u64 {
        metrics
            .lines()
            .find_map(|l| l.strip_prefix(name).and_then(|v| v.trim().parse().ok()))
            .unwrap_or_else(|| panic!("{name} not exposed:\n{metrics}"))
    };
    let groups = counter("ipm_batch_groups_total ");
    let batch_items = counter("ipm_batch_items_total ");
    assert!(groups >= 1, "no batch groups recorded");
    assert_eq!(batch_items, reqs.len() as u64);
    assert!(
        groups < batch_items,
        "word-sharing queries must coalesce into fewer groups than items \
         (groups={groups}, items={batch_items})"
    );
    assert!(
        counter("ipm_decode_cache_hits_total ") > 0,
        "fused group over shared word lists must hit the decoded-block cache"
    );
    assert_eq!(
        counter("ipm_batch_fused_scans_saved_total "),
        counter("ipm_decode_cache_hits_total "),
        "fused-scans-saved is defined as decode-cache hits"
    );
}

/// Satellite of the lifecycle PR: wire requests with `use_delta: true`
/// must be *honoured* by every algorithm — before this PR SMJ/TA/exact
/// silently accepted and silently ignored the flag — and the response
/// completeness label must be `exact` for SMJ/TA/exact (the §4.5.1
/// corrections restore their exactness) while NRA stays
/// `approximate/delta_corrections` (its bounds rode the stale order).
#[test]
fn wire_use_delta_completeness_labels_per_algorithm() {
    let handle = spawn(build_engine(true), 2, 16);
    let terms = top_terms(handle.engine(), 2);
    let q = format!("{} OR {}", terms[0], terms[1]);
    let mut client = Client::connect(&handle.addr().to_string()).expect("connect");

    // With no delta attached the flag is a no-op: everything is exact.
    for method in ["nra", "smj", "ta", "exact"] {
        let mut req = WireSearchRequest::new(q.clone());
        req.algorithm = wire::algorithm_from_str(method).unwrap();
        req.use_delta = true;
        let resp = client.search(&req).expect("roundtrip");
        assert_eq!(
            resp["result"]["completeness"]["kind"], "exact",
            "{method}: empty delta must leave results exact"
        );
    }

    // Ingest over the wire: the delta becomes non-empty.
    let ingest = client
        .ingest(&[terms[0].clone(), terms[1].clone()], &[])
        .expect("roundtrip");
    assert_eq!(ingest["ok"].as_bool(), Some(true), "{ingest:?}");
    assert_eq!(ingest["delta_docs"].as_u64(), Some(1));

    for (method, backend) in [
        ("nra", "memory"),
        ("nra", "disk"),
        ("smj", "memory"),
        ("smj", "disk"),
        ("ta", "memory"),
        ("ta", "disk"),
        ("exact", "memory"),
        ("exact", "disk"),
    ] {
        let mut req = WireSearchRequest::new(q.clone());
        req.algorithm = wire::algorithm_from_str(method).unwrap();
        req.backend = wire::backend_from_str(backend).unwrap();
        req.use_delta = true;
        let resp = client.search(&req).expect("roundtrip");
        assert_eq!(
            resp["ok"].as_bool(),
            Some(true),
            "{method}/{backend}: {resp:?}"
        );
        let completeness = &resp["result"]["completeness"];
        match method {
            "nra" => {
                assert_eq!(
                    completeness["kind"], "approximate",
                    "{method}/{backend}: corrected NRA stays approximate"
                );
                assert_eq!(completeness["reason"], "delta_corrections");
            }
            _ => assert_eq!(
                completeness["kind"], "exact",
                "{method}/{backend}: corrections make {method} exact (paper §4.5.1)"
            ),
        }
    }
}

/// The full lifecycle over the wire: ingest → a delta-corrected query
/// reflects the new document → compact → the same query is exact again
/// and matches a from-scratch rebuild → stats counters moved. Queries
/// keep flowing during the compaction job.
#[test]
fn wire_lifecycle_ingest_compact_stats() {
    let handle = spawn(build_engine(true), 2, 16);
    let engine = handle.engine().clone();
    let terms = top_terms(&engine, 2);
    let q = format!("{} OR {}", terms[0], terms[1]);
    let mut client = Client::connect(&handle.addr().to_string()).expect("connect");

    let epoch0 = engine.epoch();
    let before = client.search(&WireSearchRequest::new(q.clone())).unwrap();
    assert_eq!(before["result"]["completeness"]["kind"], "exact");

    // Ingest a batch of copies of the top term so scores actually move.
    for _ in 0..10 {
        let reply = client.ingest(&[terms[0].clone()], &[]).expect("roundtrip");
        assert_eq!(reply["ok"].as_bool(), Some(true), "{reply:?}");
    }
    assert!(engine.epoch() > epoch0, "ingest must bump the epoch");

    // Unknown terms are reported, not silently dropped.
    let partial = client
        .ingest(
            &[terms[0].clone(), "zzz_unknown_word_zzz".to_owned()],
            &["zzz:nope".to_owned()],
        )
        .expect("roundtrip");
    assert_eq!(partial["unknown_tokens"].as_u64(), Some(1));
    assert_eq!(partial["unknown_facets"].as_u64(), Some(1));

    // A fully-unknown document is a structured query error.
    let rejected = client
        .ingest(&["zzz_unknown_word_zzz".to_owned()], &[])
        .expect("roundtrip");
    assert_eq!(rejected["ok"].as_bool(), Some(false));
    assert_eq!(rejected["error"]["kind"], "query");

    // Delete one base document too.
    let deleted = client.delete_doc(0).expect("roundtrip");
    assert_eq!(deleted["deleted"].as_bool(), Some(true), "{deleted:?}");
    // Re-deleting is a no-op (and must not bump the epoch).
    let epoch_before_redelete = engine.epoch();
    let re = client.delete_doc(0).expect("roundtrip");
    assert_eq!(re["deleted"].as_bool(), Some(false));
    assert_eq!(engine.epoch(), epoch_before_redelete);
    // Out-of-range deletes are structured errors.
    let oob = client.delete_doc(u64::MAX).expect("roundtrip");
    assert_eq!(oob["ok"].as_bool(), Some(false));

    // The delta-corrected query reflects the ingested documents.
    let mut delta_req = WireSearchRequest::new(q.clone());
    delta_req.use_delta = true;
    let corrected = client.search(&delta_req).expect("roundtrip");
    assert_eq!(corrected["result"]["completeness"]["kind"], "approximate");
    assert_eq!(
        corrected["result"]["completeness"]["reason"],
        "delta_corrections"
    );

    // The reference: a from-scratch rebuild over the updated documents.
    let reference = {
        let miner = engine.miner();
        let corpus = miner.corpus();
        let mut docs: Vec<(Vec<WordId>, Vec<ipm_corpus::FacetId>)> = Vec::new();
        for d in corpus.docs() {
            if d.id != DocId(0) {
                docs.push((d.tokens.clone(), d.facets.clone()));
            }
        }
        let w0 = corpus.word_id(&terms[0]).unwrap();
        for _ in 0..11 {
            docs.push((vec![w0], Vec::new()));
        }
        let rebuilt = corpus.with_docs(docs);
        QueryEngine::new(PhraseMiner::build(&rebuilt, MinerConfig::default()))
    };

    // Compact over the wire: the delta is flushed into a full rebuild.
    let compacted = client.compact().expect("roundtrip");
    assert_eq!(compacted["ok"].as_bool(), Some(true), "{compacted:?}");
    assert_eq!(compacted["compacted"].as_bool(), Some(true));
    assert_eq!(
        compacted["absorbed_adds"].as_u64(),
        Some(11),
        "{compacted:?}"
    );
    assert_eq!(compacted["absorbed_deletes"].as_u64(), Some(1));

    // The same query is exact again and matches the reference rebuild.
    let after = client.search(&delta_req).expect("roundtrip");
    assert_eq!(after["result"]["completeness"]["kind"], "exact");
    let want = reference.search(&q, 10).unwrap();
    let got_hits = after["result"]["hits"].as_array().unwrap();
    assert_eq!(got_hits.len(), want.hits.len());
    for (g, w) in got_hits.iter().zip(&want.hits) {
        assert_eq!(g["text"].as_str().unwrap(), w.text, "post-compaction drift");
        assert!((g["score"].as_f64().unwrap() - w.hit.score).abs() < 1e-12);
    }
    // An immediate second compact is a no-op.
    let noop = client.compact().expect("roundtrip");
    assert_eq!(noop["compacted"].as_bool(), Some(false));

    // Counters surfaced by the stats verb.
    let stats = client.stats().expect("roundtrip");
    let s = &stats["stats"];
    assert_eq!(s["ingested"].as_u64(), Some(11));
    assert_eq!(s["deleted"].as_u64(), Some(1));
    assert_eq!(s["compactions"].as_u64(), Some(1));
    assert_eq!(s["delta_docs"].as_u64(), Some(0));
    assert!(s["epoch"].as_u64().unwrap() > 0);
}

/// Protocol v4 `metrics` verb: the exposition parses under the
/// Prometheus-text grammar, the latency histogram's `_count` equals the
/// engine's `queries_served`, and the serving layer's own instruments
/// (connections, queue wait) appear in the same scrape.
#[test]
fn metrics_verb_exposes_valid_prometheus_text() {
    let handle = spawn(build_engine(true), 2, 16);
    let addr = handle.addr().to_string();
    let terms = top_terms(handle.engine(), 2);
    let mut client = Client::connect(&addr).expect("connect");

    let mut req = WireSearchRequest::new(format!("{} AND {}", terms[0], terms[1]));
    req.backend = BackendChoice::Disk;
    assert_eq!(client.search(&req).unwrap()["ok"].as_bool(), Some(true));
    // Same request again: a cache hit must also count into the histogram.
    assert_eq!(client.search(&req).unwrap()["ok"].as_bool(), Some(true));

    let text = client.metrics().expect("metrics verb");
    validate_exposition(&text).unwrap_or_else(|e| panic!("invalid exposition: {e}\n{text}"));

    let queries_served = client.stats().unwrap()["stats"]["queries_served"]
        .as_u64()
        .unwrap();
    assert_eq!(
        sample_sum(&text, "ipm_query_latency_seconds_count"),
        Some(queries_served as f64),
        "every served query (cached or not) must be one histogram sample"
    );
    assert_eq!(sample_sum(&text, "ipm_cache_hits_total"), Some(1.0));
    assert!(sample_sum(&text, "ipm_server_connections_total").unwrap() >= 1.0);
    assert_eq!(
        sample_sum(&text, "ipm_server_queue_wait_seconds_count"),
        Some(2.0),
        "both searches went through the worker queue"
    );
    assert!(
        sample_sum(&text, "ipm_list_sorted_accesses_total").unwrap() > 0.0,
        "the uncached disk execution must feed the per-backend counters"
    );
}

/// `trace: true` on the wire returns the per-stage trace inline, and the
/// flag stays out of cache identity: an untraced request for the same
/// key is still a cache hit, and its response carries no trace.
#[test]
fn trace_flag_returns_inline_stage_trace() {
    let handle = spawn(build_engine(true), 2, 16);
    let addr = handle.addr().to_string();
    let terms = top_terms(handle.engine(), 2);
    let mut client = Client::connect(&addr).expect("connect");

    let mut req = WireSearchRequest::new(format!("{} OR {}", terms[0], terms[1]));
    req.backend = BackendChoice::Disk;
    req.trace = true;
    let resp = client.search(&req).expect("roundtrip");
    assert_eq!(resp["ok"].as_bool(), Some(true), "{resp:?}");
    let trace = &resp["result"]["trace"];
    assert_eq!(trace["algorithm"], "nra");
    assert_eq!(trace["backend"], "disk");
    assert_eq!(trace["served_from_cache"], false);
    assert!(trace["total_us"].as_u64().is_some());
    let stages: Vec<&str> = trace["stages"]
        .as_array()
        .unwrap()
        .iter()
        .map(|s| s["stage"].as_str().unwrap())
        .collect();
    for want in ["parse", "plan", "cache_probe", "execute"] {
        assert!(stages.contains(&want), "missing stage {want}: {stages:?}");
    }
    // One shard -> one shard_exec span and one shard_stats row whose IO
    // matches the response's own accounting.
    assert!(stages.contains(&"shard_exec"));
    let shard_stats = trace["shard_stats"].as_array().unwrap();
    assert_eq!(shard_stats.len(), 1);
    let io_total = resp["result"]["io"]["sequential_fetches"].as_u64().unwrap()
        + resp["result"]["io"]["random_fetches"].as_u64().unwrap();
    assert_eq!(
        shard_stats[0]["io_fetches"].as_u64().unwrap(),
        io_total,
        "per-shard trace IO must reconcile with the response IoStats"
    );

    // The traced execution populated the cache for the untraced twin.
    req.trace = false;
    let cached = client.search(&req).expect("roundtrip");
    assert_eq!(cached["result"]["served_from_cache"], true);
    assert!(
        cached["result"]["trace"].is_null(),
        "untraced requests must not carry a trace"
    );

    // A traced cache hit gets a trace without an execute stage re-run.
    req.trace = true;
    let warm = client.search(&req).expect("roundtrip");
    assert_eq!(warm["result"]["served_from_cache"], true);
    assert_eq!(warm["result"]["trace"]["served_from_cache"], true);
    let warm_stages: Vec<&str> = warm["result"]["trace"]["stages"]
        .as_array()
        .unwrap()
        .iter()
        .map(|s| s["stage"].as_str().unwrap())
        .collect();
    assert!(warm_stages.contains(&"cache_probe"));
    assert!(!warm_stages.contains(&"shard_exec"));
}

// ---------------------------------------------------------------------------
// Protocol v5: the scatter-gather router over remote shard servers.
// ---------------------------------------------------------------------------

fn spawn_faulty(engine: QueryEngine, fault_delay_ms: u64) -> ipm_server::ServerHandle {
    ipm_server::Server::spawn(
        engine,
        ipm_server::ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            queue_depth: 16,
            fault_delay_ms,
        },
    )
    .expect("bind loopback")
}

fn spawn_router(
    shards: Vec<Vec<String>>,
    hedge: ipm_server::HedgeConfig,
) -> ipm_server::RouterHandle {
    ipm_server::Router::spawn(
        build_engine(false),
        ipm_server::RouterConfig {
            addr: "127.0.0.1:0".to_owned(),
            shards,
            hedge,
            rpc_timeout: std::time::Duration::from_secs(5),
        },
    )
    .expect("bind router")
}

/// Routed execution over two remote shard servers returns hits
/// byte-identical to single-process sharded execution of the same
/// query — the distributed merge is the same merge.
#[test]
fn router_matches_single_process_sharded_execution() {
    let s0 = spawn_faulty(build_engine(false), 0);
    let s1 = spawn_faulty(build_engine(false), 0);
    let router = spawn_router(
        vec![vec![s0.addr().to_string()], vec![s1.addr().to_string()]],
        ipm_server::HedgeConfig::default(),
    );
    let terms = top_terms(s0.engine(), 3);
    let mut local = Client::connect(&s0.addr().to_string()).expect("connect shard");
    let mut routed = Client::connect(&router.addr().to_string()).expect("connect router");
    for (a, b) in [(0, 1), (1, 2), (0, 2)] {
        for op in ["AND", "OR"] {
            for method in ["nra", "smj", "ta", "exact"] {
                let mut req = WireSearchRequest::new(format!("{} {op} {}", terms[a], terms[b]));
                req.k = 5;
                req.algorithm = wire::algorithm_from_str(method).unwrap();
                let via_router = routed.search(&req).expect("roundtrip");
                assert_eq!(
                    via_router["ok"].as_bool(),
                    Some(true),
                    "router error: {via_router:?}"
                );
                assert_eq!(via_router["router"]["fanout"].as_u64(), Some(2));
                assert_eq!(via_router["result"]["shards"].as_u64(), Some(2));
                req.shards = Some(2);
                let direct = local.search(&req).expect("roundtrip");
                assert_eq!(direct["ok"].as_bool(), Some(true));
                assert_eq!(
                    serde_json::to_string(&via_router["result"]["hits"]).unwrap(),
                    serde_json::to_string(&direct["result"]["hits"]).unwrap(),
                    "{method} {op}: routed hits must be byte-identical to local sharded"
                );
                assert_eq!(
                    serde_json::to_string(&via_router["result"]["completeness"]).unwrap(),
                    serde_json::to_string(&direct["result"]["completeness"]).unwrap(),
                    "{method} {op}: completeness must agree"
                );
            }
        }
    }
    let stats = router.stats();
    assert_eq!(stats.requests, 24);
    assert!(stats.shard_rpcs >= 48, "two legs per request: {stats:?}");
    assert_eq!(stats.partial_results, 0);
}

/// Killing one shard mid-flight degrades responses to a structured
/// partial result — `approximate { shards_missing }` — instead of an
/// error or a hang, and the router counts it.
#[test]
fn dead_shard_yields_honest_partial_results() {
    let s0 = spawn_faulty(build_engine(false), 0);
    let mut s1 = spawn_faulty(build_engine(false), 0);
    let router = spawn_router(
        vec![vec![s0.addr().to_string()], vec![s1.addr().to_string()]],
        ipm_server::HedgeConfig::default(),
    );
    let terms = top_terms(s0.engine(), 2);
    let mut client = Client::connect(&router.addr().to_string()).expect("connect");
    let mut req = WireSearchRequest::new(format!("{} OR {}", terms[0], terms[1]));
    req.k = 5;
    let healthy = client.search(&req).expect("roundtrip");
    assert_eq!(healthy["ok"].as_bool(), Some(true));
    assert_eq!(
        healthy["result"]["completeness"]["kind"].as_str(),
        Some("exact")
    );

    s1.shutdown();
    let degraded = client.search(&req).expect("roundtrip");
    assert_eq!(
        degraded["ok"].as_bool(),
        Some(true),
        "a dead shard must degrade, not error: {degraded:?}"
    );
    assert_eq!(
        degraded["result"]["completeness"]["kind"].as_str(),
        Some("approximate"),
        "{degraded:?}"
    );
    assert_eq!(
        degraded["result"]["completeness"]["reason"].as_str(),
        Some("shards_missing")
    );
    assert_eq!(
        degraded["result"]["completeness"]["missing"].as_u64(),
        Some(1)
    );
    let stats = router.stats();
    assert!(stats.partial_results >= 1, "{stats:?}");
    assert!(stats.shard_failures >= 1, "{stats:?}");
}

/// A slow primary replica plus a fast second replica: the hedge fires
/// after its delay, the fast replica's answer wins, and the response is
/// still byte-identical to direct execution — hedging must never change
/// the answer, only its latency.
#[test]
fn hedged_request_beats_a_slow_replica() {
    let slow = spawn_faulty(build_engine(false), 250);
    let fast = spawn_faulty(build_engine(false), 0);
    let router = spawn_router(
        vec![vec![slow.addr().to_string(), fast.addr().to_string()]],
        ipm_server::HedgeConfig {
            enabled: true,
            initial_delay: std::time::Duration::from_millis(10),
            min_delay: std::time::Duration::from_millis(1),
            max_delay: std::time::Duration::from_millis(250),
        },
    );
    let terms = top_terms(fast.engine(), 2);
    let mut client = Client::connect(&router.addr().to_string()).expect("connect");
    let mut req = WireSearchRequest::new(format!("{} OR {}", terms[0], terms[1]));
    req.k = 5;
    let started = std::time::Instant::now();
    let resp = client.search(&req).expect("roundtrip");
    let elapsed = started.elapsed();
    assert_eq!(resp["ok"].as_bool(), Some(true), "{resp:?}");
    assert!(
        elapsed < std::time::Duration::from_millis(200),
        "hedged response took {elapsed:?} against a 250 ms slow primary"
    );
    let direct = fast.engine().execute(
        fast.engine().miner().parse_query_str(&req.query).unwrap(),
        5,
        &req.options(),
    );
    assert_eq!(
        serde_json::to_string(&resp["result"]["hits"]).unwrap(),
        serde_json::to_string(&wire::hits_value(&direct)).unwrap(),
        "the hedge winner's hits must match direct execution"
    );
    let stats = router.stats();
    assert!(stats.hedges_fired >= 1, "{stats:?}");
    assert!(stats.hedges_won >= 1, "{stats:?}");
}

/// A deadline bounds the router even when the only replica of a shard is
/// slower than the deadline: the response comes back promptly with an
/// honest non-exact completeness label — never a hang.
#[test]
fn router_never_hangs_past_the_deadline() {
    let slow = spawn_faulty(build_engine(false), 400);
    let router = spawn_router(
        vec![vec![slow.addr().to_string()]],
        ipm_server::HedgeConfig {
            enabled: false,
            ..Default::default()
        },
    );
    let terms = top_terms(slow.engine(), 2);
    let mut client = Client::connect(&router.addr().to_string()).expect("connect");
    let mut req = WireSearchRequest::new(format!("{} OR {}", terms[0], terms[1]));
    req.k = 5;
    req.deadline_ms = Some(120);
    let started = std::time::Instant::now();
    let resp = client.search(&req).expect("roundtrip");
    let elapsed = started.elapsed();
    assert!(
        elapsed < std::time::Duration::from_millis(350),
        "router answered in {elapsed:?} despite a 120 ms deadline"
    );
    assert_eq!(resp["ok"].as_bool(), Some(true), "{resp:?}");
    assert_ne!(
        resp["result"]["completeness"]["kind"].as_str(),
        Some("exact"),
        "a deadline-starved scatter must not claim exactness: {resp:?}"
    );
}

/// Reads one counter's value out of a Prometheus text exposition.
fn scrape_counter(text: &str, name: &str) -> u64 {
    text.lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse::<f64>().ok())
        .map(|v| v as u64)
        .unwrap_or_else(|| panic!("counter {name} not found in exposition"))
}

/// The load generator holds one TCP connection per worker for its whole
/// run: N threads × M requests must accept exactly N connections, not
/// N×M — the serving benchmark measures request service, not handshakes.
#[test]
fn load_generator_reuses_one_connection_per_worker() {
    let handle = spawn(build_engine(true), 2, 32);
    let addr = handle.addr().to_string();
    let terms = top_terms(handle.engine(), 2);
    let mut observer = Client::connect(&addr).expect("connect");
    let before = scrape_counter(
        &observer.metrics().expect("metrics"),
        "ipm_server_connections_total",
    );
    let mut req = WireSearchRequest::new(format!("{} OR {}", terms[0], terms[1]));
    req.k = 5;
    let report = ipm_server::run_load(&addr, 4, 25, &req).expect("load run");
    assert_eq!(report.ok, 100, "{report}");
    let after = scrape_counter(
        &observer.metrics().expect("metrics"),
        "ipm_server_connections_total",
    );
    assert_eq!(
        after - before,
        4,
        "4 workers × 25 requests must open exactly 4 connections"
    );
}
