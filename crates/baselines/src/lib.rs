//! Baseline algorithms for interesting-phrase mining from sub-collections.
//!
//! The paper's Table 3 surveys three prior techniques; all are implemented
//! here so every comparison in the evaluation can be regenerated:
//!
//! * [`fi`] — the plain forward-index method of Bedathur et al. (VLDB
//!   2010): one list per document, merge-aggregated over `D'`. Exact.
//! * [`gm`] — Gao & Michel's improved sequential-pattern indexing (EDBT
//!   2012), the paper's headline baseline ("GM"): forward lists compacted
//!   by the prefix-implication property, aggregated over `D'` with prefix
//!   expansion. Exact, and the paper's response-time comparisons (Figures
//!   7, 8, 12, 13, Table 7) measure this implementation.
//! * [`simitsis`] — the phrase-based index of Simitsis et al. (PVLDB
//!   2008): global-df-ordered phrase lists with a two-phase
//!   filter-then-score flow. Approximate (the paper's Table 3 flags it so).
//!
//! All baselines expose the common [`TopKBaseline`] trait consumed by the
//! experiment harness.

pub mod fi;
pub mod gm;
pub mod simitsis;

use ipm_core::query::Query;
use ipm_core::result::PhraseHit;
use ipm_index::corpus_index::CorpusIndex;

/// A uniform interface over the baseline algorithms.
pub trait TopKBaseline {
    /// Human-readable name for reports ("GM", "FI", "Simitsis").
    fn name(&self) -> &'static str;

    /// Top-k interesting phrases for the query.
    fn top_k(&self, index: &CorpusIndex, query: &Query, k: usize) -> Vec<PhraseHit>;
}

pub use fi::ForwardIndexBaseline;
pub use gm::GmBaseline;
pub use simitsis::SimitsisBaseline;

#[cfg(test)]
pub(crate) mod testutil {
    use ipm_corpus::Corpus;
    use ipm_index::corpus_index::{CorpusIndex, IndexConfig};
    use ipm_index::mining::MiningConfig;

    /// A small synthetic corpus + index shared by the baseline tests.
    pub fn tiny_indexed() -> (Corpus, CorpusIndex) {
        let (c, _) = ipm_corpus::synth::generate(&ipm_corpus::synth::tiny());
        let index = CorpusIndex::build(
            &c,
            &IndexConfig {
                mining: MiningConfig {
                    min_df: 3,
                    max_len: 4,
                    min_len: 1,
                },
            },
        );
        (c, index)
    }

    /// A query of the corpus's two most frequent words.
    pub fn frequent_query(c: &Corpus, op: ipm_core::query::Operator) -> ipm_core::query::Query {
        let top = ipm_corpus::stats::top_words_by_df(c, 2);
        ipm_core::query::Query::new(
            top.iter()
                .map(|&(w, _)| ipm_corpus::Feature::Word(w))
                .collect(),
            op,
        )
        .unwrap()
    }
}
