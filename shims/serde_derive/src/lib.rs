//! Offline shim for `serde_derive`: the derives are accepted (including
//! `#[serde(...)]` helper attributes) and expand to nothing. The shimmed
//! `serde` traits are blanket-implemented, so deriving types still satisfy
//! `T: Serialize` bounds. See `shims/README.md`.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
