//! Cursor abstraction over word-specific phrase lists.
//!
//! The top-k algorithms (crate `ipm-core`) consume lists one entry at a
//! time — NRA and TA in score order ([`ScoredListCursor`]), SMJ in
//! phrase-id order ([`IdListCursor`]) — regardless of whether the list
//! lives in memory ([`crate::wordlists::WordPhraseLists`]) or behind the
//! simulated disk (crate `ipm-storage`). These traits are the seam between
//! the two; [`crate::backend::ListBackend`] bundles them with random-probe
//! access into one pluggable backend.

use crate::wordlists::{IdOrderedLists, ListEntry, WordPhraseLists};
use ipm_corpus::{Feature, PhraseId};

/// A forward-only cursor over one feature's score-ordered list.
pub trait ScoredListCursor {
    /// Next `[phrase, prob]` entry, or `None` when the (possibly partial)
    /// list is exhausted.
    fn next_entry(&mut self) -> Option<ListEntry>;

    /// Total entries this cursor will yield (after partial truncation).
    fn len(&self) -> usize;

    /// Whether the cursor yields no entries at all.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries yielded so far.
    fn position(&self) -> usize;

    /// An upper bound on the probability of every entry this cursor has
    /// *not yet* yielded, when the backend can provide one more cheaply
    /// than reading ahead — block-compressed lists answer from the next
    /// block's skip metadata without fetching it. `None` (the default)
    /// means "no hint"; callers must fall back to the last seen score,
    /// which bounds the remainder of any score-ordered list.
    fn block_max_hint(&self) -> Option<f64> {
        None
    }

    /// Skips the rest of the current block — every not-yet-yielded entry
    /// up to the next block boundary — and returns how many entries were
    /// skipped. Backends without block structure skip nothing (the
    /// default), which is always sound: callers may only invoke this when
    /// the skipped entries provably cannot affect the result, and must
    /// treat a `0` return as "no skipping available".
    fn skip_block(&mut self) -> usize {
        0
    }
}

/// In-memory cursor over a slice of a score-ordered list.
#[derive(Debug, Clone)]
pub struct MemoryCursor<'a> {
    entries: &'a [ListEntry],
    pos: usize,
}

impl<'a> MemoryCursor<'a> {
    /// Cursor over a full in-memory list.
    pub fn new(entries: &'a [ListEntry]) -> Self {
        Self { entries, pos: 0 }
    }

    /// Cursor over the top-`fraction` prefix of `lists`' entry for `feature`
    /// (run-time partial lists, paper §4.3).
    pub fn partial(lists: &'a WordPhraseLists, feature: Feature, fraction: f64) -> Self {
        let full = lists.list(feature);
        let keep = prefix_len(full.len(), fraction);
        Self {
            entries: &full[..keep],
            pos: 0,
        }
    }
}

impl ScoredListCursor for MemoryCursor<'_> {
    #[inline]
    fn next_entry(&mut self) -> Option<ListEntry> {
        let e = self.entries.get(self.pos).copied();
        if e.is_some() {
            self.pos += 1;
        }
        e
    }

    #[inline]
    fn len(&self) -> usize {
        self.entries.len()
    }

    #[inline]
    fn position(&self) -> usize {
        self.pos
    }
}

/// A forward-only cursor over one feature's phrase-ID-ordered list (the
/// SMJ access path, paper §4.4).
pub trait IdListCursor {
    /// Next entry in ascending phrase-id order, or `None` at the end.
    fn next_entry(&mut self) -> Option<ListEntry>;

    /// Total entries this cursor will yield.
    fn len(&self) -> usize;

    /// Whether the cursor yields no entries at all.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Advances past every entry with id below `target` and consumes the
    /// first entry with `phrase >= target`, returning it (`None` when the
    /// list holds no such entry). Equivalent to calling [`next_entry`]
    /// until it yields an id `>= target` — the default does exactly that —
    /// but backends with skip metadata jump without decoding: the SMJ
    /// gallop path on skewed AND merges.
    ///
    /// [`next_entry`]: IdListCursor::next_entry
    fn seek(&mut self, target: PhraseId) -> Option<ListEntry> {
        loop {
            let e = self.next_entry()?;
            if e.phrase >= target {
                return Some(e);
            }
        }
    }
}

/// In-memory cursor over a slice of an ID-ordered list.
#[derive(Debug, Clone)]
pub struct MemoryIdCursor<'a> {
    entries: &'a [ListEntry],
    pos: usize,
}

impl<'a> MemoryIdCursor<'a> {
    /// Cursor over an in-memory id-ordered slice.
    pub fn new(entries: &'a [ListEntry]) -> Self {
        Self { entries, pos: 0 }
    }

    /// Cursor over `lists`' entry for `feature`.
    pub fn over(lists: &'a IdOrderedLists, feature: Feature) -> Self {
        Self::new(lists.list(feature))
    }
}

impl IdListCursor for MemoryIdCursor<'_> {
    #[inline]
    fn next_entry(&mut self) -> Option<ListEntry> {
        let e = self.entries.get(self.pos).copied();
        if e.is_some() {
            self.pos += 1;
        }
        e
    }

    #[inline]
    fn len(&self) -> usize {
        self.entries.len()
    }

    fn seek(&mut self, target: PhraseId) -> Option<ListEntry> {
        // Id-ordered slice: binary-search the remaining suffix instead of
        // walking it entry by entry.
        self.pos += self.entries[self.pos..].partition_point(|e| e.phrase < target);
        self.next_entry()
    }
}

/// Number of entries in the top-`fraction` prefix of a list of `len`
/// entries: `ceil(len · fraction)`, at least 1 for non-empty lists, clamped
/// to `len`. Shared by the in-memory and disk cursors so partial semantics
/// agree everywhere.
pub fn prefix_len(len: usize, fraction: f64) -> usize {
    if len == 0 {
        return 0;
    }
    let fraction = fraction.clamp(f64::MIN_POSITIVE, 1.0);
    ((len as f64 * fraction).ceil() as usize).clamp(1, len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipm_corpus::PhraseId;

    fn entries(n: usize) -> Vec<ListEntry> {
        (0..n)
            .map(|i| ListEntry {
                phrase: PhraseId(i as u32),
                prob: 1.0 / (i + 1) as f64,
            })
            .collect()
    }

    #[test]
    fn memory_cursor_yields_all_in_order() {
        let es = entries(4);
        let mut c = MemoryCursor::new(&es);
        assert_eq!(c.len(), 4);
        let mut got = Vec::new();
        while let Some(e) = c.next_entry() {
            got.push(e.phrase.raw());
        }
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert_eq!(c.position(), 4);
        assert!(c.next_entry().is_none());
    }

    #[test]
    fn empty_cursor() {
        let es = entries(0);
        let mut c = MemoryCursor::new(&es);
        assert!(c.is_empty());
        assert!(c.next_entry().is_none());
        assert_eq!(c.position(), 0);
    }

    #[test]
    fn id_cursor_yields_all_in_order() {
        let es = entries(3);
        let mut c = MemoryIdCursor::new(&es);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        let mut got = Vec::new();
        while let Some(e) = c.next_entry() {
            got.push(e.phrase.raw());
        }
        assert_eq!(got, vec![0, 1, 2]);
        assert!(c.next_entry().is_none());
    }

    #[test]
    fn seek_consumes_through_target() {
        let es = entries(10); // ids 0..10
        let mut c = MemoryIdCursor::new(&es);
        let hit = c.seek(PhraseId(4)).unwrap();
        assert_eq!(hit.phrase, PhraseId(4));
        assert_eq!(c.next_entry().unwrap().phrase, PhraseId(5));
        // Seeking backwards never rewinds: the cursor stays forward-only.
        let hit = c.seek(PhraseId(2)).unwrap();
        assert_eq!(hit.phrase, PhraseId(6));
        assert!(c.seek(PhraseId(99)).is_none());
    }

    #[test]
    fn default_hooks_are_inert() {
        let es = entries(3);
        let mut c = MemoryCursor::new(&es);
        assert_eq!(c.block_max_hint(), None);
        assert_eq!(c.skip_block(), 0);
        assert_eq!(c.position(), 0); // skip_block must not move a hook-less cursor
    }

    #[test]
    fn prefix_len_boundaries() {
        assert_eq!(prefix_len(0, 0.5), 0);
        assert_eq!(prefix_len(10, 1.0), 10);
        assert_eq!(prefix_len(10, 0.5), 5);
        assert_eq!(prefix_len(10, 0.01), 1); // at least one entry
        assert_eq!(prefix_len(10, 0.11), 2); // ceil
        assert_eq!(prefix_len(3, 2.0), 3); // clamped
        assert_eq!(prefix_len(7, -1.0), 1); // clamped up from nonsense
    }
}
